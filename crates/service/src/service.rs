//! The long-running verifier service: per-device lifecycle state
//! machines, re-attestation scheduling, and the quarantine policy,
//! all driven by one deterministic virtual clock.
//!
//! ```text
//!            join            calibrate + SAKE        round passes
//! (operator) ───► Enrolled ─────► Attesting ──────────► Trusted ◄──┐
//!                     │                │                   │       │
//!                     │ calibration /  │ budget            │ round │ round
//!                     │ establishment  │ exhausted         │ fails │ passes
//!                     ▼ fails          ▼                   ▼       │
//!                 Quarantined ◄──────────────────────── Degraded ──┘
//!                                 budget exhausted
//!
//!  any state ───leave()───► Revoked
//! ```
//!
//! Scheduling is event-driven: the service hops the virtual clock to the
//! next due instant (a message arrival, a round deadline, or a scheduled
//! re-attestation) rather than ticking one unit at a time, the same
//! stall-skipping idea the simulator core uses.
//!
//! # The sharded event loop
//!
//! The original engine scanned the whole roster four times per step
//! (inbox pump, verdicts, deadlines, due rounds) — O(fleet) per step,
//! which capped the control plane at a handful of devices. The engine
//! now runs in three stages per step:
//!
//! 1. **Intake** — one batched [`Transport::drain_due`] empties the
//!    network of everything due at the current tick, and a hierarchical
//!    [`TimerWheel`] pops every due re-attestation, deadline, and
//!    freshness timer. Both are O(due events), not O(fleet): idle
//!    devices cost nothing. Routing a frame to its device is one
//!    [`ShardIndex`] lookup (FxHash, O(1)) instead of a roster scan.
//! 2. **Units** — each device touched this tick gets one *work unit*
//!    that runs its per-device phases in the canonical order (inbound
//!    frames, response verdicts, deadline expiry, due round start)
//!    against its live state, buffering every externally visible effect
//!    (events, sends, timer requests). Units for different devices are
//!    independent, so with `workers > 0` they fan out across a
//!    persistent [`sage_vf::ReplayPool`] — one claim-loop job per
//!    shard, work-stolen by whichever worker is free — while
//!    per-device ordering stays sequential by construction.
//! 3. **Merge** — buffered effects are applied in exactly the order the
//!    sequential engine produced them: device replies in roster order,
//!    verdicts in global arrival order (each response is seq-stamped at
//!    intake), deadline expiries and round starts in roster order, then
//!    epoch seals and freshness transitions. The merge is where the
//!    headline guarantee lives: for *any* shard/worker count the event
//!    history, evidence chains, and snapshots are byte-identical to the
//!    single-threaded run, because nothing nondeterministic (thread
//!    interleaving) ever reaches shared state.
//!
//! Timer cancellation is lazy: a stale wheel entry (the round it was
//! armed for already resolved) pops as a no-op because every fire is
//! validated against the device's live schedule before it acts. A stale
//! pop can at most cause a silent step — no events, no sends — which
//! keeps histories identical while making cancellation O(1).

use sage::channel::{Role, SecureChannel};
use sage::multi::{power_score, FleetMember};
use sage::sake::{key_fingerprint, SakeMessage};
use sage::verifier::Verifier;
use sage::{GpuSession, SageError};
use sage_crypto::DhGroup;
use sage_evidence::merkle::{epoch_root, prove_inclusion, EpochLeaf};
use sage_evidence::report::{DeviceReport, FreshnessClaim};
use sage_evidence::{EvidenceChain, EvidencePath, EvidencePayload, Freshness, StageVerdict};
use sage_sgx_sim::Enclave;
use sage_telemetry::Registry;
use sage_vf::ReplayPool;

use crate::events::{EventKind, EventLog, FailReason};
use crate::net::{Envelope, NodeId, Transport};
use crate::node::DeviceNode;
use crate::policy::{seeded_jitter, Policy};
use crate::quorum::{QuorumConfig, VerifierSet};
use crate::sampling::SamplingConfig;
use crate::shard::ShardIndex;
use crate::wheel::TimerWheel;
use crate::wire::{self, Frame};

/// The verifier's transport address.
pub const VERIFIER_NODE: NodeId = NodeId(0);

/// Lifecycle state of a managed device.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceState {
    /// Joined, enrollment not yet attempted.
    Enrolled,
    /// Calibration/key establishment done, first round not yet passed.
    Attesting,
    /// Root of trust established and holding.
    Trusted,
    /// One or more consecutive failures; retrying under backoff.
    Degraded,
    /// Failure budget exhausted; no longer scheduled.
    Quarantined,
    /// Removed by the operator; no longer scheduled.
    Revoked,
}

impl DeviceState {
    /// Stable string tag used in JSON exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeviceState::Enrolled => "enrolled",
            DeviceState::Attesting => "attesting",
            DeviceState::Trusted => "trusted",
            DeviceState::Degraded => "degraded",
            DeviceState::Quarantined => "quarantined",
            DeviceState::Revoked => "revoked",
        }
    }
}

impl core::fmt::Display for DeviceState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Service-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Virtual ticks between successful rounds on one device.
    pub reattest_interval: u64,
    /// One-way network budget the round deadline allows (should cover
    /// the link profile's worst-case delay).
    pub latency_budget: u64,
    /// Additional slack added to the round deadline.
    pub deadline_slack: u64,
    /// Timed exchanges used to calibrate each joining device.
    pub calibration_runs: usize,
    /// Failure-handling policy.
    pub policy: Policy,
    /// Precomputed rounds held per device (`0` disables the fast path:
    /// every round replays online).
    pub bank_capacity: usize,
    /// Background refill threads per device bank. Keep at `1` (the
    /// default) for deterministic runs: a single producer pushes rounds
    /// in generator order, so the consumed challenge sequence does not
    /// depend on thread scheduling. `0` refills synchronously on take.
    pub bank_workers: usize,
    /// Rounds stocked into each joining device's bank *before* its
    /// calibration, via the shared [`sage_vf::ReplayPool`] (one flat
    /// `(round, block)` job list saturating the verifier host's cores).
    /// `0` (the default) skips the explicit prefill; calibration then
    /// warms the bank itself, one serial replay at a time. The time
    /// spent here is accounted separately — see
    /// [`AttestationService::prefill_wall_seconds`].
    pub prefill_rounds: usize,
    /// Virtual ticks between fleet evidence epochs: every interval, a
    /// Merkle root over all device chain heads is sealed and logged.
    /// `0` (the default) disables epoch sealing.
    pub epoch_interval: u64,
    /// Freshness-driven trust decay. Disabled by default (devices never
    /// decay), preserving the historical lifecycle exactly.
    pub freshness: sage_evidence::FreshnessPolicy,
    /// Routing-index partitions (clamped to ≥ 1). Shards are also the
    /// unit of parallel work: each shard's due devices form one job on
    /// the worker pool. `1` (the default) keeps the classic
    /// single-partition layout.
    pub shards: usize,
    /// Worker threads for per-device round execution. `0` (the
    /// default) runs every work unit inline on the caller's thread.
    /// Any value yields a byte-identical event history — the merge
    /// stage serializes effects into the canonical order — so this is
    /// purely a throughput knob. Workers only engage when `shards > 1`.
    pub workers: usize,
    /// In-memory event-log bound: the log keeps at most this many most
    /// recent events (`0` = unbounded, the historical behavior).
    /// Dropped events still count — see
    /// [`crate::events::EventLog::events_dropped`].
    pub event_capacity: usize,
    /// Maximum deterministic jitter (virtual ticks) added to every
    /// failure-backoff delay, keyed by `(device name, failure count)`
    /// via [`crate::policy::seeded_jitter`] — devices failing together
    /// retry apart. `0` (the default) disables jitter and keeps
    /// historical schedules byte-identical.
    pub backoff_jitter: u64,
    /// Verifier-quorum knobs: with `verifiers > 1` every verdict is put
    /// to an N-replica ⌈2N/3⌉ vote (see [`crate::quorum`]). The default
    /// (`verifiers == 1`) keeps the single-verifier behavior — and an
    /// honest unanimous quorum appends nothing, so evidence heads stay
    /// byte-identical to the single-verifier baseline either way.
    pub quorum: QuorumConfig,
    /// Spot-check sampling knobs: with coverage below 1000‰ (and
    /// `epoch_interval > 0`), a `Trusted` device outside the epoch's
    /// seeded plan skips its due round and sleeps to the next epoch
    /// boundary (see [`crate::sampling`]). Full coverage — the default —
    /// keeps historical schedules byte-identical.
    pub sampling: SamplingConfig,
    /// Relay/topology gate, in virtual ticks of allowed *wire* time
    /// (wall elapsed minus device-reported compute) per exchange. A
    /// response whose wire share exceeds the gate fails the round as
    /// [`FailReason::Relay`] even when its checksum and timing check
    /// out — a relayed exchange pays two link round trips. `0` (the
    /// default) disables the detector.
    pub relay_rtt_gate: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            reattest_interval: 50_000,
            latency_budget: 200,
            deadline_slack: 1_000,
            calibration_runs: 5,
            policy: Policy::default(),
            bank_capacity: 2,
            bank_workers: 1,
            prefill_rounds: 0,
            epoch_interval: 0,
            freshness: sage_evidence::FreshnessPolicy::disabled(),
            shards: 1,
            workers: 0,
            event_capacity: 0,
            backoff_jitter: 0,
            quorum: QuorumConfig::default(),
            sampling: SamplingConfig::default(),
            relay_rtt_gate: 0,
        }
    }
}

pub(crate) struct Outstanding {
    pub(crate) round: u64,
    pub(crate) challenges: Vec<[u8; 16]>,
    /// Bank-precomputed expected checksum; `None` means this round
    /// verifies via online replay.
    pub(crate) expected: Option<[u32; 8]>,
    pub(crate) deadline: u64,
    /// Virtual time the challenge was dispatched — the wall anchor the
    /// relay/topology detector subtracts reported compute time from.
    pub(crate) started_at: u64,
}

pub(crate) struct ManagedDevice {
    pub(crate) node: DeviceNode,
    pub(crate) verifier: Verifier,
    pub(crate) state: DeviceState,
    pub(crate) round: u64,
    pub(crate) rounds_passed: u64,
    pub(crate) consecutive_failures: u32,
    /// Consecutive wrong-checksum failures — the persistent-fault
    /// signal; reset on any passed round, untouched by timeouts or
    /// timing rejects (network noise must not mask corruption).
    pub(crate) consecutive_value_failures: u32,
    pub(crate) consecutive_restarts: u32,
    pub(crate) outstanding: Option<Outstanding>,
    pub(crate) next_action_at: Option<u64>,
    /// The SAKE session key (verifier side), kept to open liveness
    /// channels and derive the evidence key after a restore.
    pub(crate) session_key: Option<[u8; 16]>,
    /// The device's evidence chain (present once SAKE established).
    pub(crate) evidence: Option<EvidenceChain>,
    /// Virtual time of the newest passing attestation stage — the
    /// freshness anchor. Mirrors the chain's newest `Pass` record.
    pub(crate) last_attested: Option<u64>,
    /// Current freshness level under the configured policy.
    pub(crate) freshness: Freshness,
    /// The armed freshness-decay boundary (the live wheel entry's due
    /// time); a popped timer only fires if it still matches. Derived
    /// state — rebuilt from `last_attested` on restore, never
    /// snapshotted.
    pub(crate) next_fresh_at: Option<u64>,
    /// Whether the transport link to this device is up. Runtime state
    /// fed by [`crate::net::LinkEvent`]s — always `true` behind
    /// transports that never flap ([`crate::net::SimNet`]), and reset
    /// to `true` on restore. A deadline expiring while the link is down
    /// is classified [`FailReason::LinkDown`]: retried under backoff,
    /// never recorded as attestation evidence.
    pub(crate) link_up: bool,
}

// Work units for different devices run on pool threads; the disjoint
// `&mut ManagedDevice` handout below is only sound if the payload is
// thread-transferable.
fn _assert_managed_device_is_send()
where
    ManagedDevice: Send,
{
}

/// One sealed fleet evidence epoch: the Merkle root over every device's
/// chain head at the seal instant, plus the leaves (so inclusion proofs
/// stay recomputable after the fact).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SealedEpoch {
    /// Epoch index (the first sealed epoch is 1).
    pub index: u64,
    /// Virtual time the epoch was sealed.
    pub at: u64,
    /// Merkle root over `leaves`.
    pub root: [u8; 32],
    /// Per-device leaves, sorted by device name (the canonical order the
    /// root commits to).
    pub leaves: Vec<EpochLeaf>,
}

/// One device's health, derived from its lifecycle counters. The score
/// separates the two failure families the chaos engine exercises:
/// transient faults (timeouts, slow rounds — recoverable, lightly
/// penalized) and wrong checksums (unforgeable evidence of corruption or
/// compromise — heavily penalized).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceHealth {
    /// Device name.
    pub name: String,
    /// Lifecycle state.
    pub state: DeviceState,
    /// 0–100. `Quarantined`/`Revoked` pin it to 0; a clean `Trusted`
    /// device sits at 100; consecutive transient failures cost 15 each,
    /// consecutive wrong values 35 each.
    pub score: u8,
    /// Current consecutive-failure streak (any reason).
    pub consecutive_failures: u32,
    /// Current consecutive wrong-checksum streak.
    pub consecutive_value_failures: u32,
    /// §7.2 restarts consumed in the current streak.
    pub consecutive_restarts: u32,
}

/// A point-in-time summary of one managed device.
#[derive(Clone, Debug)]
pub struct DeviceStatus {
    /// Device name.
    pub name: String,
    /// Transport address.
    pub node: NodeId,
    /// Lifecycle state.
    pub state: DeviceState,
    /// Rounds passed since joining.
    pub rounds_passed: u64,
    /// Current consecutive-failure count.
    pub consecutive_failures: u32,
    /// Compute-power score (ordering key).
    pub power: u128,
}

/// A scheduled wake-up in the service's timer wheel. Fires are
/// validated against live device state, so cancellation is lazy (a
/// stale entry pops as a no-op).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Timer {
    /// `next_action_at` is due for the device at this slot.
    Action(u32),
    /// The outstanding round's deadline for the device at this slot.
    Deadline(u32),
    /// A freshness-decay boundary; fires only while the device's
    /// `next_fresh_at` still equals `at`.
    Fresh { slot: u32, at: u64 },
}

/// A timer a work unit asks to arm. Applied (and re-validated against
/// the device's live schedule) at merge time, after every phase has
/// run — so a same-step cascade that supersedes the request simply
/// invalidates it.
#[derive(Clone, Copy, Debug)]
enum TimerReq {
    Action(u64),
    Deadline(u64),
    Fresh(u64),
}

/// A verdict to put to the verifier quorum's vote — buffered like
/// events so ballots are tallied in canonical merge order regardless
/// of the shard/worker geometry.
#[derive(Clone, Copy, Debug)]
struct VoteReq {
    round: u64,
    verdict: StageVerdict,
}

/// Effects one logical action produced: events to record (in order),
/// timers to arm, and quorum ballots to tally. Buffered inside work
/// units, flushed serially in canonical order by the merge stage.
#[derive(Default)]
struct Effects {
    events: Vec<EventKind>,
    timers: Vec<TimerReq>,
    votes: Vec<VoteReq>,
}

/// Everything one device is due to process this step, in per-device
/// order.
struct DevWork {
    slot: usize,
    shard: usize,
    rpos: u32,
    /// Inbound frames for the device node, arrival order.
    frames: Vec<Envelope>,
    /// Responses addressed to the verifier, each stamped with its
    /// global arrival sequence (the merge key).
    responses: Vec<(u64, Envelope)>,
}

/// The buffered output of one work unit.
struct DevEffects {
    slot: usize,
    rpos: u32,
    /// Device replies to forward, in handle order: `(send_at, env)`.
    replies: Vec<(u64, Envelope)>,
    /// One effect group per processed response, keyed by arrival seq.
    verdicts: Vec<(u64, Effects)>,
    /// The deadline-expiry effect group, if the deadline passed.
    deadline: Option<Effects>,
    /// The round-start effect group and the challenge to send, if a
    /// round came due (the envelope is `None` when the start bailed —
    /// wrong state or no threshold).
    start: Option<(Effects, Option<Envelope>)>,
}

/// A raw base pointer that asserts cross-thread disjoint access. Used
/// to hand each pool job exclusive `&mut` access to its own shard's
/// devices/works/output slots. Access goes through [`SendPtr::at`] so
/// closures capture the wrapper (which is `Sync`), not the raw field.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    ///
    /// The caller must guarantee `i` is in bounds of the underlying
    /// allocation, the allocation outlives the use, and no other thread
    /// touches element `i` concurrently.
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut T {
        unsafe { &mut *self.0.add(i) }
    }
}

/// The attestation control plane.
pub struct AttestationService<T: Transport> {
    pub(crate) cfg: ServiceConfig,
    pub(crate) group: DhGroup,
    pub(crate) net: T,
    pub(crate) now: u64,
    /// Append-only device storage: a device's index ("slot") is stable
    /// for its lifetime, which is what lets timers and the routing
    /// index carry bare slot numbers. Power ordering lives in
    /// `roster`, not here.
    pub(crate) devices: Vec<ManagedDevice>,
    pub(crate) log: EventLog,
    pub(crate) next_node: u16,
    pub(crate) registry: Option<Registry>,
    /// Wall-clock time spent in pooled bank prefill across every join,
    /// kept out of the enrollment figure benchmarks report.
    pub(crate) prefill_wall: core::time::Duration,
    /// Sealed fleet evidence epochs, oldest first.
    pub(crate) sealed_epochs: Vec<SealedEpoch>,
    /// When the next epoch seals (`None` while epochs are disabled).
    pub(crate) next_seal_at: Option<u64>,
    /// Due re-attestations, deadlines, and freshness boundaries.
    pub(crate) timers: TimerWheel<Timer>,
    /// `NodeId → slot`, partitioned `fx_hash(node) % shards`.
    pub(crate) index: ShardIndex,
    /// Slots in most-powerful-first order (the canonical event order).
    pub(crate) roster: Vec<u32>,
    /// `slot → position in roster` (the per-device merge sort key).
    pub(crate) roster_pos: Vec<u32>,
    /// Per-slot scratch: the device's index into the current step's
    /// work list, `u32::MAX` when absent. Reset after every step.
    pub(crate) work_of: Vec<u32>,
    /// Persistent worker pool for shard-parallel unit execution
    /// (`cfg.workers > 0`).
    pub(crate) pool: Option<ReplayPool>,
    /// Reused pop buffer for the timer wheel.
    pub(crate) timer_scratch: Vec<(u64, Timer)>,
    /// The verifier-replica quorum (`Some` iff `cfg.quorum.verifiers >
    /// 1`). Lives outside the per-device state: replicas vote on every
    /// device's verdicts and keep fleet-wide view digests.
    pub(crate) quorum: Option<VerifierSet>,
}

impl<T: Transport> AttestationService<T> {
    /// Creates a service over a transport.
    pub fn new(cfg: ServiceConfig, group: DhGroup, net: T) -> AttestationService<T> {
        AttestationService {
            cfg,
            group,
            net,
            now: 0,
            devices: Vec::new(),
            log: EventLog::with_capacity(cfg.event_capacity),
            next_node: 1,
            registry: None,
            prefill_wall: core::time::Duration::ZERO,
            sealed_epochs: Vec::new(),
            next_seal_at: (cfg.epoch_interval > 0).then_some(cfg.epoch_interval),
            timers: TimerWheel::new(),
            index: ShardIndex::new(cfg.shards),
            roster: Vec::new(),
            roster_pos: Vec::new(),
            work_of: Vec::new(),
            pool: (cfg.workers > 0).then(|| ReplayPool::new(cfg.workers)),
            timer_scratch: Vec::new(),
            quorum: VerifierSet::from_config(&cfg.quorum),
        }
    }

    /// Cumulative wall-clock seconds spent stocking joining devices'
    /// challenge banks through the shared replay pool
    /// (`cfg.prefill_rounds` pairs per device). Benchmarks subtract
    /// this from the enrollment wall so the reported enroll throughput
    /// measures calibration + SAKE, with precompute priced on its own.
    pub fn prefill_wall_seconds(&self) -> f64 {
        self.prefill_wall.as_secs_f64()
    }

    /// Attaches the whole service to a telemetry registry: the event
    /// log's round-lifecycle counters and latency histogram
    /// (`service_*`), every enrolled device's verifier verdicts
    /// (`verifier_*{device, cause, path}`), challenge-bank counters
    /// (`vf_bank_*{device}`) and simulator stats (`sim_*{device}`).
    /// Devices joining later are attached automatically. Attaching
    /// after a crash-restore replays the restored event history into
    /// the sink first, so the series match a service that never
    /// stopped.
    pub fn attach_telemetry(&mut self, reg: &Registry) {
        self.log.attach_telemetry(reg);
        for i in 0..self.roster.len() {
            let slot = self.roster[i] as usize;
            let d = &mut self.devices[slot];
            let name = d.node.member.name.clone();
            d.verifier.attach_telemetry(reg, &[("device", &name)]);
            d.node
                .member
                .session
                .dev
                .install_telemetry(reg, &[("device", &name)]);
        }
        // The sampling layer's model quantities: the coverage knob and
        // the closed-form detection probability at the horizon `k` that
        // reaches ≥ 98% confidence — both fixed-point per-mille gauges.
        if self.cfg.sampling.is_active() {
            let cov = self.cfg.sampling.coverage_per_mille;
            let k = crate::sampling::epochs_to_detect(cov, 980);
            let ks = k.to_string();
            reg.gauge("service_spotcheck_coverage_per_mille", &[])
                .set(u64::from(cov));
            reg.gauge("service_detection_probability_per_mille", &[("k", &ks)])
                .set(crate::sampling::detect_probability_per_mille(cov, k));
        }
        self.registry = Some(reg.clone());
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The underlying transport (delivery counters).
    pub fn transport(&self) -> &T {
        &self.net
    }

    /// Mutable transport access (fault injection in tests/benches).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.net
    }

    /// The structured event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The verifier quorum, when configured with more than one replica.
    pub fn quorum(&self) -> Option<&VerifierSet> {
        self.quorum.as_ref()
    }

    /// Mutable quorum access — the attack harness's hook for
    /// compromising verifier replicas after enrollment.
    pub fn quorum_mut(&mut self) -> Option<&mut VerifierSet> {
        self.quorum.as_mut()
    }

    /// Per-device summaries, in roster (most-powerful-first) order.
    pub fn statuses(&self) -> Vec<DeviceStatus> {
        self.roster
            .iter()
            .map(|&slot| {
                let d = &self.devices[slot as usize];
                DeviceStatus {
                    name: d.node.member.name.clone(),
                    node: d.node.id,
                    state: d.state,
                    rounds_passed: d.rounds_passed,
                    consecutive_failures: d.consecutive_failures,
                    power: power_score(&d.node.member.session.dev.cfg),
                }
            })
            .collect()
    }

    fn find(&self, name: &str) -> Option<usize> {
        self.devices.iter().position(|d| d.node.member.name == name)
    }

    /// The lifecycle state of a device, if managed.
    pub fn state_of(&self, name: &str) -> Option<DeviceState> {
        self.find(name).map(|i| self.devices[i].state)
    }

    /// The derived health of a device, if managed. See [`DeviceHealth`]
    /// for the scoring rule.
    pub fn health_of(&self, name: &str) -> Option<DeviceHealth> {
        self.find(name).map(|i| {
            let d = &self.devices[i];
            let score = match d.state {
                DeviceState::Quarantined | DeviceState::Revoked => 0u8,
                _ => {
                    let transient = d
                        .consecutive_failures
                        .saturating_sub(d.consecutive_value_failures);
                    100u32
                        .saturating_sub(transient.saturating_mul(15))
                        .saturating_sub(d.consecutive_value_failures.saturating_mul(35))
                        as u8
                }
            };
            DeviceHealth {
                name: d.node.member.name.clone(),
                state: d.state,
                score,
                consecutive_failures: d.consecutive_failures,
                consecutive_value_failures: d.consecutive_value_failures,
                consecutive_restarts: d.consecutive_restarts,
            }
        })
    }

    /// The calibrated detection threshold of a device, in cycles.
    pub fn threshold_of(&self, name: &str) -> Option<u64> {
        self.find(name)
            .and_then(|i| self.devices[i].verifier.threshold())
    }

    /// Mutable access to a device's network node — the hook fault
    /// injectors and the attack harness use to compromise a device
    /// *after* enrollment.
    pub fn node_mut(&mut self, name: &str) -> Option<&mut DeviceNode> {
        self.find(name).map(|i| &mut self.devices[i].node)
    }

    /// Mutable access to a device's GPU session (shorthand over
    /// [`AttestationService::node_mut`]).
    pub fn session_mut(&mut self, name: &str) -> Option<&mut GpuSession> {
        self.node_mut(name).map(|n| &mut n.member.session)
    }

    /// Enrolls a device: calibrates its timing threshold, establishes the
    /// SAKE key (every protocol message passes through the wire codec, as
    /// it would on a real link), and schedules its first remote round.
    ///
    /// Enrollment failures do not abort the service: the device lands in
    /// `Quarantined` with the failure recorded, and the rest of the fleet
    /// keeps running — the graceful-degradation contract a long-running
    /// control plane needs.
    pub fn join(&mut self, mut member: FleetMember, enclave: Enclave) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let name = member.name.clone();
        self.log.record(self.now, &name, EventKind::Joined);

        let mut verifier =
            Verifier::new(enclave, member.session.build().clone(), self.group.clone());
        if self.cfg.bank_capacity > 0 {
            // Fast path: precompute (challenges, expected) pairs off the
            // round critical path. Enabled before calibration so the
            // calibration replays already overlap the device runs.
            verifier.enable_fast_path(sage_vf::BankConfig {
                capacity: self.cfg.bank_capacity,
                workers: self.cfg.bank_workers,
            });
            if self.cfg.prefill_rounds > 0 {
                // Stock the bank through the shared replay pool before
                // calibration starts, so the calibration loop draws
                // precomputed pairs instead of replaying serially
                // inline. Timed separately: precompute is a capacity
                // cost, not part of the enroll exchange itself.
                let t = std::time::Instant::now();
                verifier.prefill_rounds(self.cfg.prefill_rounds);
                self.prefill_wall += t.elapsed();
            }
        }
        if let Some(reg) = &self.registry {
            verifier.attach_telemetry(reg, &[("device", &name)]);
            member
                .session
                .dev
                .install_telemetry(reg, &[("device", &name)]);
        }

        let mut state = DeviceState::Enrolled;
        let mut record_state = |log: &mut EventLog, now: u64, to: DeviceState| {
            log.record(now, &name, EventKind::StateChanged { from: state, to });
            state = to;
        };

        record_state(&mut self.log, self.now, DeviceState::Attesting);
        let outcome = match verifier.calibrate(&mut member.session, self.cfg.calibration_runs) {
            Err(_) => {
                self.log
                    .record(self.now, &name, EventKind::CalibrationFailed);
                None
            }
            Ok(_) => {
                // Serialization boundary: each SAKE message is encoded
                // and re-decoded through the versioned codec, exactly as
                // it would cross the wire. A roundtrip failure is a codec
                // bug, but it must not panic the control plane: the
                // message is left untouched, the failure is remembered,
                // and the enrollment is refused below.
                let mut codec_ok = true;
                let mut tap = |_step: usize, msg: &mut SakeMessage| {
                    let bytes = wire::encode(&Frame::Sake(msg.clone()));
                    match wire::decode(&bytes) {
                        Ok(Frame::Sake(decoded)) => *msg = decoded,
                        _ => codec_ok = false,
                    }
                };
                match verifier.establish_key(&mut member.session, &mut member.agent, Some(&mut tap))
                {
                    Ok(o) if codec_ok => Some(o),
                    _ => {
                        self.log.record(self.now, &name, EventKind::EstablishFailed);
                        None
                    }
                }
            }
        };
        if outcome.is_none() {
            record_state(&mut self.log, self.now, DeviceState::Quarantined);
        }
        self.admit_device(id, member, verifier, state, outcome)
    }

    /// Installs a (possibly failed) enrollment as a managed device:
    /// session key, evidence chain, roster slot, first-action timer.
    /// Shared tail of the in-process [`AttestationService::join`] and
    /// the socket-side `join_remote`.
    fn admit_device(
        &mut self,
        id: NodeId,
        member: FleetMember,
        verifier: Verifier,
        state: DeviceState,
        outcome: Option<sage::verifier::AttestationOutcome>,
    ) -> NodeId {
        let name = member.name.clone();
        let next_action_at = outcome.is_some().then_some(self.now + 1);
        let mut node = DeviceNode::new(member, id);
        // An established key opens the device's evidence chain: its first
        // record attests the SAKE confirmation (key fingerprint plus the
        // timed establishment round the key's trust rests on).
        let (session_key, evidence, last_attested) = match outcome {
            Some(o) => {
                node.session_key = Some(o.session_key);
                let mut chain = EvidenceChain::new(&name, &o.session_key);
                chain.append(
                    self.now,
                    EvidencePayload::SakeConfirmed {
                        key_fingerprint: key_fingerprint(&o.session_key),
                        measured_cycles: o.measured_cycles,
                        threshold_cycles: o.threshold_cycles,
                    },
                );
                (Some(o.session_key), Some(chain), Some(self.now))
            }
            None => (None, None, None),
        };
        let slot = self.devices.len();
        self.devices.push(ManagedDevice {
            node,
            verifier,
            state,
            round: 0,
            rounds_passed: 0,
            consecutive_failures: 0,
            consecutive_value_failures: 0,
            consecutive_restarts: 0,
            outstanding: None,
            next_action_at,
            session_key,
            evidence,
            last_attested,
            freshness: Freshness::Trusted,
            next_fresh_at: None,
            link_up: true,
        });
        self.index.insert(id, slot);
        self.work_of.push(u32::MAX);
        self.insert_roster(slot);
        if let Some(t) = next_action_at {
            self.timers.insert(t, Timer::Action(slot as u32));
        }
        self.arm_freshness(slot);
        id
    }

    /// Arms (or clears) a device's freshness-decay timer from its live
    /// `last_attested` anchor.
    fn arm_freshness(&mut self, slot: usize) {
        let next = {
            let d = &self.devices[slot];
            if self.cfg.freshness.is_enabled()
                && d.evidence.is_some()
                && d.state != DeviceState::Revoked
            {
                self.cfg
                    .freshness
                    .next_transition_at(d.last_attested, self.now)
            } else {
                None
            }
        };
        self.devices[slot].next_fresh_at = next;
        if let Some(t) = next {
            self.timers.insert(
                t,
                Timer::Fresh {
                    slot: slot as u32,
                    at: t,
                },
            );
        }
    }

    /// Revokes a device: it is no longer scheduled and its outstanding
    /// round (if any) is abandoned. Returns `false` if unknown.
    pub fn leave(&mut self, name: &str) -> bool {
        let Some(i) = self.find(name) else {
            return false;
        };
        let d = &mut self.devices[i];
        let from = d.state;
        d.state = DeviceState::Revoked;
        d.outstanding = None;
        d.next_action_at = None;
        // Leave the wheel entries in place: they pop as validated
        // no-ops (lazy cancellation).
        d.next_fresh_at = None;
        let dev = d.node.member.name.clone();
        self.log.record(
            self.now,
            &dev,
            EventKind::StateChanged {
                from,
                to: DeviceState::Revoked,
            },
        );
        self.log.record(self.now, &dev, EventKind::Left);
        true
    }

    /// Inserts a just-pushed device slot into the power-ordered roster
    /// (paper §3.2; name tie-break shared with [`sage::multi`]). A
    /// binary search keeps the join path O(log n) compares + one tail
    /// memmove instead of a full re-sort.
    fn insert_roster(&mut self, slot: usize) {
        let devs = &self.devices;
        let rank = |s: usize| {
            let d = &devs[s];
            (
                core::cmp::Reverse(power_score(&d.node.member.session.dev.cfg)),
                &d.node.member.name,
            )
        };
        let key = rank(slot);
        let pos = self.roster.partition_point(|&r| rank(r as usize) < key);
        self.roster.insert(pos, slot as u32);
        if self.roster_pos.len() <= slot {
            self.roster_pos.resize(slot + 1, 0);
        }
        for p in pos..self.roster.len() {
            self.roster_pos[self.roster[p] as usize] = p as u32;
        }
    }

    /// Rebuilds the power-ordered roster index from scratch (restore
    /// path; joins use [`AttestationService::insert_roster`]).
    pub(crate) fn sort_roster(&mut self) {
        let devs = &self.devices;
        let mut order: Vec<u32> = (0..devs.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let (da, db) = (&devs[a as usize], &devs[b as usize]);
            power_score(&db.node.member.session.dev.cfg)
                .cmp(&power_score(&da.node.member.session.dev.cfg))
                .then_with(|| da.node.member.name.cmp(&db.node.member.name))
        });
        self.roster = order;
        self.roster_pos = vec![0; devs.len()];
        for (p, &s) in self.roster.iter().enumerate() {
            self.roster_pos[s as usize] = p as u32;
        }
    }

    /// Rebuilds every piece of derived scheduling state — roster order,
    /// routing index, per-step scratch, and the timer wheel — from the
    /// devices' durable fields. The restore path calls this after
    /// reconstructing `devices`; the wheel itself is never snapshotted.
    pub(crate) fn rebuild_schedule(&mut self) {
        self.sort_roster();
        self.work_of = vec![u32::MAX; self.devices.len()];
        self.index.clear();
        self.timers = TimerWheel::new();
        for slot in 0..self.devices.len() {
            self.index.insert(self.devices[slot].node.id, slot);
            if let Some(t) = self.devices[slot].next_action_at {
                self.timers.insert(t, Timer::Action(slot as u32));
            }
            if let Some(t) = self.devices[slot].outstanding.as_ref().map(|o| o.deadline) {
                self.timers.insert(t, Timer::Deadline(slot as u32));
            }
            self.arm_freshness(slot);
        }
    }

    /// The earliest virtual time at which the service has work. O(1):
    /// the network and the timer wheel each keep their own next-due
    /// cursor; no roster scan. A lazily-cancelled timer can make this
    /// conservative (early), never late — the extra step is silent.
    pub fn next_event_at(&self) -> Option<u64> {
        let mut next: Option<u64> = self.net.next_event_at().map(|t| t.max(self.now));
        let mut fold = |t: u64| next = Some(next.map_or(t, |n| n.min(t)));
        if let Some(t) = self.timers.next_due() {
            fold(t);
        }
        if let Some(t) = self.next_seal_at {
            fold(t);
        }
        next
    }

    /// Runs the event loop until virtual time `t` (inclusive).
    pub fn run_until(&mut self, t: u64) {
        while let Some(e) = self.next_event_at() {
            if e > t {
                break;
            }
            self.now = self.now.max(e);
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Runs the event loop for `ticks` more virtual ticks.
    pub fn run_for(&mut self, ticks: u64) {
        self.run_until(self.now + ticks);
    }

    /// Processes everything due at the current virtual time: batched
    /// intake, per-device work units (pool-parallel when configured),
    /// then the canonical-order merge. See the module docs for the
    /// determinism argument.
    fn step(&mut self) {
        let now = self.now;

        // ---- intake: link events, one network drain, one wheel pop ---
        self.intake_link_events();
        let arrivals = self.net.drain_due(now);
        let mut due = std::mem::take(&mut self.timer_scratch);
        self.timers.pop_due(now, &mut due);

        let mut works: Vec<DevWork> = Vec::new();
        let mut fresh_fires: Vec<u32> = Vec::new();

        // Mark-or-get the work unit for a slot (work_of doubles as the
        // dedup map; reset below).
        macro_rules! work_for {
            ($slot:expr) => {{
                let slot: usize = $slot;
                if self.work_of[slot] == u32::MAX {
                    self.work_of[slot] = works.len() as u32;
                    works.push(DevWork {
                        slot,
                        shard: self.index.shard_of(self.devices[slot].node.id),
                        rpos: self.roster_pos[slot],
                        frames: Vec::new(),
                        responses: Vec::new(),
                    });
                }
                &mut works[self.work_of[slot] as usize]
            }};
        }

        // Frames route by one shard-map lookup; responses carry their
        // global arrival seq so the merge can restore arrival order
        // across devices. Unroutable frames (unknown node) are dropped,
        // matching the sequential engine's fail-closed handling.
        for (seq, env) in arrivals.into_iter().enumerate() {
            if env.dst == VERIFIER_NODE {
                if let Some(slot) = self.index.get(env.src) {
                    work_for!(slot).responses.push((seq as u64, env));
                }
            } else if let Some(slot) = self.index.get(env.dst) {
                work_for!(slot).frames.push(env);
            }
        }
        for &(_, timer) in &due {
            match timer {
                Timer::Action(s) | Timer::Deadline(s) => {
                    // The pop only marks the device; the unit re-checks
                    // the live condition, so stale entries are no-ops.
                    let _ = work_for!(s as usize);
                }
                Timer::Fresh { slot, at } => {
                    let d = &mut self.devices[slot as usize];
                    if d.next_fresh_at == Some(at) {
                        d.next_fresh_at = None;
                        fresh_fires.push(slot);
                    }
                }
            }
        }
        due.clear();
        self.timer_scratch = due;
        for w in &works {
            self.work_of[w.slot] = u32::MAX;
        }

        // ---- units: per-device phases, shard-parallel when pooled ----
        let mut effs: Vec<DevEffects> = Vec::with_capacity(works.len());
        let pooled = self.pool.is_some() && self.index.shards() > 1 && works.len() > 1;
        if pooled {
            let mut jobs: Vec<Vec<u32>> = vec![Vec::new(); self.index.shards()];
            for (wi, w) in works.iter().enumerate() {
                jobs[w.shard].push(wi as u32);
            }
            jobs.retain(|j| !j.is_empty());
            let mut out: Vec<Option<DevEffects>> = works.iter().map(|_| None).collect();
            {
                let cfg = self.cfg;
                let pool = self.pool.as_ref().expect("pooled implies pool");
                let dev = SendPtr(self.devices.as_mut_ptr());
                let wrk = SendPtr(works.as_mut_ptr());
                let res = SendPtr(out.as_mut_ptr());
                let jobs = &jobs;
                pool.run_scoped(jobs.len(), &|j| {
                    for &wi in &jobs[j] {
                        // SAFETY: every work index appears in exactly one
                        // job, every slot in at most one work unit (the
                        // work_of dedup above), and out/works/devices
                        // outlive the scoped run — so each access below
                        // is the sole &mut to its element.
                        unsafe {
                            let w = wrk.at(wi as usize);
                            let d = dev.at(w.slot);
                            *res.at(wi as usize) = Some(run_unit(&cfg, now, d, w));
                        }
                    }
                });
            }
            effs.extend(out.into_iter().map(|e| e.expect("every unit ran")));
        } else {
            for w in &mut works {
                let d = &mut self.devices[w.slot];
                effs.push(run_unit(&self.cfg, now, d, w));
            }
        }

        // ---- merge: apply effects in the sequential engine's order ---
        effs.sort_unstable_by_key(|e| e.rpos);

        // Phase 1 — device replies, roster-major, frame order within a
        // device (this fixes the transport's rng draw sequence).
        for e in &mut effs {
            for (at, env) in e.replies.drain(..) {
                self.net.send(at, env);
            }
        }
        // Phase 2 — response verdicts in global arrival order.
        let mut groups: Vec<(u64, u32, u32)> = Vec::new();
        for (ei, e) in effs.iter().enumerate() {
            for (vi, (seq, _)) in e.verdicts.iter().enumerate() {
                groups.push((*seq, ei as u32, vi as u32));
            }
        }
        groups.sort_unstable_by_key(|g| g.0);
        for (_, ei, vi) in groups {
            let slot = effs[ei as usize].slot;
            let fx = std::mem::take(&mut effs[ei as usize].verdicts[vi as usize].1);
            self.flush_effects(slot, fx);
        }
        // Phase 3 — deadline expiries, roster order.
        for e in &mut effs {
            if let Some(fx) = e.deadline.take() {
                let slot = e.slot;
                self.flush_effects(slot, fx);
            }
        }
        // Phase 4 — round starts, roster order; each device records its
        // RoundStarted before its challenge hits the wire.
        for e in &mut effs {
            if let Some((fx, env)) = e.start.take() {
                let slot = e.slot;
                self.flush_effects(slot, fx);
                if let Some(env) = env {
                    self.net.send(now, env);
                }
            }
        }
        self.seal_due_epochs();
        // Phase 5 — freshness boundaries, roster order.
        fresh_fires.sort_unstable_by_key(|&s| self.roster_pos[s as usize]);
        for slot in fresh_fires {
            let mut fx = Effects::default();
            {
                let d = &mut self.devices[slot as usize];
                core_refresh_freshness(&self.cfg, now, d, &mut fx);
            }
            self.flush_effects(slot as usize, fx);
            self.arm_freshness(slot as usize);
        }
    }

    /// Applies one buffered effect group: records its events under the
    /// device's name, then arms each requested timer *if the device's
    /// live schedule still wants it* — a request superseded by a later
    /// phase in the same step simply fails validation, which is what
    /// keeps lazy cancellation consistent.
    fn flush_effects(&mut self, slot: usize, fx: Effects) {
        if !fx.events.is_empty() {
            let name = self.devices[slot].node.member.name.clone();
            for ev in fx.events {
                self.log.record(self.now, &name, ev);
            }
        }
        // Quorum ballots tally after the verdict's own events/evidence,
        // so dissent records land immediately behind the round they
        // dispute. The dispute effects carry no votes of their own, so
        // the nested flush terminates.
        for req in &fx.votes {
            self.tally_vote(slot, *req);
        }
        for req in fx.timers {
            match req {
                TimerReq::Action(t) => {
                    if self.devices[slot].next_action_at == Some(t) {
                        self.timers.insert(t, Timer::Action(slot as u32));
                    }
                }
                TimerReq::Deadline(t) => {
                    let live = self.devices[slot]
                        .outstanding
                        .as_ref()
                        .is_some_and(|o| o.deadline == t);
                    if live {
                        self.timers.insert(t, Timer::Deadline(slot as u32));
                    }
                }
                TimerReq::Fresh(t) => {
                    if self.devices[slot].next_fresh_at == Some(t) {
                        self.timers.insert(
                            t,
                            Timer::Fresh {
                                slot: slot as u32,
                                at: t,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Puts one verdict to the verifier quorum. Agreement is silent —
    /// counters inside the [`VerifierSet`] move, nothing else — which
    /// is what keeps an honest-unanimous quorum's event history and
    /// evidence heads byte-identical to the single-verifier baseline.
    /// Dissent records a `QuorumDisputed` event, flags each dissenting
    /// replica `VerifierSuspected`, and seals one
    /// [`EvidencePayload::QuorumVote`] record per dissent into the
    /// device's chain.
    fn tally_vote(&mut self, slot: usize, req: VoteReq) {
        if self.quorum.is_none() {
            return;
        }
        let name = self.devices[slot].node.member.name.clone();
        let set = self.quorum.as_mut().expect("checked above");
        let decision = set.collect(&name, req.round, req.verdict);
        if decision.dissenters.is_empty() {
            return;
        }
        let mut fx = Effects::default();
        fx.events.push(EventKind::QuorumDisputed {
            round: req.round,
            accepts: decision.votes_accept,
            rejects: decision.votes_reject,
        });
        for &(verifier, vote) in &decision.dissenters {
            fx.events.push(EventKind::VerifierSuspected {
                verifier,
                round: req.round,
            });
            core_append_evidence(
                &self.cfg,
                self.now,
                &mut self.devices[slot],
                EvidencePayload::QuorumVote {
                    round: req.round,
                    verifier,
                    vote,
                    outcome: decision.outcome,
                    votes_accept: decision.votes_accept,
                    votes_reject: decision.votes_reject,
                },
                &mut fx,
            );
        }
        self.flush_effects(slot, fx);
    }

    /// Seals every epoch due at the current time (a catch-up loop, so a
    /// long clock hop seals each missed boundary in order).
    fn seal_due_epochs(&mut self) {
        while let Some(t) = self.next_seal_at {
            if t > self.now {
                break;
            }
            self.next_seal_at = Some(t + self.cfg.epoch_interval);
            let mut leaves: Vec<EpochLeaf> = self
                .devices
                .iter()
                .filter_map(|d| {
                    d.evidence.as_ref().map(|c| EpochLeaf {
                        device: d.node.member.name.clone(),
                        head: c.head(),
                        seq: c.seq(),
                    })
                })
                .collect();
            // Name order is the canonical leaf order the root commits to
            // (the roster itself is power-ordered and churns).
            leaves.sort_by(|a, b| a.device.cmp(&b.device));
            let root = epoch_root(&leaves);
            let index = self.sealed_epochs.last().map_or(1, |e| e.index + 1);
            self.log
                .record(t, "fleet", EventKind::EpochSealed { epoch: index, root });
            self.sealed_epochs.push(SealedEpoch {
                index,
                at: t,
                root,
                leaves,
            });
        }
    }

    /// Sends one authenticated liveness probe to a device over a channel
    /// keyed by its SAKE session key, and records the outcome as
    /// evidence. Returns `None` for unknown devices or devices without
    /// an established key; otherwise whether the echo verified.
    pub fn probe_device(&mut self, name: &str) -> Option<bool> {
        let i = self.find(name)?;
        let sk = self.devices[i].session_key?;
        let seq = self.devices[i].evidence.as_ref()?.seq();
        // Deterministic per-probe nonce: a splitmix64 finalizer over the
        // (time, chain position) pair — unique per probe, reproducible
        // across runs.
        let mut nonce = self.now ^ seq.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
        nonce = (nonce ^ (nonce >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        nonce = (nonce ^ (nonce >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        nonce ^= nonce >> 31;
        let mut host = SecureChannel::new(sk, Role::Host);
        let probe = host.probe_liveness(nonce);
        let ok = self.devices[i]
            .node
            .answer_liveness(&probe)
            .is_some_and(|echo| host.confirm_liveness(nonce, &echo).is_ok());
        let verdict = if ok {
            StageVerdict::Pass
        } else {
            StageVerdict::Timeout
        };
        self.append_evidence_now(i, EvidencePayload::ChannelLiveness { nonce, verdict });
        Some(ok)
    }

    /// Checks a user kernel's measured hash on a device (paper §5.2.3)
    /// and records the measurement as evidence. Returns `None` for
    /// unknown or never-established devices; otherwise whether the
    /// measured hash matched.
    pub fn verify_kernel(&mut self, name: &str, code: &[u8]) -> Option<bool> {
        let i = self.find(name)?;
        self.devices[i].evidence.as_ref()?;
        let d = &mut self.devices[i];
        let outcome = d.verifier.verify_user_kernel_hash(
            &mut d.node.member.session,
            &mut d.node.member.agent,
            code,
        );
        let (ok, payload) = match outcome {
            Ok(hash) => (
                true,
                EvidencePayload::KernelHash {
                    hash,
                    verdict: StageVerdict::Pass,
                },
            ),
            Err(_) => (
                false,
                EvidencePayload::KernelHash {
                    hash: [0u8; 32],
                    verdict: StageVerdict::WrongValue,
                },
            ),
        };
        self.append_evidence_now(i, payload);
        Some(ok)
    }

    /// Serial-path evidence append (probe/kernel checks): runs the core
    /// append inline and flushes its effects immediately.
    fn append_evidence_now(&mut self, slot: usize, payload: EvidencePayload) {
        let mut fx = Effects::default();
        core_append_evidence(
            &self.cfg,
            self.now,
            &mut self.devices[slot],
            payload,
            &mut fx,
        );
        self.flush_effects(slot, fx);
    }

    /// Builds a self-contained [`DeviceReport`] for one device, anchored
    /// at the newest sealed epoch: the device's leaf and inclusion
    /// proof, every chain record appended since the seal, and the
    /// freshness claim at the current clock — all under the device's
    /// evidence-key CMAC. `None` until an epoch sealed with the device
    /// in it.
    pub fn report_for(&self, name: &str) -> Option<DeviceReport> {
        let d = &self.devices[self.find(name)?];
        let chain = d.evidence.as_ref()?;
        let epoch = self.sealed_epochs.last()?;
        let pos = epoch.leaves.iter().position(|l| l.device == name)?;
        let leaf = epoch.leaves[pos].clone();
        let proof = prove_inclusion(&epoch.leaves, pos);
        let suffix = chain.suffix(leaf.seq);
        let claim = FreshnessClaim {
            policy: self.cfg.freshness,
            last_pass_at: d.last_attested,
            asserted_at: self.now,
            level: self.cfg.freshness.level(d.last_attested, self.now),
        };
        Some(DeviceReport::seal(
            epoch.index,
            leaf,
            epoch.root,
            proof,
            suffix,
            claim,
            &chain.evidence_key(),
        ))
    }

    /// Every sealed fleet epoch, oldest first.
    pub fn sealed_epochs(&self) -> &[SealedEpoch] {
        &self.sealed_epochs
    }

    /// A device's evidence chain, if SAKE establishment succeeded.
    pub fn evidence_of(&self, name: &str) -> Option<&EvidenceChain> {
        self.find(name)
            .and_then(|i| self.devices[i].evidence.as_ref())
    }

    /// A device's evidence key (what a relying party needs, alongside a
    /// trusted epoch root, to verify its reports out of band).
    pub fn evidence_key_of(&self, name: &str) -> Option<[u8; 16]> {
        self.evidence_of(name).map(|c| c.evidence_key())
    }

    /// A device's current freshness level.
    pub fn freshness_of(&self, name: &str) -> Option<Freshness> {
        self.find(name).map(|i| self.devices[i].freshness)
    }

    /// Renders a service snapshot (time, per-device status, counters) as
    /// JSON — the `svcperf` benchmark embeds this in `BENCH_svc.json`.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"virtual_time\": {},\n", self.now));
        out.push_str("  \"devices\": [\n");
        let statuses = self.statuses();
        for (i, s) in statuses.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"state\": \"{}\", \"rounds_passed\": {}, \"consecutive_failures\": {}}}{}\n",
                crate::events::json_str(&s.name),
                s.state.as_str(),
                s.rounds_passed,
                s.consecutive_failures,
                if i + 1 == statuses.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"counters\": ");
        out.push_str(&self.log.counters_json());
        out.push_str("\n}\n");
        out
    }

    /// How many devices have a round in flight. The wall-clock driver
    /// ([`crate::clock::ClockDriver`]) freezes virtual time while this
    /// is non-zero, so responses are verdicted on their round's start
    /// tick regardless of real network latency.
    pub fn outstanding_rounds(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.outstanding.is_some())
            .count()
    }

    /// Folds transport link events into trust policy. Link loss is a
    /// *recoverable* condition with its own labels — it degrades a
    /// device but never touches its attestation record or failure
    /// budgets, because a severed cable must not look like a cheating
    /// GPU (and must never cause a false accept: the round simply stays
    /// outstanding until resume or watchdog).
    fn intake_link_events(&mut self) {
        for ev in self.net.take_link_events() {
            match ev {
                crate::net::LinkEvent::Down(node) => {
                    if let Some(slot) = self.index.get(node) {
                        self.link_down(slot);
                    }
                }
                crate::net::LinkEvent::Resumed(node) => {
                    if let Some(slot) = self.index.get(node) {
                        self.link_resumed(slot);
                    }
                }
            }
        }
    }

    fn link_down(&mut self, slot: usize) {
        let (name, transition) = {
            let d = &mut self.devices[slot];
            if !d.link_up {
                return;
            }
            d.link_up = false;
            let transition =
                matches!(d.state, DeviceState::Trusted | DeviceState::Attesting).then(|| {
                    let from = d.state;
                    d.state = DeviceState::Degraded;
                    from
                });
            (d.node.member.name.clone(), transition)
        };
        self.log.record(self.now, &name, EventKind::LinkDown);
        if let Some(from) = transition {
            self.log.record(
                self.now,
                &name,
                EventKind::StateChanged {
                    from,
                    to: DeviceState::Degraded,
                },
            );
        }
    }

    fn link_resumed(&mut self, slot: usize) {
        let (name, resend) = {
            let d = &mut self.devices[slot];
            if d.link_up {
                return;
            }
            d.link_up = true;
            // The outstanding challenge may have died with the old
            // connection (or been shed while down): re-encode it from
            // the live round state and send it again. The device
            // answers idempotently, and a duplicate response is a
            // logged no-op (`LateResponse`).
            let resend = d.outstanding.as_ref().map(|o| Envelope {
                src: VERIFIER_NODE,
                dst: d.node.id,
                bytes: wire::encode(&Frame::Challenge {
                    round: o.round,
                    challenges: o.challenges.clone(),
                }),
            });
            (d.node.member.name.clone(), resend)
        };
        self.log.record(self.now, &name, EventKind::LinkResumed);
        if let Some(env) = resend {
            let now = self.now;
            self.net.send(now, env);
        }
    }
}

impl AttestationService<crate::tcp::TcpTransport> {
    /// Enrolls a device that lives across a socket. `twin` is the
    /// verifier's local replica of the device's VF build — the paper's
    /// verifier-side simulation, used for checksum replay and the
    /// challenge bank — not the remote device itself: every protocol
    /// byte of calibration and SAKE crosses `stream`. On success the
    /// stream is adopted into the transport as the device's supervised
    /// connection and future reconnects resume against the SAKE session
    /// (no re-enrollment); on failure the device lands `Quarantined`
    /// and the connection is dropped.
    pub fn join_remote(
        &mut self,
        mut twin: FleetMember,
        enclave: Enclave,
        mut stream: crate::tcp::FrameStream,
    ) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let name = twin.name.clone();
        self.log.record(self.now, &name, EventKind::Joined);

        let mut verifier = Verifier::new(enclave, twin.session.build().clone(), self.group.clone());
        if self.cfg.bank_capacity > 0 {
            verifier.enable_fast_path(sage_vf::BankConfig {
                capacity: self.cfg.bank_capacity,
                workers: self.cfg.bank_workers,
            });
            if self.cfg.prefill_rounds > 0 {
                let t = std::time::Instant::now();
                verifier.prefill_rounds(self.cfg.prefill_rounds);
                self.prefill_wall += t.elapsed();
            }
        }
        if let Some(reg) = &self.registry {
            verifier.attach_telemetry(reg, &[("device", &name)]);
            twin.session
                .dev
                .install_telemetry(reg, &[("device", &name)]);
        }

        let mut state = DeviceState::Enrolled;
        let mut record_state = |log: &mut EventLog, now: u64, to: DeviceState| {
            log.record(now, &name, EventKind::StateChanged { from: state, to });
            state = to;
        };
        record_state(&mut self.log, self.now, DeviceState::Attesting);

        // One wall budget covers the whole exchange; a stalled or
        // severed link fails the enrollment instead of hanging the
        // control plane.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let mut calib_round = 0u64;
        let calibrated = verifier.calibrate_with(self.cfg.calibration_runs, &mut |challenges| {
            calib_round += 1;
            stream
                .write_frame(&Frame::Challenge {
                    round: calib_round,
                    challenges: challenges.to_vec(),
                })
                .map_err(|_| SageError::Protocol("enrollment link failed".into()))?;
            loop {
                match stream.read_frame_deadline(deadline) {
                    Ok(Some(Frame::Response {
                        round,
                        checksum,
                        measured_cycles,
                    })) if round == calib_round => return Ok((checksum, measured_cycles)),
                    Ok(Some(Frame::Heartbeat { .. })) => continue,
                    _ => return Err(SageError::Protocol("enrollment link failed".into())),
                }
            }
        });
        let outcome = match calibrated {
            Err(_) => {
                self.log
                    .record(self.now, &name, EventKind::CalibrationFailed);
                None
            }
            Ok(_) => {
                // Over a real link the commit rides in SakeCommitTimed,
                // carrying the device's measured exchange time that the
                // in-process flow passes out of band.
                let est = verifier.establish_key_with(&mut |step, msg| {
                    stream
                        .write_frame(&Frame::Sake(msg))
                        .map_err(|_| SageError::Protocol("enrollment link failed".into()))?;
                    loop {
                        return match stream.read_frame_deadline(deadline) {
                            Ok(Some(Frame::SakeCommitTimed {
                                w2,
                                mac,
                                measured_cycles,
                            })) if step == 0 => {
                                Ok((SakeMessage::Commit { w2, mac }, Some(measured_cycles)))
                            }
                            Ok(Some(Frame::Sake(reply))) if step > 0 => Ok((reply, None)),
                            Ok(Some(Frame::Heartbeat { .. })) => continue,
                            _ => Err(SageError::Protocol("enrollment link failed".into())),
                        };
                    }
                });
                match est {
                    Ok(o) => Some(o),
                    Err(_) => {
                        self.log.record(self.now, &name, EventKind::EstablishFailed);
                        None
                    }
                }
            }
        };
        match &outcome {
            Some(o) => {
                // Adopt the live connection: supervision threads, a
                // bounded outbox, and the resume key derived from the
                // freshly-established SAKE session.
                self.net.adopt_peer(
                    name.clone(),
                    id,
                    crate::tcp::link_key(&o.session_key),
                    stream,
                );
            }
            None => {
                record_state(&mut self.log, self.now, DeviceState::Quarantined);
                stream.conn().shutdown();
            }
        }
        self.admit_device(id, twin, verifier, state, outcome)
    }
}

/// Runs one device's due work in the canonical per-device phase order,
/// mutating only that device and buffering every global effect. Runs on
/// a pool thread when workers are configured — nothing here may touch
/// shared service state.
fn run_unit(cfg: &ServiceConfig, now: u64, d: &mut ManagedDevice, w: &mut DevWork) -> DevEffects {
    let mut eff = DevEffects {
        slot: w.slot,
        rpos: w.rpos,
        replies: Vec::new(),
        verdicts: Vec::new(),
        deadline: None,
        start: None,
    };
    // Phase a — inbound frames, arrival order.
    for env in w.frames.drain(..) {
        if d.state == DeviceState::Revoked {
            continue; // a revoked device is off the network
        }
        let Ok(frame) = wire::decode(&env.bytes) else {
            continue; // corrupt frame: fail closed, deadline covers it
        };
        if let Some((send_at, reply)) = d.node.handle(now, &frame) {
            eff.replies.push((
                send_at,
                Envelope {
                    src: d.node.id,
                    dst: VERIFIER_NODE,
                    bytes: wire::encode(&reply),
                },
            ));
        }
    }
    // Phase b — response verdicts, arrival order (the seq carries the
    // cross-device arrival order to the merge).
    for (seq, env) in w.responses.drain(..) {
        let Ok(Frame::Response {
            round,
            checksum,
            measured_cycles,
        }) = wire::decode(&env.bytes)
        else {
            continue;
        };
        let mut fx = Effects::default();
        core_verdict(cfg, now, d, round, checksum, measured_cycles, &mut fx);
        eff.verdicts.push((seq, fx));
    }
    // Phase c — deadline expiry, evaluated on the live state (a verdict
    // above may have consumed the outstanding round).
    if d.outstanding.as_ref().is_some_and(|o| o.deadline <= now) {
        if let Some(o) = d.outstanding.take() {
            let mut fx = Effects::default();
            if d.link_up {
                let path = match o.expected {
                    Some(_) => EvidencePath::Precomputed,
                    None => EvidencePath::Classic,
                };
                core_round_failed(cfg, now, d, o.round, FailReason::Timeout, 0, path, &mut fx);
            } else {
                core_round_link_down(cfg, now, d, o.round, &mut fx);
            }
            eff.deadline = Some(fx);
        }
    }
    // Phase d — due round start, again on live state (a zero-backoff
    // restart in phase b/c cascades into a same-step start, exactly as
    // the sequential engine's phase ordering produced).
    if d.next_action_at.is_some_and(|t| t <= now) {
        let mut fx = Effects::default();
        let env = core_start_round(cfg, now, d, &mut fx);
        eff.start = Some((fx, env));
    }
    eff
}

/// Judges one response against the device's outstanding round.
#[allow(clippy::too_many_arguments)]
fn core_verdict(
    cfg: &ServiceConfig,
    now: u64,
    d: &mut ManagedDevice,
    round: u64,
    checksum: [u32; 8],
    measured: u64,
    fx: &mut Effects,
) {
    let o = match d.outstanding.take() {
        Some(o) if o.round == round => o,
        other => {
            // Late, duplicated, or replayed response: ignore it and put
            // any genuinely outstanding round back.
            d.outstanding = other;
            fx.events.push(EventKind::LateResponse { round });
            return;
        }
    };
    // Relay/topology gate (checked before value and timing): a response
    // whose wire share — wall elapsed minus the compute time it reports
    // — exceeds the calibrated direct-link gate paid at least two link
    // round trips. The checksum may be perfect and the §7.2 timing
    // clean (the outsourced GPU is faster), but the topology cannot
    // lie about the extra hop.
    if crate::quorum::relay_wire_excess(
        measured,
        now.saturating_sub(o.started_at),
        cfg.relay_rtt_gate,
    )
    .is_some()
    {
        let path = match o.expected {
            Some(_) => EvidencePath::Precomputed,
            None => EvidencePath::Classic,
        };
        core_round_failed(cfg, now, d, round, FailReason::Relay, measured, path, fx);
        return;
    }
    // A bank hit carries its precomputed expected checksum: the verdict
    // is a compare + timing check, zero replay online.
    let verdict = match o.expected {
        Some(expected) => d
            .verifier
            .check_response_precomputed(expected, checksum, measured),
        None => d.verifier.check_response(&o.challenges, checksum, measured),
    };
    let path = match o.expected {
        Some(_) => EvidencePath::Precomputed,
        None => EvidencePath::Classic,
    };
    match verdict {
        Ok(_) => core_round_passed(cfg, now, d, round, measured, path, fx),
        Err(SageError::TimingExceeded { .. }) => {
            core_round_failed(cfg, now, d, round, FailReason::TooSlow, measured, path, fx)
        }
        Err(_) => core_round_failed(
            cfg,
            now,
            d,
            round,
            FailReason::WrongValue,
            measured,
            path,
            fx,
        ),
    }
}

fn core_round_passed(
    cfg: &ServiceConfig,
    now: u64,
    d: &mut ManagedDevice,
    round: u64,
    measured: u64,
    path: EvidencePath,
    fx: &mut Effects,
) {
    d.rounds_passed += 1;
    d.consecutive_failures = 0;
    d.consecutive_value_failures = 0;
    d.consecutive_restarts = 0;
    let at = now + cfg.reattest_interval;
    d.next_action_at = Some(at);
    fx.timers.push(TimerReq::Action(at));
    let threshold = d.verifier.threshold().unwrap_or(0);
    fx.events.push(EventKind::RoundPassed { round, measured });
    if cfg.quorum.is_active() {
        fx.votes.push(VoteReq {
            round,
            verdict: StageVerdict::Pass,
        });
    }
    core_append_evidence(
        cfg,
        now,
        d,
        EvidencePayload::ChecksumRound {
            round,
            measured_cycles: measured,
            threshold_cycles: threshold,
            verdict: StageVerdict::Pass,
            path,
        },
        fx,
    );
    if matches!(d.state, DeviceState::Attesting | DeviceState::Degraded) {
        core_set_state(d, DeviceState::Trusted, fx);
    }
}

#[allow(clippy::too_many_arguments)]
fn core_round_failed(
    cfg: &ServiceConfig,
    now: u64,
    d: &mut ManagedDevice,
    round: u64,
    reason: FailReason,
    measured: u64,
    path: EvidencePath,
    fx: &mut Effects,
) {
    let policy = cfg.policy;
    fx.events.push(EventKind::RoundFailed { round, reason });
    let verdict = match reason {
        FailReason::WrongValue => StageVerdict::WrongValue,
        // A relay reject is a timing-family verdict: the exchange took
        // too long once the wire share is accounted for.
        FailReason::TooSlow | FailReason::Relay => StageVerdict::TooSlow,
        // LinkDown never reaches this function — it has its own
        // evidence-free path (`core_round_link_down`).
        FailReason::Timeout | FailReason::LinkDown => StageVerdict::Timeout,
    };
    if cfg.quorum.is_active() {
        fx.votes.push(VoteReq { round, verdict });
    }
    let threshold = d.verifier.threshold().unwrap_or(0);
    core_append_evidence(
        cfg,
        now,
        d,
        EvidencePayload::ChecksumRound {
            round,
            measured_cycles: measured,
            threshold_cycles: threshold,
            verdict,
            path,
        },
        fx,
    );

    // Paper §7.2: a timing-only reject is ≈0.5% likely on an honest
    // device — restart the verification instead of counting it
    // against the failure budget. With `restart_on_timeout` the
    // watchdog extends the same allowance to expired deadlines (a
    // transiently-unreachable device), sharing the restart budget.
    let restartable = match reason {
        FailReason::TooSlow => true,
        FailReason::Timeout => policy.restart_on_timeout,
        // Topology does not flap the way timing noise does — a relayed
        // exchange stays relayed, so no restart allowance.
        FailReason::WrongValue | FailReason::LinkDown | FailReason::Relay => false,
    };
    if restartable && d.consecutive_restarts < policy.max_timing_restarts {
        d.consecutive_restarts += 1;
        let at = now + policy.backoff_base;
        d.next_action_at = Some(at);
        fx.timers.push(TimerReq::Action(at));
        fx.events.push(EventKind::Restarted { round });
        return;
    }
    d.consecutive_failures += 1;
    if reason == FailReason::WrongValue {
        d.consecutive_value_failures += 1;
    }
    // Two quarantine budgets: the general one for any consecutive
    // failures, and a (usually tighter) one for wrong checksums —
    // the signal no honest device can emit.
    if d.consecutive_failures >= policy.quarantine_after
        || d.consecutive_value_failures >= policy.value_quarantine_after
    {
        d.next_action_at = None;
        core_set_state(d, DeviceState::Quarantined, fx);
    } else {
        let delay = policy.backoff_delay(d.consecutive_failures)
            + seeded_jitter(
                cfg.backoff_jitter,
                &d.node.member.name,
                u64::from(d.consecutive_failures),
            );
        let at = now + delay;
        d.next_action_at = Some(at);
        fx.timers.push(TimerReq::Action(at));
        if d.state != DeviceState::Degraded {
            core_set_state(d, DeviceState::Degraded, fx);
        }
    }
}

/// A round's deadline expired while the device's link was known-down.
/// This is the one failure path that must stay off the attestation
/// record: no evidence is appended and no failure budget is touched —
/// the link already demoted the device to `Degraded`, and a severed
/// cable must never read as a cheating GPU. The round is abandoned
/// (never accepted — no false-accept window) and a jittered retry is
/// scheduled so the fleet doesn't storm the moment links heal.
fn core_round_link_down(
    cfg: &ServiceConfig,
    now: u64,
    d: &mut ManagedDevice,
    round: u64,
    fx: &mut Effects,
) {
    fx.events.push(EventKind::RoundFailed {
        round,
        reason: FailReason::LinkDown,
    });
    let delay =
        cfg.policy.backoff_base + seeded_jitter(cfg.backoff_jitter, &d.node.member.name, d.round);
    let at = now + delay;
    d.next_action_at = Some(at);
    fx.timers.push(TimerReq::Action(at));
    if d.state != DeviceState::Degraded && d.state != DeviceState::Quarantined {
        core_set_state(d, DeviceState::Degraded, fx);
    }
}

/// Starts the device's next round if it is still eligible; returns the
/// challenge envelope to send (at the current tick) when it is.
fn core_start_round(
    cfg: &ServiceConfig,
    now: u64,
    d: &mut ManagedDevice,
    fx: &mut Effects,
) -> Option<Envelope> {
    d.next_action_at = None;
    if !matches!(
        d.state,
        DeviceState::Attesting | DeviceState::Trusted | DeviceState::Degraded
    ) {
        return None;
    }
    let threshold = d.verifier.threshold()?; // uncalibrated devices never get here (join quarantines them)
                                             // Spot-check sampling: a `Trusted` device outside this epoch's
                                             // seeded plan sleeps to the next epoch boundary instead of
                                             // attesting. Only `Trusted` devices are skippable — `Attesting`
                                             // and `Degraded` devices are under investigation and always
                                             // attest, so a suspect cannot hide behind the sampler. The rule is
                                             // a pure function of `(seed, epoch, name)`, so every shard/worker
                                             // geometry (and every verifier replica) draws the same plan.
    if cfg.sampling.is_active() && cfg.epoch_interval > 0 && d.state == DeviceState::Trusted {
        let epoch = now / cfg.epoch_interval;
        if !crate::sampling::covers(&cfg.sampling, epoch, &d.node.member.name) {
            let at = (epoch + 1) * cfg.epoch_interval;
            d.next_action_at = Some(at);
            fx.timers.push(TimerReq::Action(at));
            fx.events.push(EventKind::SpotCheckSkipped { epoch });
            return None;
        }
    }
    d.round += 1;
    // Blocking take keeps the consumed challenge sequence
    // deterministic (the bank's single producer draws in generator
    // order); the wait is bounded by one background replay and only
    // ever happens when rounds outpace the refill workers.
    let (challenges, expected) = d.verifier.prepare_round_blocking();
    // The round must complete within: challenge flight + the
    // calibrated worst-case checksum time + response flight + slack.
    let deadline = now + 2 * cfg.latency_budget + threshold + cfg.deadline_slack;
    d.outstanding = Some(Outstanding {
        round: d.round,
        challenges: challenges.clone(),
        expected,
        deadline,
        started_at: now,
    });
    fx.timers.push(TimerReq::Deadline(deadline));
    let round = d.round;
    fx.events.push(EventKind::RoundStarted { round });
    Some(Envelope {
        src: VERIFIER_NODE,
        dst: d.node.id,
        bytes: wire::encode(&Frame::Challenge { round, challenges }),
    })
}

fn core_set_state(d: &mut ManagedDevice, to: DeviceState, fx: &mut Effects) {
    if d.state == to {
        return;
    }
    let from = d.state;
    d.state = to;
    fx.events.push(EventKind::StateChanged { from, to });
}

/// Appends one attestation-stage record to a device's evidence chain
/// (a no-op for devices whose SAKE establishment failed — they have
/// no chain and no key to authenticate records under). A passing
/// stage advances the freshness anchor and re-arms the decay timer.
fn core_append_evidence(
    cfg: &ServiceConfig,
    now: u64,
    d: &mut ManagedDevice,
    payload: EvidencePayload,
    fx: &mut Effects,
) {
    let Some(chain) = d.evidence.as_mut() else {
        return;
    };
    let passed = payload.verdict() == StageVerdict::Pass;
    chain.append(now, payload);
    if passed {
        d.last_attested = Some(now);
    }
    core_refresh_freshness(cfg, now, d, fx);
    schedule_freshness(cfg, now, d, fx);
}

/// Re-evaluates one device's freshness level under the configured
/// policy and logs the transition if it changed.
fn core_refresh_freshness(cfg: &ServiceConfig, now: u64, d: &mut ManagedDevice, fx: &mut Effects) {
    if d.evidence.is_none() || d.state == DeviceState::Revoked {
        return;
    }
    let to = cfg.freshness.level(d.last_attested, now);
    if to == d.freshness {
        return;
    }
    let from = d.freshness;
    d.freshness = to;
    fx.events.push(EventKind::FreshnessChanged { from, to });
}

/// Requests the device's next freshness-decay timer from its live
/// anchor. The boundary is strictly in the future and monotone in
/// `last_attested`, so a superseded timer simply goes stale.
fn schedule_freshness(cfg: &ServiceConfig, now: u64, d: &mut ManagedDevice, fx: &mut Effects) {
    if !cfg.freshness.is_enabled() || d.evidence.is_none() || d.state == DeviceState::Revoked {
        return;
    }
    match cfg.freshness.next_transition_at(d.last_attested, now) {
        Some(t) => {
            if d.next_fresh_at != Some(t) {
                d.next_fresh_at = Some(t);
                fx.timers.push(TimerReq::Fresh(t));
            }
        }
        None => d.next_fresh_at = None,
    }
}
