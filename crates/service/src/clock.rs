//! Bridges the service's virtual clock to wall time, so the unmodified
//! [`AttestationService`] loop (shards, timer wheel, evidence chains and
//! all) runs behind a real socket transport.
//!
//! The one invariant that makes real-network runs reproducible:
//! **virtual time never advances while an attestation round is
//! outstanding.** A device's response is always processed at the round's
//! *start* tick, so every evidence record — which embeds the virtual
//! timestamp — lands on the same tick it would in a simulated (or
//! unsevered control) run, no matter how long the wire actually took.
//! Wall time only matters as a *watchdog*: each pending virtual timer
//! gets a wall budget of `ticks × ns_per_tick`; if the budget expires
//! with the round still open, the driver advances the clock and the
//! round times out for real (the device genuinely is unreachable or
//! hung). Between rounds the fleet is quiescent and the driver jumps
//! the virtual clock straight to the next timer — idle virtual spans
//! cost zero wall time.

use std::time::{Duration, Instant};

use crate::net::Transport;
use crate::service::AttestationService;
use crate::tcp::TcpTransport;

/// A transport the [`ClockDriver`] can block on: real sockets with a
/// wall-clock activity signal and out-of-band enrollment requests.
pub trait RealTransport: Transport {
    /// Blocks up to `timeout` for inbound work (frames, link events,
    /// enrollments); returns whether anything is pending.
    fn wait_activity(&self, timeout: Duration) -> bool;

    /// Enrollment requests waiting for the service to run the join
    /// protocol.
    fn pending_enrolls(&self) -> usize;
}

impl RealTransport for TcpTransport {
    fn wait_activity(&self, timeout: Duration) -> bool {
        TcpTransport::wait_activity(self, timeout)
    }

    fn pending_enrolls(&self) -> usize {
        TcpTransport::pending_enrolls(self)
    }
}

/// Why [`ClockDriver::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pump {
    /// The virtual clock reached the target with no rounds outstanding.
    Target,
    /// A device is waiting to enroll; the caller runs
    /// [`AttestationService::join_remote`] (joins happen at the frozen
    /// virtual instant, so a whole fleet enrolling lands on one tick
    /// and its rounds batch) and calls `run_until` again.
    Enrolls,
}

/// The virtual→wall bridge. One instance drives one service loop.
pub struct ClockDriver {
    /// Wall nanoseconds one virtual tick is worth — the watchdog
    /// conversion rate. With the default deadline budget (~11k ticks),
    /// `100_000` gives an outstanding round roughly a second of wall
    /// time before it times out for real.
    pub ns_per_tick: u64,
    anchor_wall: Instant,
    anchor_tick: u64,
}

impl ClockDriver {
    /// Creates a driver with the given tick↔wall conversion rate.
    pub fn new(ns_per_tick: u64) -> ClockDriver {
        ClockDriver {
            ns_per_tick: ns_per_tick.max(1),
            anchor_wall: Instant::now(),
            anchor_tick: 0,
        }
    }

    fn re_anchor<T: RealTransport>(&mut self, svc: &AttestationService<T>) {
        self.anchor_wall = Instant::now();
        self.anchor_tick = svc.now();
    }

    /// The wall instant at which virtual `tick`'s watchdog budget
    /// expires, measured from the last advancement.
    fn wall_of(&self, tick: u64) -> Instant {
        let ticks = tick.saturating_sub(self.anchor_tick);
        self.anchor_wall + Duration::from_nanos(ticks.saturating_mul(self.ns_per_tick))
    }

    /// Drives the service until the virtual clock reaches `target` (and
    /// no rounds are outstanding), or a device asks to enroll.
    ///
    /// The loop alternates three moves:
    /// 1. drain everything that has arrived, *at the frozen virtual
    ///    instant* (responses are verdicted on their round's start
    ///    tick);
    /// 2. if the fleet is quiescent, jump the virtual clock to the next
    ///    timer (or to `target`) — no wall pacing;
    /// 3. if rounds are outstanding, block on socket activity with the
    ///    next timer's wall budget as the watchdog; only when the
    ///    budget expires does the clock advance and the deadline fire.
    pub fn run_until<T: RealTransport>(
        &mut self,
        svc: &mut AttestationService<T>,
        target: u64,
    ) -> Pump {
        self.re_anchor(svc);
        loop {
            // Move 1: process at the frozen instant.
            let now = svc.now();
            svc.run_until(now);
            if svc.transport().pending_enrolls() > 0 {
                return Pump::Enrolls;
            }
            if svc.outstanding_rounds() == 0 {
                if svc.now() >= target {
                    return Pump::Target;
                }
                // Move 2: quiescent jump.
                match svc.next_event_at().filter(|&n| n <= target) {
                    Some(next) if next > svc.now() => {
                        svc.run_until(next);
                        self.re_anchor(svc);
                    }
                    Some(_) => {
                        // A timer due "now" that move 1 did not clear —
                        // only reachable through a transport race; yield
                        // briefly rather than spin.
                        svc.transport().wait_activity(Duration::from_millis(1));
                    }
                    None => {
                        svc.run_until(target);
                        return Pump::Target;
                    }
                }
            } else {
                // Move 3: outstanding rounds — wall watchdog. The next
                // virtual timer is at worst the earliest round deadline.
                let next = svc.next_event_at().unwrap_or_else(|| svc.now() + 1);
                let due = self.wall_of(next.max(svc.now()));
                let now_wall = Instant::now();
                if now_wall >= due || !svc.transport().wait_activity(due - now_wall) {
                    // Budget expired with no activity: the timeout is
                    // genuine. Advance and let the deadline fire.
                    svc.run_until(next);
                    self.re_anchor(svc);
                }
                // On activity: loop back to move 1 and drain at the
                // still-frozen instant.
            }
        }
    }
}
