//! Real socket transport: length-prefixed framing over TCP or Unix
//! domain sockets, per-connection supervision, and
//! reconnect-with-session-resume.
//!
//! The service loop stays virtual-clock-driven and byte-identical to its
//! [`crate::net::SimNet`] behaviour; everything wall-clock lives here:
//!
//! - [`FrameStream`] — a `u32`-length-prefixed stream carrying the
//!   existing versioned [`crate::wire`] frames. Parsing is incremental:
//!   torn length prefixes, mid-frame severs and interleaved partial
//!   writes accumulate until a whole frame (or a typed error) emerges —
//!   a partial frame is never surfaced.
//! - [`TcpTransport`] — the verifier-side listener. Every accepted
//!   connection is greeted with a fresh [`Frame::LinkNonce`] and must
//!   open with either [`Frame::Enroll`] (first contact, handed to the
//!   service for a full calibrate+SAKE enrollment) or an authenticated
//!   [`Frame::Hello`] (session resume: a CMAC keyed by the link key
//!   derived from the SAKE session key — proof of key possession without
//!   rerunning SAKE). Each live peer gets a reader and a writer thread
//!   with heartbeat and idle budgets, and a *bounded* outbox with an
//!   explicit shed policy: when the peer is down or the queue is full,
//!   frames are dropped and counted, never buffered without bound.
//! - [`DeviceLink`] — the device-side client: enrolls once, answers
//!   challenges, and on any disconnect reconnects with exponential
//!   backoff plus deterministic per-device jitter and resumes its
//!   session. Responses are cached per round so a re-sent challenge is
//!   answered idempotently (the device never reruns a checksum it
//!   already ran — which also keeps its timing sequence identical to an
//!   unsevered run).
//!
//! Link loss is surfaced as [`LinkEvent`]s, *not* as attestation
//! verdicts: the service marks the device `Degraded` and retries, so a
//! severed cable never looks like a cheating GPU (DESIGN.md §12).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use sage::multi::FleetMember;
use sage_crypto::cmac::{cmac_aes128, cmac_verify};
use sage_crypto::DhGroup;
use sage_telemetry::{Counter, Histogram, Registry};

use crate::net::{Envelope, LinkEvent, NodeId, SplitMix64, Transport};
use crate::policy::seeded_jitter;
use crate::service::VERIFIER_NODE;
use crate::wire::{self, CodecError, Frame, MAX_PAYLOAD};

/// Largest frame the stream layer will accept: one wire header plus the
/// codec's payload bound. Length prefixes above this are rejected before
/// any allocation happens.
pub const MAX_FRAME_BYTES: u32 = 8 + MAX_PAYLOAD;

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Stream errors
// ---------------------------------------------------------------------------

/// Failures at the stream-framing layer. Every path fails closed with a
/// typed error — garbage on the socket becomes a counted disconnect,
/// never a panic or a partially-parsed frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// The underlying socket errored.
    Io(io::ErrorKind),
    /// The bytes framed correctly but the payload failed to decode.
    Codec(CodecError),
    /// A length prefix exceeded [`MAX_FRAME_BYTES`].
    Oversize(u32),
    /// The peer closed the connection (EOF).
    Closed,
}

impl core::fmt::Display for StreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamError::Io(kind) => write!(f, "socket error: {kind:?}"),
            StreamError::Codec(e) => write!(f, "frame decode failed: {e}"),
            StreamError::Oversize(n) => write!(f, "length prefix {n} exceeds maximum"),
            StreamError::Closed => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> StreamError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StreamError::Closed
        } else {
            StreamError::Io(e.kind())
        }
    }
}

impl From<CodecError> for StreamError {
    fn from(e: CodecError) -> StreamError {
        StreamError::Codec(e)
    }
}

// ---------------------------------------------------------------------------
// Conn: one socket, TCP or UDS
// ---------------------------------------------------------------------------

/// One bidirectional byte stream — TCP or Unix domain socket — behind a
/// single type so the framing and supervision layers are
/// address-family-agnostic.
#[derive(Debug)]
pub enum Conn {
    /// A TCP connection (`TCP_NODELAY` is set on connect/accept).
    Tcp(TcpStream),
    /// A Unix-domain-socket connection.
    Unix(UnixStream),
}

impl Conn {
    /// Clones the handle (shared underlying socket), so one side can
    /// read while another writes.
    pub fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    /// Sets the read timeout (None = blocking).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }

    /// Sets the write timeout (None = blocking).
    pub fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(d),
            Conn::Unix(s) => s.set_write_timeout(d),
        }
    }

    /// Severs both directions. Errors (already closed) are ignored.
    pub fn shutdown(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A listening or dialing address: TCP socket address or UDS path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bind {
    /// A TCP address (use port 0 to bind an ephemeral port; the bound
    /// address is reported by [`TcpTransport::local_bind`]).
    Tcp(SocketAddr),
    /// A Unix-domain-socket path (unlinked before bind).
    Uds(PathBuf),
}

impl core::fmt::Display for Bind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Bind::Tcp(a) => write!(f, "tcp://{a}"),
            Bind::Uds(p) => write!(f, "uds://{}", p.display()),
        }
    }
}

/// Dials a [`Bind`]. TCP connections get `TCP_NODELAY` (the control
/// plane sends many small frames; Nagle would serialize round trips).
pub fn connect(bind: &Bind) -> io::Result<Conn> {
    match bind {
        Bind::Tcp(addr) => {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            Ok(Conn::Tcp(s))
        }
        Bind::Uds(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
    }
}

enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Listener {
    fn bind(b: &Bind) -> io::Result<Listener> {
        match b {
            Bind::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            Bind::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Uds(UnixListener::bind(path)?))
            }
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Listener::Uds(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }

    fn local_bind(&self, requested: &Bind) -> Bind {
        match (self, requested) {
            (Listener::Tcp(l), _) => match l.local_addr() {
                Ok(a) => Bind::Tcp(a),
                Err(_) => requested.clone(),
            },
            (Listener::Uds(_), b) => b.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// FrameStream: length-prefixed framing with incremental parsing
// ---------------------------------------------------------------------------

/// A framed view over one [`Conn`]: each frame is a `u32` little-endian
/// length prefix followed by that many bytes of [`crate::wire`] encoding.
///
/// Reading is incremental — bytes accumulate across reads, so a frame
/// torn at any byte boundary (including mid-prefix) is reassembled, and
/// a read timeout simply returns `Ok(None)` with the partial bytes
/// retained for the next call.
pub struct FrameStream {
    conn: Conn,
    buf: Vec<u8>,
    pos: usize,
}

impl FrameStream {
    /// Wraps a connection.
    pub fn new(conn: Conn) -> FrameStream {
        FrameStream {
            conn,
            buf: Vec::with_capacity(4096),
            pos: 0,
        }
    }

    /// The underlying connection.
    pub fn conn(&self) -> &Conn {
        &self.conn
    }

    /// A second handle on the connection (for a writer thread).
    pub fn try_clone_conn(&self) -> io::Result<Conn> {
        self.conn.try_clone()
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Attempts to parse one frame from the buffered bytes without
    /// touching the socket.
    fn parse_buffered(&mut self) -> Result<Option<Frame>, StreamError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let p = self.pos;
        let len = u32::from_le_bytes([
            self.buf[p],
            self.buf[p + 1],
            self.buf[p + 2],
            self.buf[p + 3],
        ]);
        if len > MAX_FRAME_BYTES {
            return Err(StreamError::Oversize(len));
        }
        let need = 4 + len as usize;
        if avail < need {
            return Ok(None);
        }
        let frame = wire::decode(&self.buf[p + 4..p + need])?;
        self.pos += need;
        self.compact();
        Ok(Some(frame))
    }

    /// Reads until one whole frame is available or the socket's read
    /// timeout elapses. `Ok(None)` means "no complete frame yet" (any
    /// partial bytes are retained); `Err` means the stream is unusable
    /// and must be torn down.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, StreamError> {
        loop {
            if let Some(frame) = self.parse_buffered()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 4096];
            match self.conn.read(&mut chunk) {
                Ok(0) => return Err(StreamError::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Reads with a hard deadline, polling the socket until a frame
    /// arrives or `deadline` passes (`Ok(None)`).
    pub fn read_frame_deadline(&mut self, deadline: Instant) -> Result<Option<Frame>, StreamError> {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let _ = self
                .conn
                .set_read_timeout(Some((deadline - now).min(Duration::from_millis(200))));
            match self.read_frame() {
                Ok(None) => continue,
                other => return other,
            }
        }
    }

    /// Writes one frame (length prefix + encoding) and flushes.
    pub fn write_frame(&mut self, frame: &Frame) -> Result<(), StreamError> {
        write_frame_to(&mut self.conn, frame)
    }
}

/// Writes one length-prefixed frame to a raw connection.
pub fn write_frame_to(conn: &mut Conn, frame: &Frame) -> Result<(), StreamError> {
    write_bytes_to(conn, &wire::encode(frame))
}

fn write_bytes_to(conn: &mut Conn, bytes: &[u8]) -> Result<(), StreamError> {
    let mut msg = Vec::with_capacity(4 + bytes.len());
    msg.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    msg.extend_from_slice(bytes);
    conn.write_all(&msg)?;
    conn.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Resume handshake MACs
// ---------------------------------------------------------------------------

/// Derives the per-session link key from the SAKE session key. Both
/// sides compute it independently after key establishment; it
/// authenticates resume handshakes without exposing the session key.
pub fn link_key(session_key: &[u8; 16]) -> [u8; 16] {
    sage::sake::mac_key(b"sage-link", session_key)
}

fn hello_transcript(label: &[u8], device: &str, nonce: &[u8; 16], resume_from: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(label.len() + 2 + device.len() + 24);
    t.extend_from_slice(label);
    t.extend_from_slice(&(device.len() as u16).to_le_bytes());
    t.extend_from_slice(device.as_bytes());
    t.extend_from_slice(nonce);
    t.extend_from_slice(&resume_from.to_le_bytes());
    t
}

/// MAC over a [`Frame::Hello`] transcript (device → verifier). Binding
/// the server's fresh nonce defeats replay of a recorded handshake.
pub fn hello_mac(key: &[u8; 16], device: &str, nonce: &[u8; 16], resume_from: u64) -> [u8; 16] {
    cmac_aes128(
        key,
        &hello_transcript(b"sage-hello", device, nonce, resume_from),
    )
}

/// MAC over a [`Frame::HelloAck`] transcript (verifier → device) — the
/// mutual-authentication leg, under a distinct label so an ack can never
/// be replayed as a hello.
pub fn hello_ack_mac(key: &[u8; 16], device: &str, nonce: &[u8; 16], resume_from: u64) -> [u8; 16] {
    cmac_aes128(
        key,
        &hello_transcript(b"sage-hello-ack", device, nonce, resume_from),
    )
}

// ---------------------------------------------------------------------------
// Verifier-side transport
// ---------------------------------------------------------------------------

/// Tunables for connection supervision. Defaults suit tests; production
/// deployments stretch the budgets.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Seed for server link nonces (deterministic for reproducibility;
    /// a production deployment would mix in a hardware entropy source).
    pub seed: u64,
    /// Bounded per-peer outbox depth; beyond it the oldest frame is
    /// shed (the service re-sends outstanding challenges on resume, so
    /// shedding is safe — and memory stays bounded under any outage).
    pub outbox_cap: usize,
    /// Writer-side idle interval after which a heartbeat is sent.
    pub heartbeat_interval: Duration,
    /// Reader-side silence budget; each elapsed budget counts a
    /// heartbeat miss.
    pub idle_budget: Duration,
    /// Consecutive heartbeat misses before the connection is severed.
    pub max_heartbeat_misses: u32,
    /// Budget for the enroll/hello handshake on a fresh connection.
    pub handshake_timeout: Duration,
    /// Read-timeout granularity of supervision loops (how quickly they
    /// notice shutdown).
    pub read_poll: Duration,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            seed: 0x5A6E_11E7,
            outbox_cap: 64,
            heartbeat_interval: Duration::from_millis(200),
            idle_budget: Duration::from_millis(600),
            max_heartbeat_misses: 3,
            handshake_timeout: Duration::from_secs(5),
            read_poll: Duration::from_millis(50),
        }
    }
}

/// Counters for the transport's failure surface (snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections accepted (including rejected handshakes).
    pub accepted: u64,
    /// Enrollment requests queued for the service.
    pub enrolls: u64,
    /// Successful session resumes (reconnects).
    pub reconnects: u64,
    /// Frames dropped by the outbox shed policy (peer down or queue
    /// full).
    pub frames_shed: u64,
    /// Reader-side idle budgets elapsed without traffic.
    pub heartbeat_misses: u64,
    /// Connections torn down (read error, EOF, codec error, or
    /// heartbeat budget exhausted).
    pub disconnects: u64,
    /// Disconnects caused specifically by undecodable bytes.
    pub codec_disconnects: u64,
    /// Hello handshakes rejected (unknown peer, bad MAC, stale nonce).
    pub handshake_rejects: u64,
    /// Frames surfaced to the service loop.
    pub frames_rx: u64,
    /// Frames accepted into an outbox.
    pub frames_tx: u64,
}

#[derive(Default)]
struct AtomicStats {
    accepted: AtomicU64,
    enrolls: AtomicU64,
    reconnects: AtomicU64,
    frames_shed: AtomicU64,
    heartbeat_misses: AtomicU64,
    disconnects: AtomicU64,
    codec_disconnects: AtomicU64,
    handshake_rejects: AtomicU64,
    frames_rx: AtomicU64,
    frames_tx: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            enrolls: self.enrolls.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            frames_shed: self.frames_shed.load(Ordering::Relaxed),
            heartbeat_misses: self.heartbeat_misses.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            codec_disconnects: self.codec_disconnects.load(Ordering::Relaxed),
            handshake_rejects: self.handshake_rejects.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            frames_tx: self.frames_tx.load(Ordering::Relaxed),
        }
    }
}

#[derive(Clone)]
struct Telemetry {
    registry: Registry,
    reconnects: Counter,
    frames_shed: Counter,
    heartbeat_misses: Counter,
}

#[derive(Default)]
struct Inbound {
    queue: VecDeque<Envelope>,
    link_events: Vec<LinkEvent>,
    enrolls: VecDeque<(String, FrameStream)>,
}

impl Inbound {
    fn pending(&self) -> bool {
        !self.queue.is_empty() || !self.link_events.is_empty() || !self.enrolls.is_empty()
    }
}

struct OutboxState {
    queue: VecDeque<Vec<u8>>,
    /// Connection generation; bumping it retires any supervision
    /// thread still running against the previous socket.
    epoch: u64,
    up: bool,
    /// Wall instants of recently sent challenges, keyed by round, for
    /// round-trip latency sampling (bounded).
    challenge_sent: VecDeque<(u64, Instant)>,
    next_hb_seq: u64,
}

struct PeerShared {
    name: String,
    node: NodeId,
    link_key: [u8; 16],
    outbox: Mutex<OutboxState>,
    cond: Condvar,
    depth_hist: Mutex<Option<Histogram>>,
}

impl PeerShared {
    /// Marks the link down if `epoch` is still current; returns whether
    /// this call performed the transition (so Down is reported once per
    /// connection, whichever supervision thread loses it first).
    fn mark_down(&self, epoch: u64) -> bool {
        let mut ob = lock_unpoisoned(&self.outbox);
        if ob.epoch == epoch && ob.up {
            ob.up = false;
            self.cond.notify_all();
            true
        } else {
            false
        }
    }
}

struct Shared {
    cfg: LinkConfig,
    inbound: Mutex<Inbound>,
    activity: Condvar,
    stats: AtomicStats,
    peers: Mutex<HashMap<String, Arc<PeerShared>>>,
    rtt_ns: Mutex<Vec<u64>>,
    telemetry: Mutex<Option<Telemetry>>,
    shutdown: AtomicBool,
}

impl Shared {
    fn push_inbound(&self, env: Envelope) {
        self.stats.frames_rx.fetch_add(1, Ordering::Relaxed);
        lock_unpoisoned(&self.inbound).queue.push_back(env);
        self.activity.notify_all();
    }

    fn push_link_event(&self, ev: LinkEvent) {
        lock_unpoisoned(&self.inbound).link_events.push(ev);
        self.activity.notify_all();
    }

    fn note_heartbeat_miss(&self) {
        self.stats.heartbeat_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = lock_unpoisoned(&self.telemetry).as_ref() {
            t.heartbeat_misses.inc();
        }
    }

    fn note_shed(&self) {
        self.stats.frames_shed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = lock_unpoisoned(&self.telemetry).as_ref() {
            t.frames_shed.inc();
        }
    }

    fn note_rtt(&self, d: Duration) {
        let mut samples = lock_unpoisoned(&self.rtt_ns);
        if samples.len() < 1 << 20 {
            samples.push(d.as_nanos() as u64);
        }
    }
}

/// The verifier-side socket transport. Implements [`Transport`] so the
/// unmodified [`crate::service::AttestationService`] loop runs behind
/// it; a [`crate::clock::ClockDriver`] bridges the virtual clock to
/// wall time.
pub struct TcpTransport {
    shared: Arc<Shared>,
    node_index: HashMap<NodeId, Arc<PeerShared>>,
    local_bind: Bind,
}

impl TcpTransport {
    /// Binds a listener and starts the acceptor thread.
    pub fn bind(bind: Bind, cfg: LinkConfig) -> io::Result<TcpTransport> {
        let listener = Listener::bind(&bind)?;
        let local_bind = listener.local_bind(&bind);
        let shared = Arc::new(Shared {
            cfg,
            inbound: Mutex::new(Inbound::default()),
            activity: Condvar::new(),
            stats: AtomicStats::default(),
            peers: Mutex::new(HashMap::new()),
            rtt_ns: Mutex::new(Vec::new()),
            telemetry: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("sage-accept".into())
            .spawn(move || acceptor_loop(listener, accept_shared))
            .expect("spawn acceptor");
        Ok(TcpTransport {
            shared,
            node_index: HashMap::new(),
            local_bind,
        })
    }

    /// The address actually bound (resolves an ephemeral TCP port).
    pub fn local_bind(&self) -> Bind {
        self.local_bind.clone()
    }

    /// Registers transport metrics on `registry`:
    /// `transport_reconnects_total`, `transport_frames_shed_total`,
    /// `transport_heartbeat_misses_total`, plus a per-peer
    /// `transport_outbox_depth` histogram as peers are adopted.
    pub fn attach_telemetry(&self, registry: &Registry) {
        let tele = Telemetry {
            registry: registry.clone(),
            reconnects: registry.counter("transport_reconnects_total", &[]),
            frames_shed: registry.counter("transport_frames_shed_total", &[]),
            heartbeat_misses: registry.counter("transport_heartbeat_misses_total", &[]),
        };
        for peer in self.node_index.values() {
            let hist = tele
                .registry
                .histogram("transport_outbox_depth", &[("device", &peer.name)]);
            *lock_unpoisoned(&peer.depth_hist) = Some(hist);
        }
        *lock_unpoisoned(&self.shared.telemetry) = Some(tele);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TransportStats {
        self.shared.stats.snapshot()
    }

    /// Challenge→response round-trip samples (wall nanoseconds),
    /// drained.
    pub fn take_rtt_samples(&self) -> Vec<u64> {
        std::mem::take(&mut lock_unpoisoned(&self.shared.rtt_ns))
    }

    /// How many enrollment requests are waiting for the service.
    pub fn pending_enrolls(&self) -> usize {
        lock_unpoisoned(&self.shared.inbound).enrolls.len()
    }

    /// Takes one queued enrollment (device name + its live stream). The
    /// caller runs the enrollment protocol over the stream and, on
    /// success, hands the stream back via [`TcpTransport::adopt_peer`].
    pub fn take_pending_enroll(&mut self) -> Option<(String, FrameStream)> {
        lock_unpoisoned(&self.shared.inbound).enrolls.pop_front()
    }

    /// Blocks up to `timeout` for new inbound work (frames, link events
    /// or enrollments). Returns whether anything is pending.
    pub fn wait_activity(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inbound = lock_unpoisoned(&self.shared.inbound);
        loop {
            if inbound.pending() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .activity
                .wait_timeout(inbound, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inbound = guard;
        }
    }

    /// Adopts an enrolled device as a live peer: derives supervision
    /// state, spawns its reader/writer threads and indexes it under
    /// `node`. Future reconnects resume via [`Frame::Hello`] against
    /// `link_key`.
    pub fn adopt_peer(
        &mut self,
        name: String,
        node: NodeId,
        link_key: [u8; 16],
        stream: FrameStream,
    ) {
        let peer = Arc::new(PeerShared {
            name: name.clone(),
            node,
            link_key,
            outbox: Mutex::new(OutboxState {
                queue: VecDeque::new(),
                epoch: 0,
                up: false,
                challenge_sent: VecDeque::new(),
                next_hb_seq: 1,
            }),
            cond: Condvar::new(),
            depth_hist: Mutex::new(None),
        });
        if let Some(t) = lock_unpoisoned(&self.shared.telemetry).as_ref() {
            let hist = t
                .registry
                .histogram("transport_outbox_depth", &[("device", &name)]);
            *lock_unpoisoned(&peer.depth_hist) = Some(hist);
        }
        lock_unpoisoned(&self.shared.peers).insert(name, Arc::clone(&peer));
        self.node_index.insert(node, Arc::clone(&peer));
        attach_connection(&self.shared, &peer, stream);
    }

    /// Severs every live peer connection (used by shutdown and tests).
    pub fn sever_all(&self) {
        for peer in lock_unpoisoned(&self.shared.peers).values() {
            let epoch = lock_unpoisoned(&peer.outbox).epoch;
            peer.mark_down(epoch);
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.sever_all();
    }
}

/// Spawns reader + writer supervision for a (re)connected peer under a
/// fresh epoch. The previous epoch's threads notice and retire.
fn attach_connection(shared: &Arc<Shared>, peer: &Arc<PeerShared>, stream: FrameStream) {
    let writer_conn = match stream.try_clone_conn() {
        Ok(c) => c,
        Err(_) => {
            // Can't split the socket: treat as an immediate link loss.
            shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
            shared.push_link_event(LinkEvent::Down(peer.node));
            return;
        }
    };
    let epoch = {
        let mut ob = lock_unpoisoned(&peer.outbox);
        ob.epoch += 1;
        ob.up = true;
        ob.challenge_sent.clear();
        peer.cond.notify_all();
        ob.epoch
    };
    {
        let shared = Arc::clone(shared);
        let peer = Arc::clone(peer);
        thread::Builder::new()
            .name(format!("sage-rd-{}", peer.name))
            .spawn(move || reader_loop(shared, peer, stream, epoch))
            .expect("spawn reader");
    }
    {
        let shared = Arc::clone(shared);
        let peer = Arc::clone(peer);
        thread::Builder::new()
            .name(format!("sage-wr-{}", peer.name))
            .spawn(move || writer_loop(shared, peer, writer_conn, epoch))
            .expect("spawn writer");
    }
}

fn report_down(shared: &Shared, peer: &PeerShared, epoch: u64, codec: bool) {
    if peer.mark_down(epoch) {
        shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
        if codec {
            shared
                .stats
                .codec_disconnects
                .fetch_add(1, Ordering::Relaxed);
        }
        shared.push_link_event(LinkEvent::Down(peer.node));
    }
}

fn epoch_current(peer: &PeerShared, epoch: u64) -> bool {
    let ob = lock_unpoisoned(&peer.outbox);
    ob.epoch == epoch && ob.up
}

fn reader_loop(shared: Arc<Shared>, peer: Arc<PeerShared>, mut stream: FrameStream, epoch: u64) {
    let _ = stream.conn().set_read_timeout(Some(shared.cfg.read_poll));
    let mut last_rx = Instant::now();
    let mut misses = 0u32;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) || !epoch_current(&peer, epoch) {
            stream.conn().shutdown();
            return;
        }
        match stream.read_frame() {
            Ok(Some(frame)) => {
                last_rx = Instant::now();
                misses = 0;
                match frame {
                    Frame::Heartbeat { seq, echo: false } => {
                        // Liveness probe from the peer: answer in-line,
                        // never surfaced to the service loop.
                        enqueue_raw(
                            &shared,
                            &peer,
                            wire::encode(&Frame::Heartbeat { seq, echo: true }),
                        );
                    }
                    Frame::Heartbeat { echo: true, .. } => {}
                    Frame::Response { round, .. } => {
                        let sent_at = {
                            let mut ob = lock_unpoisoned(&peer.outbox);
                            let hit = ob.challenge_sent.iter().position(|&(r, _)| r == round);
                            hit.and_then(|i| ob.challenge_sent.remove(i))
                                .map(|(_, t)| t)
                        };
                        if let Some(t) = sent_at {
                            shared.note_rtt(t.elapsed());
                        }
                        shared.push_inbound(Envelope {
                            src: peer.node,
                            dst: VERIFIER_NODE,
                            bytes: wire::encode(&frame),
                        });
                    }
                    other => shared.push_inbound(Envelope {
                        src: peer.node,
                        dst: VERIFIER_NODE,
                        bytes: wire::encode(&other),
                    }),
                }
            }
            Ok(None) => {
                if last_rx.elapsed() >= shared.cfg.idle_budget {
                    last_rx = Instant::now();
                    misses += 1;
                    shared.note_heartbeat_miss();
                    if misses >= shared.cfg.max_heartbeat_misses {
                        stream.conn().shutdown();
                        report_down(&shared, &peer, epoch, false);
                        return;
                    }
                }
            }
            Err(e) => {
                stream.conn().shutdown();
                report_down(
                    &shared,
                    &peer,
                    epoch,
                    matches!(e, StreamError::Codec(_) | StreamError::Oversize(_)),
                );
                return;
            }
        }
    }
}

fn writer_loop(shared: Arc<Shared>, peer: Arc<PeerShared>, mut conn: Conn, epoch: u64) {
    let _ = conn.set_write_timeout(Some(Duration::from_secs(5)));
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            conn.shutdown();
            return;
        }
        // Wait for a frame, our retirement, or a heartbeat-worth of idle.
        let next: Option<Vec<u8>> = {
            let mut ob = lock_unpoisoned(&peer.outbox);
            loop {
                if ob.epoch != epoch {
                    return; // superseded by a resumed connection
                }
                if !ob.up {
                    conn.shutdown();
                    return;
                }
                if let Some(bytes) = ob.queue.pop_front() {
                    break Some(bytes);
                }
                let (guard, timeout) = peer
                    .cond
                    .wait_timeout(ob, shared.cfg.heartbeat_interval)
                    .unwrap_or_else(|e| e.into_inner());
                ob = guard;
                if timeout.timed_out() {
                    if ob.epoch != epoch || !ob.up {
                        continue; // re-check exit conditions above
                    }
                    let seq = ob.next_hb_seq;
                    ob.next_hb_seq += 1;
                    break Some(wire::encode(&Frame::Heartbeat { seq, echo: false }));
                }
            }
        };
        if let Some(bytes) = next {
            if write_bytes_to(&mut conn, &bytes).is_err() {
                conn.shutdown();
                report_down(&shared, &peer, epoch, false);
                return;
            }
        }
    }
}

/// Enqueues transport-internal bytes (heartbeat replies) directly on a
/// peer's outbox, bypassing the service-facing shed accounting only when
/// the peer is down.
fn enqueue_raw(shared: &Shared, peer: &PeerShared, bytes: Vec<u8>) {
    let mut ob = lock_unpoisoned(&peer.outbox);
    if !ob.up {
        return;
    }
    if ob.queue.len() >= shared.cfg.outbox_cap {
        ob.queue.pop_front();
        shared.note_shed();
    }
    ob.queue.push_back(bytes);
    peer.cond.notify_all();
}

fn acceptor_loop(listener: Listener, shared: Arc<Shared>) {
    let nonce_rng = Mutex::new(SplitMix64::new(shared.cfg.seed ^ 0x11_4E_57_0C));
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        let nonce = {
            let mut rng = lock_unpoisoned(&nonce_rng);
            let mut n = [0u8; 16];
            n[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
            n[8..].copy_from_slice(&rng.next_u64().to_le_bytes());
            n
        };
        let hs_shared = Arc::clone(&shared);
        let _ = thread::Builder::new()
            .name("sage-handshake".into())
            .spawn(move || handshake(hs_shared, conn, nonce));
    }
}

/// Runs the opening exchange on a fresh connection: send the server
/// nonce, then classify the first frame as enrollment or resume.
fn handshake(shared: Arc<Shared>, conn: Conn, nonce: [u8; 16]) {
    let mut stream = FrameStream::new(conn);
    if stream.write_frame(&Frame::LinkNonce { nonce }).is_err() {
        return;
    }
    let deadline = Instant::now() + shared.cfg.handshake_timeout;
    let first = match stream.read_frame_deadline(deadline) {
        Ok(Some(f)) => f,
        _ => {
            shared
                .stats
                .handshake_rejects
                .fetch_add(1, Ordering::Relaxed);
            stream.conn().shutdown();
            return;
        }
    };
    match first {
        Frame::Enroll { device } if !device.is_empty() => {
            shared.stats.enrolls.fetch_add(1, Ordering::Relaxed);
            let mut inbound = lock_unpoisoned(&shared.inbound);
            inbound.enrolls.push_back((device, stream));
            shared.activity.notify_all();
        }
        Frame::Hello {
            device,
            nonce: echoed,
            resume_from,
            mac,
        } => {
            let peer = lock_unpoisoned(&shared.peers).get(&device).cloned();
            let Some(peer) = peer else {
                shared
                    .stats
                    .handshake_rejects
                    .fetch_add(1, Ordering::Relaxed);
                stream.conn().shutdown();
                return;
            };
            let transcript = hello_transcript(b"sage-hello", &device, &nonce, resume_from);
            if echoed != nonce || !cmac_verify(&peer.link_key, &transcript, &mac) {
                shared
                    .stats
                    .handshake_rejects
                    .fetch_add(1, Ordering::Relaxed);
                stream.conn().shutdown();
                return;
            }
            let ack = Frame::HelloAck {
                nonce,
                mac: hello_ack_mac(&peer.link_key, &device, &nonce, resume_from),
            };
            if stream.write_frame(&ack).is_err() {
                stream.conn().shutdown();
                return;
            }
            shared.stats.reconnects.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = lock_unpoisoned(&shared.telemetry).as_ref() {
                t.reconnects.inc();
            }
            attach_connection(&shared, &peer, stream);
            shared.push_link_event(LinkEvent::Resumed(peer.node));
        }
        _ => {
            shared
                .stats
                .handshake_rejects
                .fetch_add(1, Ordering::Relaxed);
            stream.conn().shutdown();
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, _now: u64, env: Envelope) {
        let Some(peer) = self.node_index.get(&env.dst) else {
            self.shared.note_shed();
            return;
        };
        let mut ob = lock_unpoisoned(&peer.outbox);
        if !ob.up {
            self.shared.note_shed();
            return;
        }
        if ob.queue.len() >= self.shared.cfg.outbox_cap {
            // Shed oldest: the newest frame is the one the protocol
            // still cares about (a fresher challenge supersedes a stale
            // one).
            ob.queue.pop_front();
            self.shared.note_shed();
        }
        // Sample challenge send times for round-trip latency: kind byte
        // at offset 3, round at payload offset 8.
        if env.bytes.len() >= 16 && env.bytes[3] == 0x20 {
            let round = u64::from_le_bytes(env.bytes[8..16].try_into().unwrap());
            if ob.challenge_sent.len() >= 16 {
                ob.challenge_sent.pop_front();
            }
            ob.challenge_sent.push_back((round, Instant::now()));
        }
        ob.queue.push_back(env.bytes);
        let depth = ob.queue.len();
        peer.cond.notify_all();
        drop(ob);
        self.shared.stats.frames_tx.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = lock_unpoisoned(&peer.depth_hist).as_ref() {
            h.record(depth as u64);
        }
    }

    fn poll(&mut self, _now: u64, node: NodeId) -> Option<Envelope> {
        let mut inbound = lock_unpoisoned(&self.shared.inbound);
        let i = inbound.queue.iter().position(|e| e.dst == node)?;
        inbound.queue.remove(i)
    }

    fn next_event_at(&self) -> Option<u64> {
        let inbound = lock_unpoisoned(&self.shared.inbound);
        if !inbound.queue.is_empty() || !inbound.link_events.is_empty() {
            Some(0) // pending work is immediate (clamped to `now` upstream)
        } else {
            None
        }
    }

    fn drain_due(&mut self, _now: u64) -> Vec<Envelope> {
        lock_unpoisoned(&self.shared.inbound)
            .queue
            .drain(..)
            .collect()
    }

    fn take_link_events(&mut self) -> Vec<LinkEvent> {
        std::mem::take(&mut lock_unpoisoned(&self.shared.inbound).link_events)
    }
}

// ---------------------------------------------------------------------------
// Device-side client
// ---------------------------------------------------------------------------

/// Configuration for a [`DeviceLink`] client.
#[derive(Clone, Debug)]
pub struct DeviceLinkConfig {
    /// Verifier (or chaos proxy) address to dial.
    pub connect: Bind,
    /// Base reconnect backoff (doubles per consecutive failure).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Max deterministic jitter (milliseconds) added per attempt, keyed
    /// by device name — two peers recovering from the same outage land
    /// on different schedules instead of a synchronized retry storm.
    pub backoff_jitter_ms: u64,
    /// Read-poll granularity of the steady-state loop.
    pub read_poll: Duration,
    /// Give up after this many consecutive failed connection attempts
    /// (`None` = retry forever).
    pub max_attempts: Option<u32>,
    /// Adversarial knob for tests: after answering this many
    /// post-enrollment rounds honestly, corrupt every later checksum —
    /// the device turns cheater mid-life and must be quarantined, never
    /// re-accepted.
    pub compromise_after: Option<u64>,
}

impl Default for DeviceLinkConfig {
    fn default() -> DeviceLinkConfig {
        DeviceLinkConfig {
            connect: Bind::Uds(PathBuf::from("/tmp/sage.sock")),
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            backoff_jitter_ms: 40,
            read_poll: Duration::from_millis(50),
            max_attempts: Some(400),
            compromise_after: None,
        }
    }
}

/// What a [`DeviceLink`] did over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceLinkReport {
    /// Whether enrollment (calibration + SAKE) completed.
    pub enrolled: bool,
    /// Successful `Hello`/`HelloAck` session resumes.
    pub resumes: u64,
    /// Distinct post-enrollment rounds answered (cached re-sends not
    /// counted).
    pub rounds_answered: u64,
    /// Challenges answered from the idempotence cache (re-sent rounds).
    pub cached_replays: u64,
    /// Times the connection was lost after being established.
    pub disconnects: u64,
    /// Full enrollments performed (must stay 1 under chaos — resume,
    /// never re-enroll).
    pub enrollments: u64,
}

/// The device-side endpoint over a real socket: enrolls, answers
/// attestation rounds, heartbeats, and survives link loss by resuming
/// its SAKE session. Runs on its own thread; [`DeviceLink::stop`] joins
/// it and returns the [`DeviceLinkReport`].
pub struct DeviceLink {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<DeviceLinkReport>>,
    name: String,
}

impl DeviceLink {
    /// Spawns the client thread for `member` (its session *is* the
    /// device — checksums run in-thread).
    pub fn spawn(member: FleetMember, group: DhGroup, cfg: DeviceLinkConfig) -> DeviceLink {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let name = member.name.clone();
        let thread_name = format!("sage-dev-{name}");
        let handle = thread::Builder::new()
            .name(thread_name)
            .spawn(move || device_loop(member, group, cfg, flag))
            .expect("spawn device link");
        DeviceLink {
            stop,
            handle: Some(handle),
            name,
        }
    }

    /// The device's fleet name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Signals the client to stop and joins it.
    pub fn stop(mut self) -> DeviceLinkReport {
        self.stop.store(true, Ordering::SeqCst);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => DeviceLinkReport::default(),
        }
    }
}

impl Drop for DeviceLink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Deterministic per-device reconnect delay: exponential in the attempt
/// count, capped, plus seeded jitter keyed by (name, attempt).
pub fn reconnect_backoff(cfg: &DeviceLinkConfig, name: &str, attempt: u32) -> Duration {
    let exp = cfg
        .backoff_base
        .saturating_mul(1u32 << attempt.min(10))
        .min(cfg.backoff_cap);
    exp + Duration::from_millis(seeded_jitter(cfg.backoff_jitter_ms, name, attempt as u64))
}

enum LinkOutcome {
    /// The connection dropped; reconnect after backoff.
    Reconnect,
    /// Stop was requested or attempts exhausted.
    Finished,
}

fn device_loop(
    mut member: FleetMember,
    group: DhGroup,
    cfg: DeviceLinkConfig,
    stop: Arc<AtomicBool>,
) -> DeviceLinkReport {
    let mut report = DeviceLinkReport::default();
    let mut link_key: Option<[u8; 16]> = None;
    // Idempotence cache: last answered round → encoded Response. A
    // challenge re-sent after a resume is answered from here, so the
    // checksum (and the device's deterministic timing sequence) runs
    // exactly once per round regardless of how often the link flaps.
    let mut cached: Option<(u64, Frame)> = None;
    let mut rounds_seen: u64 = 0;
    let mut attempt: u32 = 0;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(max) = cfg.max_attempts {
            if attempt >= max {
                break;
            }
        }
        if attempt > 0 || report.disconnects > 0 {
            sleep_interruptible(reconnect_backoff(&cfg, &member.name, attempt), &stop);
            if stop.load(Ordering::Relaxed) {
                break;
            }
        }
        let conn = match connect(&cfg.connect) {
            Ok(c) => c,
            Err(_) => {
                attempt += 1;
                continue;
            }
        };
        let mut stream = FrameStream::new(conn);
        let deadline = Instant::now() + Duration::from_secs(10);
        let nonce = match stream.read_frame_deadline(deadline) {
            Ok(Some(Frame::LinkNonce { nonce })) => nonce,
            _ => {
                attempt += 1;
                continue;
            }
        };
        let established = match link_key {
            None => device_enroll(&mut member, &group, &mut stream, &mut report, &mut link_key),
            Some(key) => device_resume(
                &member.name,
                key,
                nonce,
                rounds_seen,
                &mut stream,
                &mut report,
            ),
        };
        if !established {
            attempt += 1;
            continue;
        }
        match device_steady(
            &mut member,
            &cfg,
            &mut stream,
            &stop,
            &mut cached,
            &mut rounds_seen,
            &mut report,
        ) {
            LinkOutcome::Reconnect => {
                report.disconnects += 1;
                attempt = 1; // first retry waits one base backoff
            }
            LinkOutcome::Finished => break,
        }
    }
    report
}

fn sleep_interruptible(d: Duration, stop: &AtomicBool) {
    let deadline = Instant::now() + d;
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        thread::sleep(Duration::from_millis(5).min(deadline - Instant::now()));
    }
}

/// Runs first-contact enrollment: `Enroll`, then answer calibration
/// challenges and the SAKE flow until a session key exists.
fn device_enroll(
    member: &mut FleetMember,
    group: &DhGroup,
    stream: &mut FrameStream,
    report: &mut DeviceLinkReport,
    link_key_out: &mut Option<[u8; 16]>,
) -> bool {
    if stream
        .write_frame(&Frame::Enroll {
            device: member.name.clone(),
        })
        .is_err()
    {
        return false;
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let frame = match stream.read_frame_deadline(deadline) {
            Ok(Some(f)) => f,
            _ => return false,
        };
        let reply = match frame {
            Frame::Challenge { round, challenges } => {
                match member.session.run_checksum(&challenges) {
                    Ok((checksum, measured)) => Frame::Response {
                        round,
                        checksum,
                        measured_cycles: measured,
                    },
                    Err(_) => return false,
                }
            }
            Frame::Sake(sage::sake::SakeMessage::Challenge { v2 }) => {
                match member
                    .agent
                    .handle_challenge(&mut member.session, group.clone(), v2)
                {
                    Ok((sage::sake::SakeMessage::Commit { w2, mac }, measured)) => {
                        Frame::SakeCommitTimed {
                            w2,
                            mac,
                            measured_cycles: measured,
                        }
                    }
                    _ => return false,
                }
            }
            Frame::Sake(sage::sake::SakeMessage::RevealV1 { v1 }) => {
                match member.agent.handle_reveal_v1(v1) {
                    Ok(msg) => Frame::Sake(msg),
                    Err(_) => return false,
                }
            }
            Frame::Sake(sage::sake::SakeMessage::RevealV0 { v0 }) => {
                match member.agent.handle_reveal_v0(v0) {
                    Ok(msg) => Frame::Sake(msg),
                    Err(_) => return false,
                }
            }
            Frame::Heartbeat { seq, echo: false } => Frame::Heartbeat { seq, echo: true },
            _ => continue,
        };
        let was_reveal0 = matches!(
            reply,
            Frame::Sake(sage::sake::SakeMessage::DeviceReveal0 { .. })
        );
        if stream.write_frame(&reply).is_err() {
            return false;
        }
        if was_reveal0 {
            // SAKE complete on our side: the session key exists.
            let Some(sk) = member.agent.session_key() else {
                return false;
            };
            *link_key_out = Some(link_key(&sk));
            report.enrolled = true;
            report.enrollments += 1;
            return true;
        }
    }
}

/// Runs the `Hello`/`HelloAck` resume handshake against an existing
/// link key; verifies the ack MAC (mutual authentication).
fn device_resume(
    name: &str,
    key: [u8; 16],
    nonce: [u8; 16],
    resume_from: u64,
    stream: &mut FrameStream,
    report: &mut DeviceLinkReport,
) -> bool {
    let hello = Frame::Hello {
        device: name.to_string(),
        nonce,
        resume_from,
        mac: hello_mac(&key, name, &nonce, resume_from),
    };
    if stream.write_frame(&hello).is_err() {
        return false;
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    match stream.read_frame_deadline(deadline) {
        Ok(Some(Frame::HelloAck { nonce: n, mac })) => {
            let ok = n == nonce && mac == hello_ack_mac(&key, name, &nonce, resume_from);
            if ok {
                report.resumes += 1;
            }
            ok
        }
        _ => false,
    }
}

/// Steady-state loop: answer challenges (idempotently), echo
/// heartbeats, until the link drops or stop is requested.
fn device_steady(
    member: &mut FleetMember,
    cfg: &DeviceLinkConfig,
    stream: &mut FrameStream,
    stop: &AtomicBool,
    cached: &mut Option<(u64, Frame)>,
    rounds_seen: &mut u64,
    report: &mut DeviceLinkReport,
) -> LinkOutcome {
    let _ = stream.conn().set_read_timeout(Some(cfg.read_poll));
    loop {
        if stop.load(Ordering::Relaxed) {
            return LinkOutcome::Finished;
        }
        match stream.read_frame() {
            Ok(Some(Frame::Challenge { round, challenges })) => {
                let reply = match cached {
                    Some((r, frame)) if *r == round => {
                        report.cached_replays += 1;
                        frame.clone()
                    }
                    _ => {
                        let Ok((mut checksum, measured)) = member.session.run_checksum(&challenges)
                        else {
                            return LinkOutcome::Finished;
                        };
                        *rounds_seen += 1;
                        report.rounds_answered += 1;
                        if cfg.compromise_after.is_some_and(|n| *rounds_seen > n) {
                            // The cheating turn: corrupt the checksum.
                            checksum[0] ^= 0xDEAD_BEEF;
                        }
                        let frame = Frame::Response {
                            round,
                            checksum,
                            measured_cycles: measured,
                        };
                        *cached = Some((round, frame.clone()));
                        frame
                    }
                };
                if stream.write_frame(&reply).is_err() {
                    return LinkOutcome::Reconnect;
                }
            }
            Ok(Some(Frame::Heartbeat { seq, echo: false })) => {
                if stream
                    .write_frame(&Frame::Heartbeat { seq, echo: true })
                    .is_err()
                {
                    return LinkOutcome::Reconnect;
                }
            }
            Ok(Some(_)) => {}
            Ok(None) => {}
            Err(_) => return LinkOutcome::Reconnect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (FrameStream, FrameStream) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        (
            FrameStream::new(Conn::Unix(a)),
            FrameStream::new(Conn::Unix(b)),
        )
    }

    #[test]
    fn frames_roundtrip_over_socketpair() {
        let (mut tx, mut rx) = pair();
        let frame = Frame::Challenge {
            round: 9,
            challenges: vec![[7; 16]; 3],
        };
        tx.write_frame(&frame).unwrap();
        rx.conn()
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(rx.read_frame().unwrap(), Some(frame));
    }

    #[test]
    fn torn_writes_reassemble() {
        let (tx, mut rx) = pair();
        let frame = Frame::Response {
            round: 4,
            checksum: [1, 2, 3, 4, 5, 6, 7, 8],
            measured_cycles: 77,
        };
        let bytes = wire::encode(&frame);
        let mut msg = (bytes.len() as u32).to_le_bytes().to_vec();
        msg.extend_from_slice(&bytes);
        let mut conn = tx.try_clone_conn().unwrap();
        // Dribble the frame one byte at a time — including a torn
        // length prefix — from another thread.
        let writer = thread::spawn(move || {
            for b in msg {
                conn.write_all(&[b]).unwrap();
                conn.flush().unwrap();
            }
        });
        rx.conn()
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let got = loop {
            match rx.read_frame().unwrap() {
                Some(f) => break f,
                None => continue,
            }
        };
        writer.join().unwrap();
        assert_eq!(got, frame);
    }

    #[test]
    fn oversize_prefix_rejected_before_allocation() {
        let (tx, mut rx) = pair();
        let mut conn = tx.try_clone_conn().unwrap();
        conn.write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
            .unwrap();
        rx.conn()
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert!(matches!(rx.read_frame(), Err(StreamError::Oversize(_))));
    }

    #[test]
    fn eof_is_closed_and_garbage_is_codec_error() {
        let (tx, mut rx) = pair();
        drop(tx);
        rx.conn()
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(rx.read_frame(), Err(StreamError::Closed));

        let (tx, mut rx) = pair();
        let mut conn = tx.try_clone_conn().unwrap();
        // A plausible length prefix followed by garbage bytes.
        conn.write_all(&8u32.to_le_bytes()).unwrap();
        conn.write_all(&[0xAA; 8]).unwrap();
        rx.conn()
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert!(matches!(rx.read_frame(), Err(StreamError::Codec(_))));
    }

    #[test]
    fn hello_macs_are_distinct_and_verify() {
        let key = [9u8; 16];
        let nonce = [3u8; 16];
        let h = hello_mac(&key, "gpu-1", &nonce, 5);
        let a = hello_ack_mac(&key, "gpu-1", &nonce, 5);
        assert_ne!(h, a, "hello and ack must use distinct labels");
        assert_ne!(
            h,
            hello_mac(&key, "gpu-2", &nonce, 5),
            "mac must bind the device name"
        );
        assert_ne!(
            h,
            hello_mac(&key, "gpu-1", &nonce, 6),
            "mac must bind the resume sequence"
        );
    }

    #[test]
    fn reconnect_backoff_grows_and_desynchronizes() {
        let cfg = DeviceLinkConfig::default();
        let a1 = reconnect_backoff(&cfg, "gpu-a", 1);
        let a4 = reconnect_backoff(&cfg, "gpu-a", 4);
        assert!(a4 > a1, "backoff must grow with attempts");
        let cap = reconnect_backoff(&cfg, "gpu-a", 30);
        assert!(cap <= cfg.backoff_cap + Duration::from_millis(cfg.backoff_jitter_ms));
        // Two devices recovering from the same outage must not share a
        // retry schedule.
        let schedule = |name: &str| {
            (0..6)
                .map(|i| reconnect_backoff(&cfg, name, i))
                .collect::<Vec<_>>()
        };
        assert_ne!(schedule("gpu-a"), schedule("gpu-b"));
    }
}
