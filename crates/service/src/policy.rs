//! The quarantine and retry policy (the paper's §7.2 robustness rules,
//! turned into control-plane knobs).

/// Policy knobs governing how the service reacts to failed rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Policy {
    /// Consecutive hard failures (wrong checksum, exhausted restarts, or
    /// timeouts) after which a device is quarantined.
    pub quarantine_after: u32,
    /// How many consecutive timing-only rejects are treated as the
    /// paper's ≈0.5% false positive and answered with an immediate
    /// restart ("in which case the verification process is restarted")
    /// before they start counting as hard failures.
    pub max_timing_restarts: u32,
    /// Base retry delay after a hard failure, in virtual ticks. Doubles
    /// per consecutive failure.
    pub backoff_base: u64,
    /// Upper bound on the exponential backoff delay.
    pub backoff_cap: u64,
    /// Consecutive *wrong-checksum* failures after which a device is
    /// quarantined, independent of [`Policy::quarantine_after`]. Wrong
    /// values are the one failure class an honest device can never
    /// produce (the checksum is deterministic), so operators running a
    /// fault-tolerant fleet set this below `quarantine_after`: transient
    /// faults (timeouts, slow rounds) burn the larger budget and recover,
    /// persistent corruption hits this budget and quarantines. The
    /// default equals `quarantine_after`, which leaves the historical
    /// single-budget behaviour unchanged.
    pub value_quarantine_after: u32,
    /// When `true`, a round that times out is granted the same §7.2
    /// restart allowance as a timing-only reject (shared
    /// `max_timing_restarts` budget): the watchdog bounds a hung device,
    /// but a transiently-unreachable one gets restarted instead of
    /// burning hard failures. Default `false` (historical behaviour:
    /// timeouts count as hard failures immediately).
    pub restart_on_timeout: bool,
}

impl Default for Policy {
    fn default() -> Policy {
        Policy {
            quarantine_after: 4,
            max_timing_restarts: 2,
            backoff_base: 2_000,
            backoff_cap: 64_000,
            value_quarantine_after: 4,
            restart_on_timeout: false,
        }
    }
}

impl Policy {
    /// The retry delay after the `consecutive_failures`-th consecutive
    /// failure: `backoff_base · 2^(n−1)`, capped at `backoff_cap`.
    pub fn backoff_delay(&self, consecutive_failures: u32) -> u64 {
        let shift = consecutive_failures.saturating_sub(1).min(32);
        self.backoff_base
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = Policy {
            backoff_base: 1_000,
            backoff_cap: 6_000,
            ..Policy::default()
        };
        assert_eq!(p.backoff_delay(1), 1_000);
        assert_eq!(p.backoff_delay(2), 2_000);
        assert_eq!(p.backoff_delay(3), 4_000);
        assert_eq!(p.backoff_delay(4), 6_000); // capped
        assert_eq!(p.backoff_delay(40), 6_000); // shift clamp, no overflow
    }

    #[test]
    fn zero_failures_still_positive() {
        assert!(Policy::default().backoff_delay(0) >= 1);
    }
}
