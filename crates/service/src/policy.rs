//! The quarantine and retry policy (the paper's §7.2 robustness rules,
//! turned into control-plane knobs).

/// Policy knobs governing how the service reacts to failed rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Policy {
    /// Consecutive hard failures (wrong checksum, exhausted restarts, or
    /// timeouts) after which a device is quarantined.
    pub quarantine_after: u32,
    /// How many consecutive timing-only rejects are treated as the
    /// paper's ≈0.5% false positive and answered with an immediate
    /// restart ("in which case the verification process is restarted")
    /// before they start counting as hard failures.
    pub max_timing_restarts: u32,
    /// Base retry delay after a hard failure, in virtual ticks. Doubles
    /// per consecutive failure.
    pub backoff_base: u64,
    /// Upper bound on the exponential backoff delay.
    pub backoff_cap: u64,
    /// Consecutive *wrong-checksum* failures after which a device is
    /// quarantined, independent of [`Policy::quarantine_after`]. Wrong
    /// values are the one failure class an honest device can never
    /// produce (the checksum is deterministic), so operators running a
    /// fault-tolerant fleet set this below `quarantine_after`: transient
    /// faults (timeouts, slow rounds) burn the larger budget and recover,
    /// persistent corruption hits this budget and quarantines. The
    /// default equals `quarantine_after`, which leaves the historical
    /// single-budget behaviour unchanged.
    pub value_quarantine_after: u32,
    /// When `true`, a round that times out is granted the same §7.2
    /// restart allowance as a timing-only reject (shared
    /// `max_timing_restarts` budget): the watchdog bounds a hung device,
    /// but a transiently-unreachable one gets restarted instead of
    /// burning hard failures. Default `false` (historical behaviour:
    /// timeouts count as hard failures immediately).
    pub restart_on_timeout: bool,
}

impl Default for Policy {
    fn default() -> Policy {
        Policy {
            quarantine_after: 4,
            max_timing_restarts: 2,
            backoff_base: 2_000,
            backoff_cap: 64_000,
            value_quarantine_after: 4,
            restart_on_timeout: false,
        }
    }
}

impl Policy {
    /// The retry delay after the `consecutive_failures`-th consecutive
    /// failure: `backoff_base · 2^(n−1)`, capped at `backoff_cap`.
    pub fn backoff_delay(&self, consecutive_failures: u32) -> u64 {
        let shift = consecutive_failures.saturating_sub(1).min(32);
        self.backoff_base
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap)
            .max(1)
    }
}

/// Deterministic backoff jitter in `0..=max`, keyed by `(name,
/// attempt)` — no shared RNG, so parallel workers and separate
/// processes compute the same value, yet two peers recovering from the
/// same outage land on different retry schedules instead of a
/// synchronized storm. `max == 0` disables jitter (and keeps historical
/// schedules byte-identical).
pub fn seeded_jitter(max: u64, name: &str, attempt: u64) -> u64 {
    if max == 0 {
        return 0;
    }
    // FNV-1a over the name, then one splitmix round folding the attempt.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % (max + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = Policy {
            backoff_base: 1_000,
            backoff_cap: 6_000,
            ..Policy::default()
        };
        assert_eq!(p.backoff_delay(1), 1_000);
        assert_eq!(p.backoff_delay(2), 2_000);
        assert_eq!(p.backoff_delay(3), 4_000);
        assert_eq!(p.backoff_delay(4), 6_000); // capped
        assert_eq!(p.backoff_delay(40), 6_000); // shift clamp, no overflow
    }

    #[test]
    fn zero_failures_still_positive() {
        assert!(Policy::default().backoff_delay(0) >= 1);
    }

    #[test]
    fn seeded_jitter_is_deterministic_bounded_and_desynchronized() {
        assert_eq!(seeded_jitter(0, "gpu-a", 3), 0, "max 0 disables jitter");
        for attempt in 0..32 {
            let j = seeded_jitter(100, "gpu-a", attempt);
            assert!(j <= 100);
            assert_eq!(j, seeded_jitter(100, "gpu-a", attempt));
        }
        // Two peers backing off from the same outage must not follow
        // the same schedule.
        let schedule = |name: &str| {
            (0..8)
                .map(|a| seeded_jitter(1_000, name, a))
                .collect::<Vec<_>>()
        };
        assert_ne!(schedule("gpu-a"), schedule("gpu-b"));
    }
}
