//! Sharded device index: an FxHash-style hasher (dependency-free) and
//! the `NodeId → roster slot` maps the event loop routes frames with.
//!
//! The old `pump_verifier_inbox` located a responding device with a
//! linear `position()` scan over the roster — O(fleet) per frame,
//! O(fleet²) per burst, which is exactly what capped the control plane
//! at a handful of devices. [`ShardIndex`] splits the fleet into
//! `hash(node) % shards` partitions, each a small open-addressed map,
//! so routing is O(1) and the per-shard partitions double as the work
//! units the step loop fans out across the thread pool: every device
//! lives in exactly one shard, so per-device ordering stays sequential
//! no matter how many workers steal shards.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::net::NodeId;

/// The `rustc-hash` multiply-rotate hash, reimplemented on `std` (the
/// workspace is dependency-free by design). Not DoS-resistant —
/// exactly the trade the compiler makes — but node ids are
/// service-assigned sequential integers, not attacker-chosen keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx multiply-rotate hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// One standalone Fx hash of a `u64` — the shard assignment function.
#[inline]
pub fn fx_hash_u64(n: u64) -> u64 {
    (0u64.rotate_left(5) ^ n).wrapping_mul(FX_SEED)
}

/// The fleet routing index: `shards` partitions of `NodeId → roster
/// slot`, shard chosen by `fx_hash(node) % shards`. Roster slots are
/// stable for the life of a device (the roster Vec is append-only; the
/// power ordering lives in a separate index vector), so entries are
/// written once at join and never move.
#[derive(Debug)]
pub struct ShardIndex {
    maps: Vec<FxHashMap<NodeId, usize>>,
}

impl ShardIndex {
    /// An empty index with `shards` partitions (clamped to ≥ 1).
    pub fn new(shards: usize) -> ShardIndex {
        let shards = shards.max(1);
        ShardIndex {
            maps: (0..shards).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Number of partitions.
    pub fn shards(&self) -> usize {
        self.maps.len()
    }

    /// The partition `node` routes to.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        (fx_hash_u64(node.0 as u64) % self.maps.len() as u64) as usize
    }

    /// Records `node` at roster `slot`.
    pub fn insert(&mut self, node: NodeId, slot: usize) {
        let s = self.shard_of(node);
        self.maps[s].insert(node, slot);
    }

    /// The roster slot for `node`, if enrolled.
    #[inline]
    pub fn get(&self, node: NodeId) -> Option<usize> {
        let s = self.shard_of(node);
        self.maps[s].get(&node).copied()
    }

    /// Drops every entry (used when rebuilding after restore).
    pub fn clear(&mut self) {
        for m in &mut self.maps {
            m.clear();
        }
    }

    /// Total enrolled entries across all partitions.
    pub fn len(&self) -> usize {
        self.maps.iter().map(|m| m.len()).sum()
    }

    /// True when no device is enrolled.
    pub fn is_empty(&self) -> bool {
        self.maps.iter().all(|m| m.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_and_resolves() {
        let mut idx = ShardIndex::new(4);
        for i in 0..100u16 {
            idx.insert(NodeId(i), i as usize);
        }
        assert_eq!(idx.len(), 100);
        for i in 0..100u16 {
            assert_eq!(idx.get(NodeId(i)), Some(i as usize));
        }
        assert_eq!(idx.get(NodeId(1000)), None);
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let idx4 = ShardIndex::new(4);
        let idx16 = ShardIndex::new(16);
        for i in 0..1000u16 {
            let s4 = idx4.shard_of(NodeId(i));
            assert!(s4 < 4);
            assert_eq!(s4, idx4.shard_of(NodeId(i)));
            assert!(idx16.shard_of(NodeId(i)) < 16);
        }
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        // Fx on sequential ids must not collapse into one partition.
        let idx = ShardIndex::new(8);
        let mut counts = [0usize; 8];
        for i in 0..800u16 {
            counts[idx.shard_of(NodeId(i))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 20, "shard {s} only got {c}/800 ids");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let idx = ShardIndex::new(0);
        assert_eq!(idx.shards(), 1);
        assert_eq!(idx.shard_of(NodeId(42)), 0);
    }

    #[test]
    fn fx_hashmap_works_as_std_map() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
    }
}
