//! Structured event log and counters — the control plane's observability
//! surface, exported as JSON for dashboards and the `svcperf` benchmark.

use sage_evidence::Freshness;
use sage_telemetry::{Counter, Histogram, Registry};

use crate::service::DeviceState;

/// Why a round failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailReason {
    /// The checksum value did not match the verifier's replay.
    WrongValue,
    /// The reported exchange time exceeded `T_avg + k·σ`.
    TooSlow,
    /// No response arrived before the round deadline.
    Timeout,
    /// The deadline expired while the device's transport link was
    /// known-down. Recoverable: appends no evidence and burns no
    /// failure budget — a severed cable is not a cheating GPU.
    LinkDown,
    /// The response's wire share (wall elapsed minus reported compute)
    /// exceeded the relay gate: the checksum was outsourced through a
    /// proxy paying two link round trips. Never restartable — topology
    /// does not flap the way timing noise does.
    Relay,
}

impl FailReason {
    /// Stable string tag used in the JSON export.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailReason::WrongValue => "wrong_value",
            FailReason::TooSlow => "too_slow",
            FailReason::Timeout => "timeout",
            FailReason::LinkDown => "link_down",
            FailReason::Relay => "relay",
        }
    }
}

/// One lifecycle event of a managed device.
#[derive(Clone, PartialEq, Debug)]
pub enum EventKind {
    /// The device joined the fleet.
    Joined,
    /// Timing calibration failed during enrollment.
    CalibrationFailed,
    /// Key establishment failed during enrollment.
    EstablishFailed,
    /// The device transitioned between lifecycle states.
    StateChanged {
        /// Previous state.
        from: DeviceState,
        /// New state.
        to: DeviceState,
    },
    /// A re-attestation round was dispatched.
    RoundStarted {
        /// Round number.
        round: u64,
    },
    /// A round passed both verdicts.
    RoundPassed {
        /// Round number.
        round: u64,
        /// Measured exchange time in cycles.
        measured: u64,
    },
    /// A round failed.
    RoundFailed {
        /// Round number.
        round: u64,
        /// Failure classification.
        reason: FailReason,
    },
    /// A timing-only reject was answered with a restart (the paper's
    /// false-positive rule).
    Restarted {
        /// Round number that was restarted.
        round: u64,
    },
    /// A response arrived for a round that is no longer outstanding
    /// (late, duplicated, or replayed) and was ignored.
    LateResponse {
        /// The round number the response claimed.
        round: u64,
    },
    /// The device left the fleet (operator revocation).
    Left,
    /// The device's freshness level changed (decay without
    /// re-attestation, or recovery when a stage passed again).
    FreshnessChanged {
        /// Previous level.
        from: Freshness,
        /// New level.
        to: Freshness,
    },
    /// A fleet evidence epoch was sealed: a Merkle root over every
    /// device's chain head (recorded under the synthetic device name
    /// `"fleet"`).
    EpochSealed {
        /// Epoch index (first sealed epoch is 1).
        epoch: u64,
        /// The sealed Merkle root.
        root: [u8; 32],
    },
    /// The device's transport link went down (connection severed or
    /// heartbeats missed). Trust drops to `Degraded`, never
    /// `Quarantined` — the attestation record is untouched.
    LinkDown,
    /// The device's transport link resumed (session resume, not
    /// re-enrollment); any outstanding challenge is re-sent.
    LinkResumed,
    /// The spot-check plan left this device out of the current epoch's
    /// sample: the due round was skipped and the device sleeps until
    /// the next epoch boundary. Only `Trusted` devices are skippable —
    /// suspects under investigation always attest.
    SpotCheckSkipped {
        /// The sampling epoch that excluded the device.
        epoch: u64,
    },
    /// The verifier quorum did not vote unanimously on this round's
    /// verdict (the outcome stands — see `crate::quorum`).
    QuorumDisputed {
        /// Round number voted on.
        round: u64,
        /// Valid `Pass` ballots.
        accepts: u16,
        /// Valid non-`Pass` ballots.
        rejects: u16,
    },
    /// A verifier replica dissented from the quorum outcome and is now
    /// flagged suspect.
    VerifierSuspected {
        /// The dissenting replica's index.
        verifier: u16,
        /// Round number it dissented on.
        round: u64,
    },
}

/// A timestamped, per-device event.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    /// Virtual time the event occurred at.
    pub at: u64,
    /// Device name.
    pub device: String,
    /// What happened.
    pub kind: EventKind,
}

/// Aggregate counters, maintained as events are recorded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Devices that joined.
    pub joins: u64,
    /// Devices that left.
    pub leaves: u64,
    /// Rounds dispatched.
    pub rounds_started: u64,
    /// Rounds that passed.
    pub rounds_passed: u64,
    /// Rounds rejected on checksum value.
    pub value_rejects: u64,
    /// Rounds rejected on timing.
    pub timing_rejects: u64,
    /// Rounds that timed out.
    pub timeouts: u64,
    /// False-positive restarts issued.
    pub restarts: u64,
    /// Late/duplicate/replayed responses ignored.
    pub late_responses: u64,
    /// Devices quarantined.
    pub quarantines: u64,
    /// Enrollment calibration failures.
    pub calibration_failures: u64,
    /// Freshness-level transitions (decay or recovery).
    pub freshness_transitions: u64,
    /// Fleet evidence epochs sealed.
    pub epochs_sealed: u64,
    /// Transport links lost (sever or heartbeat exhaustion).
    pub link_downs: u64,
    /// Transport links resumed without re-enrollment.
    pub link_resumes: u64,
    /// Rounds skipped by the spot-check sampling plan.
    pub spotcheck_skips: u64,
    /// Quorum votes with at least one dissenting ballot.
    pub quorum_disputes: u64,
    /// Dissenting verifier-replica ballots flagged.
    pub verifier_suspects: u64,
    /// Rounds rejected by the relay/topology detector.
    pub relay_rejects: u64,
}

/// Round-latency distribution over passed rounds, in virtual ticks
/// (nearest-rank percentiles — reproducible for a fixed seed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Passed rounds measured.
    pub samples: usize,
    /// Median round latency.
    pub p50: u64,
    /// 90th-percentile round latency.
    pub p90: u64,
    /// 99th-percentile round latency.
    pub p99: u64,
}

/// The telemetry sink mirroring [`Counters`] into registry series,
/// plus a virtual-tick round-latency histogram fed by pairing each
/// `RoundStarted` with its `RoundPassed` (the same pairing
/// [`EventLog::round_latencies`] computes after the fact).
struct LogTelemetry {
    joins: Counter,
    leaves: Counter,
    rounds_started: Counter,
    rounds_passed: Counter,
    /// Failures by [`FailReason`] discriminant order.
    round_failed: [Counter; 5],
    restarts: Counter,
    late_responses: Counter,
    quarantines: Counter,
    calibration_failures: Counter,
    /// Freshness transitions by destination level ([`Freshness`]
    /// discriminant order: trusted, stale, degraded).
    freshness_transitions: [Counter; 3],
    epochs_sealed: Counter,
    link_downs: Counter,
    link_resumes: Counter,
    spotcheck_skips: Counter,
    quorum_disputes: Counter,
    verifier_suspects: Counter,
    /// Events evicted from the bounded in-memory ring.
    events_dropped: Counter,
    round_latency: Histogram,
    /// Rounds started but not yet passed: `(device, round, started_at)`.
    open_rounds: Vec<(String, u64, u64)>,
}

impl LogTelemetry {
    fn new(reg: &Registry) -> LogTelemetry {
        LogTelemetry {
            joins: reg.counter("service_devices_joined_total", &[]),
            leaves: reg.counter("service_devices_left_total", &[]),
            rounds_started: reg.counter("service_rounds_started_total", &[]),
            rounds_passed: reg.counter("service_rounds_passed_total", &[]),
            round_failed: [
                FailReason::WrongValue,
                FailReason::TooSlow,
                FailReason::Timeout,
                FailReason::LinkDown,
                FailReason::Relay,
            ]
            .map(|r| reg.counter("service_rounds_failed_total", &[("reason", r.as_str())])),
            restarts: reg.counter("service_restarts_total", &[]),
            late_responses: reg.counter("service_late_responses_total", &[]),
            quarantines: reg.counter("service_quarantines_total", &[]),
            calibration_failures: reg.counter("service_calibration_failures_total", &[]),
            freshness_transitions: [Freshness::Trusted, Freshness::Stale, Freshness::Degraded]
                .map(|l| reg.counter("service_freshness_transitions_total", &[("to", l.as_str())])),
            epochs_sealed: reg.counter("service_epochs_sealed_total", &[]),
            link_downs: reg.counter("service_link_downs_total", &[]),
            link_resumes: reg.counter("service_link_resumes_total", &[]),
            spotcheck_skips: reg.counter("service_spotcheck_skips_total", &[]),
            quorum_disputes: reg.counter("service_quorum_disputes_total", &[]),
            verifier_suspects: reg.counter("service_verifier_suspects_total", &[]),
            events_dropped: reg.counter("service_events_dropped_total", &[]),
            round_latency: reg.histogram("service_round_latency_ticks", &[]),
            open_rounds: Vec::new(),
        }
    }

    fn observe(&mut self, at: u64, device: &str, kind: &EventKind) {
        match kind {
            EventKind::Joined => self.joins.inc(),
            EventKind::Left => self.leaves.inc(),
            EventKind::CalibrationFailed => self.calibration_failures.inc(),
            EventKind::EstablishFailed => {}
            EventKind::StateChanged { to, .. } => {
                if *to == DeviceState::Quarantined {
                    self.quarantines.inc();
                }
            }
            EventKind::RoundStarted { round } => {
                self.rounds_started.inc();
                self.open_rounds.push((device.to_string(), *round, at));
            }
            EventKind::RoundPassed { round, .. } => {
                self.rounds_passed.inc();
                if let Some(i) = self
                    .open_rounds
                    .iter()
                    .position(|(d, r, _)| d == device && r == round)
                {
                    let (_, _, started) = self.open_rounds.swap_remove(i);
                    self.round_latency.record(at - started);
                }
            }
            EventKind::RoundFailed { reason, .. } => self.round_failed[*reason as usize].inc(),
            EventKind::Restarted { .. } => self.restarts.inc(),
            EventKind::LateResponse { .. } => self.late_responses.inc(),
            EventKind::FreshnessChanged { to, .. } => {
                self.freshness_transitions[to.tag() as usize].inc()
            }
            EventKind::EpochSealed { .. } => self.epochs_sealed.inc(),
            EventKind::LinkDown => self.link_downs.inc(),
            EventKind::LinkResumed => self.link_resumes.inc(),
            EventKind::SpotCheckSkipped { .. } => self.spotcheck_skips.inc(),
            EventKind::QuorumDisputed { .. } => self.quorum_disputes.inc(),
            EventKind::VerifierSuspected { .. } => self.verifier_suspects.inc(),
        }
    }
}

/// The event log: append-order events plus derived counters. With a
/// capacity set it becomes a ring — only the most recent `capacity`
/// events stay resident (a 10k-device fleet would otherwise grow the
/// log without bound), while the counters keep counting everything.
#[derive(Default)]
pub struct EventLog {
    events: Vec<Event>,
    counters: Counters,
    sink: Option<LogTelemetry>,
    /// Retained-event bound; `0` = unbounded (the historical default).
    capacity: usize,
    /// Events evicted by the ring so far.
    events_dropped: u64,
}

impl EventLog {
    /// Creates an empty, unbounded log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Creates an empty log retaining at most `capacity` events
    /// (`0` = unbounded). Eviction is amortized O(1): the buffer grows
    /// to `2 × capacity`, then the oldest half is dropped in one
    /// `drain`, so [`EventLog::events`] stays a plain slice.
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            capacity,
            ..EventLog::default()
        }
    }

    /// Rebuilds a log from a previously exported event stream, replaying
    /// each event through [`EventLog::record`] so the derived counters
    /// are recomputed — a restored log is indistinguishable from one
    /// that never stopped.
    pub fn restore(events: Vec<Event>) -> EventLog {
        let mut log = EventLog::new();
        for e in events {
            log.record(e.at, &e.device, e.kind);
        }
        log
    }

    /// Rebuilds a log from snapshot parts: the retained event window
    /// plus the authoritative counters and drop count. Unlike
    /// [`EventLog::restore`], nothing is replayed — when the ring has
    /// wrapped, the retained window no longer determines the counters,
    /// so they must be carried explicitly.
    pub fn restore_parts(
        events: Vec<Event>,
        counters: Counters,
        events_dropped: u64,
        capacity: usize,
    ) -> EventLog {
        EventLog {
            events,
            counters,
            sink: None,
            capacity,
            events_dropped,
        }
    }

    /// Attaches the log to a telemetry registry: counters are exported
    /// as `service_*_total` series and passed-round latencies feed a
    /// `service_round_latency_ticks` histogram (virtual ticks —
    /// deterministic for a fixed seed). Events already in the log are
    /// replayed through the sink first, so attaching after a
    /// crash-restore produces the same series as never having stopped.
    pub fn attach_telemetry(&mut self, reg: &Registry) {
        let mut sink = LogTelemetry::new(reg);
        for e in &self.events {
            sink.observe(e.at, &e.device, &e.kind);
        }
        sink.events_dropped.add(self.events_dropped);
        self.sink = Some(sink);
    }

    /// Appends an event and updates the derived counters.
    pub fn record(&mut self, at: u64, device: &str, kind: EventKind) {
        if let Some(sink) = self.sink.as_mut() {
            sink.observe(at, device, &kind);
        }
        match &kind {
            EventKind::Joined => self.counters.joins += 1,
            EventKind::Left => self.counters.leaves += 1,
            EventKind::CalibrationFailed => self.counters.calibration_failures += 1,
            EventKind::EstablishFailed => {}
            EventKind::StateChanged { to, .. } => {
                if *to == DeviceState::Quarantined {
                    self.counters.quarantines += 1;
                }
            }
            EventKind::RoundStarted { .. } => self.counters.rounds_started += 1,
            EventKind::RoundPassed { .. } => self.counters.rounds_passed += 1,
            EventKind::RoundFailed { reason, .. } => match reason {
                FailReason::WrongValue => self.counters.value_rejects += 1,
                FailReason::TooSlow => self.counters.timing_rejects += 1,
                FailReason::Timeout => self.counters.timeouts += 1,
                // Deliberately not folded into `timeouts`: dashboards
                // must tell a flapping link from a hung device. The
                // link itself is counted by `link_downs`.
                FailReason::LinkDown => {}
                FailReason::Relay => self.counters.relay_rejects += 1,
            },
            EventKind::Restarted { .. } => self.counters.restarts += 1,
            EventKind::LateResponse { .. } => self.counters.late_responses += 1,
            EventKind::FreshnessChanged { .. } => self.counters.freshness_transitions += 1,
            EventKind::EpochSealed { .. } => self.counters.epochs_sealed += 1,
            EventKind::LinkDown => self.counters.link_downs += 1,
            EventKind::LinkResumed => self.counters.link_resumes += 1,
            EventKind::SpotCheckSkipped { .. } => self.counters.spotcheck_skips += 1,
            EventKind::QuorumDisputed { .. } => self.counters.quorum_disputes += 1,
            EventKind::VerifierSuspected { .. } => self.counters.verifier_suspects += 1,
        }
        self.events.push(Event {
            at,
            device: device.to_string(),
            kind,
        });
        if self.capacity > 0 && self.events.len() >= self.capacity * 2 {
            let drop = self.events.len() - self.capacity;
            self.events.drain(..drop);
            self.events_dropped += drop as u64;
            if let Some(sink) = self.sink.as_mut() {
                sink.events_dropped.add(drop as u64);
            }
        }
    }

    /// All retained events, in order. With a capacity set this is the
    /// most recent window; [`EventLog::events_dropped`] counts what the
    /// ring evicted before it.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events evicted by the bounded ring (0 while unbounded or not yet
    /// wrapped). Exported as `service_events_dropped_total` when
    /// telemetry is attached.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The configured retained-event bound (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Virtual-tick latency of every passed round: the delta between a
    /// device's `RoundStarted` and the matching `RoundPassed`, in event
    /// order. Rounds that failed, restarted, or are still outstanding
    /// contribute nothing.
    pub fn round_latencies(&self) -> Vec<u64> {
        let mut open: Vec<(&str, u64, u64)> = Vec::new(); // (device, round, at)
        let mut out = Vec::new();
        for e in &self.events {
            match e.kind {
                EventKind::RoundStarted { round } => {
                    open.push((&e.device, round, e.at));
                }
                EventKind::RoundPassed { round, .. } => {
                    if let Some(i) = open
                        .iter()
                        .position(|&(d, r, _)| d == e.device && r == round)
                    {
                        let (_, _, started) = open.swap_remove(i);
                        out.push(e.at - started);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// p50/p90/p99 of the passed-round latencies (nearest-rank on the
    /// sorted samples — deterministic, no interpolation). `None` until at
    /// least one round has passed.
    ///
    /// Once the bounded ring has wrapped, the retained events no longer
    /// cover every passed round, so the exact per-event computation
    /// would silently report a recent-window artifact. With telemetry
    /// attached the query falls back to the registry's
    /// `service_round_latency_ticks` histogram, which observed every
    /// round (interpolated log2-bucket percentiles); without a sink it
    /// degrades to the retained window.
    pub fn latency_percentiles(&self) -> Option<LatencyPercentiles> {
        if self.events_dropped > 0 {
            if let Some(sink) = &self.sink {
                let snap = sink.round_latency.snapshot();
                if snap.count() == 0 {
                    return None;
                }
                return Some(LatencyPercentiles {
                    samples: snap.count() as usize,
                    p50: snap.percentile(0.50)?,
                    p90: snap.percentile(0.90)?,
                    p99: snap.percentile(0.99)?,
                });
            }
        }
        let mut lat = self.round_latencies();
        if lat.is_empty() {
            return None;
        }
        lat.sort_unstable();
        let rank = |q: f64| {
            let n = lat.len();
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            lat[idx]
        };
        Some(LatencyPercentiles {
            samples: lat.len(),
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
        })
    }

    /// Current counter snapshot.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Renders the counters as a JSON object (no trailing newline).
    pub fn counters_json(&self) -> String {
        let c = self.counters;
        format!(
            concat!(
                "{{\"joins\": {}, \"leaves\": {}, \"rounds_started\": {}, ",
                "\"rounds_passed\": {}, \"value_rejects\": {}, \"timing_rejects\": {}, ",
                "\"timeouts\": {}, \"restarts\": {}, \"late_responses\": {}, ",
                "\"quarantines\": {}, \"calibration_failures\": {}, ",
                "\"freshness_transitions\": {}, \"epochs_sealed\": {}, ",
                "\"link_downs\": {}, \"link_resumes\": {}, ",
                "\"spotcheck_skips\": {}, \"quorum_disputes\": {}, ",
                "\"verifier_suspects\": {}, \"relay_rejects\": {}}}"
            ),
            c.joins,
            c.leaves,
            c.rounds_started,
            c.rounds_passed,
            c.value_rejects,
            c.timing_rejects,
            c.timeouts,
            c.restarts,
            c.late_responses,
            c.quarantines,
            c.calibration_failures,
            c.freshness_transitions,
            c.epochs_sealed,
            c.link_downs,
            c.link_resumes,
            c.spotcheck_skips,
            c.quorum_disputes,
            c.verifier_suspects,
            c.relay_rejects,
        )
    }

    /// Renders the full log (counters + events) as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": ");
        out.push_str(&self.counters_json());
        out.push_str(",\n  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"at\": {}, \"device\": \"{}\", {}}}{}\n",
                e.at,
                json_str(&e.device),
                kind_json(&e.kind),
                if i + 1 == self.events.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal. Device
/// names are plain identifiers throughout the tree, but names arrive
/// from operators — a hostile or merely odd name must never panic the
/// control plane, so anything beyond the plain subset is escaped.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn kind_json(kind: &EventKind) -> String {
    match kind {
        EventKind::Joined => "\"kind\": \"joined\"".into(),
        EventKind::CalibrationFailed => "\"kind\": \"calibration_failed\"".into(),
        EventKind::EstablishFailed => "\"kind\": \"establish_failed\"".into(),
        EventKind::StateChanged { from, to } => format!(
            "\"kind\": \"state_changed\", \"from\": \"{}\", \"to\": \"{}\"",
            from.as_str(),
            to.as_str()
        ),
        EventKind::RoundStarted { round } => {
            format!("\"kind\": \"round_started\", \"round\": {round}")
        }
        EventKind::RoundPassed { round, measured } => {
            format!("\"kind\": \"round_passed\", \"round\": {round}, \"measured\": {measured}")
        }
        EventKind::RoundFailed { round, reason } => format!(
            "\"kind\": \"round_failed\", \"round\": {round}, \"reason\": \"{}\"",
            reason.as_str()
        ),
        EventKind::Restarted { round } => format!("\"kind\": \"restarted\", \"round\": {round}"),
        EventKind::LateResponse { round } => {
            format!("\"kind\": \"late_response\", \"round\": {round}")
        }
        EventKind::Left => "\"kind\": \"left\"".into(),
        EventKind::FreshnessChanged { from, to } => format!(
            "\"kind\": \"freshness_changed\", \"from\": \"{}\", \"to\": \"{}\"",
            from.as_str(),
            to.as_str()
        ),
        EventKind::EpochSealed { epoch, root } => {
            let hex: String = root.iter().map(|b| format!("{b:02x}")).collect();
            format!("\"kind\": \"epoch_sealed\", \"epoch\": {epoch}, \"root\": \"{hex}\"")
        }
        EventKind::LinkDown => "\"kind\": \"link_down\"".into(),
        EventKind::LinkResumed => "\"kind\": \"link_resumed\"".into(),
        EventKind::SpotCheckSkipped { epoch } => {
            format!("\"kind\": \"spotcheck_skipped\", \"epoch\": {epoch}")
        }
        EventKind::QuorumDisputed {
            round,
            accepts,
            rejects,
        } => format!(
            "\"kind\": \"quorum_disputed\", \"round\": {round}, \
             \"accepts\": {accepts}, \"rejects\": {rejects}"
        ),
        EventKind::VerifierSuspected { verifier, round } => format!(
            "\"kind\": \"verifier_suspected\", \"verifier\": {verifier}, \"round\": {round}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_events() {
        let mut log = EventLog::new();
        log.record(0, "a", EventKind::Joined);
        log.record(1, "a", EventKind::RoundStarted { round: 1 });
        log.record(
            2,
            "a",
            EventKind::RoundFailed {
                round: 1,
                reason: FailReason::Timeout,
            },
        );
        log.record(
            3,
            "a",
            EventKind::StateChanged {
                from: DeviceState::Trusted,
                to: DeviceState::Quarantined,
            },
        );
        let c = log.counters();
        assert_eq!(c.joins, 1);
        assert_eq!(c.rounds_started, 1);
        assert_eq!(c.timeouts, 1);
        assert_eq!(c.quarantines, 1);
        assert_eq!(log.events().len(), 4);
    }

    #[test]
    fn latency_percentiles_match_started_passed_pairs() {
        let mut log = EventLog::new();
        // Device a: rounds taking 10, 30, 20 ticks; device b: one round
        // of 40 ticks interleaved; one failed round contributes nothing.
        let pairs = [("a", 1, 0, 10), ("a", 2, 100, 130), ("a", 3, 200, 220)];
        log.record(50, "b", EventKind::RoundStarted { round: 1 });
        for (dev, round, start, end) in pairs {
            log.record(start, dev, EventKind::RoundStarted { round });
            log.record(
                end,
                dev,
                EventKind::RoundPassed {
                    round,
                    measured: 99,
                },
            );
        }
        log.record(
            90,
            "b",
            EventKind::RoundPassed {
                round: 1,
                measured: 99,
            },
        );
        log.record(300, "a", EventKind::RoundStarted { round: 4 });
        log.record(
            310,
            "a",
            EventKind::RoundFailed {
                round: 4,
                reason: FailReason::TooSlow,
            },
        );
        assert_eq!(log.round_latencies(), vec![10, 30, 20, 40]);
        let p = log.latency_percentiles().unwrap();
        assert_eq!(p.samples, 4);
        assert_eq!(p.p50, 20);
        assert_eq!(p.p90, 40);
        assert_eq!(p.p99, 40);
    }

    #[test]
    fn latency_percentiles_empty_without_passes() {
        assert!(EventLog::new().latency_percentiles().is_none());
        let mut log = EventLog::new();
        log.record(0, "a", EventKind::RoundStarted { round: 1 });
        assert!(log.latency_percentiles().is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut log = EventLog::new();
        log.record(10, "a", EventKind::RoundStarted { round: 1 });
        log.record(
            17,
            "a",
            EventKind::RoundPassed {
                round: 1,
                measured: 1,
            },
        );
        let p = log.latency_percentiles().unwrap();
        assert_eq!(p.samples, 1);
        assert_eq!((p.p50, p.p90, p.p99), (7, 7, 7));
    }

    /// Hand-computed nearest-rank oracle over ten known samples:
    /// ranks ⌈0.50·10⌉ = 5, ⌈0.90·10⌉ = 9, ⌈0.99·10⌉ = 10.
    #[test]
    fn ten_sample_nearest_rank_oracle() {
        let latencies = [31u64, 2, 19, 7, 43, 11, 5, 23, 13, 3];
        let mut log = EventLog::new();
        for (i, lat) in latencies.iter().enumerate() {
            let round = i as u64 + 1;
            let start = i as u64 * 1000;
            log.record(start, "a", EventKind::RoundStarted { round });
            log.record(
                start + lat,
                "a",
                EventKind::RoundPassed { round, measured: 1 },
            );
        }
        // Sorted: [2, 3, 5, 7, 11, 13, 19, 23, 31, 43].
        let p = log.latency_percentiles().unwrap();
        assert_eq!(p.samples, 10);
        assert_eq!(p.p50, 11, "rank 5 of the sorted samples");
        assert_eq!(p.p90, 31, "rank 9 of the sorted samples");
        assert_eq!(p.p99, 43, "rank 10 of the sorted samples");
    }

    /// The attached telemetry histogram answers the same percentile
    /// queries interpolated within the containing log2 bucket: the
    /// reported value shares the exact answer's bucket (≤ 2× relative
    /// error), it just sits elsewhere inside it.
    #[test]
    fn telemetry_histogram_agrees_within_one_bucket() {
        use sage_telemetry::{bucket_bounds, bucket_index, MetricValue, Registry};

        let latencies = [31u64, 2, 19, 7, 43, 11, 5, 23, 13, 3];
        let reg = Registry::new();
        let mut log = EventLog::new();
        log.attach_telemetry(&reg);
        for (i, lat) in latencies.iter().enumerate() {
            let round = i as u64 + 1;
            let start = i as u64 * 1000;
            log.record(start, "a", EventKind::RoundStarted { round });
            log.record(
                start + lat,
                "a",
                EventKind::RoundPassed { round, measured: 1 },
            );
        }
        let exact = log.latency_percentiles().unwrap();
        let snap = reg
            .collect()
            .into_iter()
            .find_map(|(name, _, v)| match (name.as_str(), v) {
                ("service_round_latency_ticks", MetricValue::Histogram(s)) => Some(s),
                _ => None,
            })
            .expect("latency histogram registered");
        assert_eq!(snap.count(), 10);
        for (q, exact) in [(0.50, exact.p50), (0.90, exact.p90), (0.99, exact.p99)] {
            let reported = snap.percentile(q).unwrap();
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(
                (lo..=hi).contains(&reported),
                "q={q}: reported {reported} outside exact {exact}'s bucket [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn ring_caps_retained_events_and_counts_drops() {
        let mut log = EventLog::with_capacity(4);
        for round in 1..=12u64 {
            log.record(round, "a", EventKind::RoundStarted { round });
        }
        // Counters see everything; the ring keeps at most 2×capacity−1
        // and never fewer than `capacity` events.
        assert_eq!(log.counters().rounds_started, 12);
        assert!(log.events().len() >= 4 && log.events().len() < 8);
        assert_eq!(log.events_dropped() + log.events().len() as u64, 12);
        // The retained window is the most recent suffix, in order.
        let rounds: Vec<u64> = log
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::RoundStarted { round } => round,
                _ => unreachable!(),
            })
            .collect();
        let first = rounds[0];
        assert_eq!(
            rounds,
            (first..=12).collect::<Vec<u64>>(),
            "window must be a contiguous recent suffix"
        );
    }

    #[test]
    fn unbounded_log_never_drops() {
        let mut log = EventLog::new();
        for round in 1..=100u64 {
            log.record(round, "a", EventKind::RoundStarted { round });
        }
        assert_eq!(log.events().len(), 100);
        assert_eq!(log.events_dropped(), 0);
    }

    /// After the ring wraps, exact per-event percentiles are a window
    /// artifact — the query must fall back to the attached telemetry
    /// histogram, which observed every round.
    #[test]
    fn wrapped_log_falls_back_to_telemetry_histogram() {
        use sage_telemetry::{bucket_bounds, bucket_index, Registry};

        let reg = Registry::new();
        let mut log = EventLog::with_capacity(6);
        log.attach_telemetry(&reg);
        // 50 rounds of latency 10, then 1 of 1000; the ring retains only
        // a tail slice of them.
        for i in 0..51u64 {
            let round = i + 1;
            let lat = if i < 50 { 10 } else { 1000 };
            log.record(i * 100, "a", EventKind::RoundStarted { round });
            log.record(
                i * 100 + lat,
                "a",
                EventKind::RoundPassed { round, measured: 1 },
            );
        }
        assert!(log.events_dropped() > 0, "ring must have wrapped");
        let p = log.latency_percentiles().unwrap();
        // The fallback sees all 51 samples, not just the retained tail.
        assert_eq!(p.samples, 51);
        let (lo, hi) = bucket_bounds(bucket_index(10));
        assert!(
            (lo..=hi).contains(&p.p50),
            "p50 {} outside [{lo},{hi}]",
            p.p50
        );
        let (lo, hi) = bucket_bounds(bucket_index(1000));
        assert!(
            (lo..=hi).contains(&p.p99),
            "p99 {} outside [{lo},{hi}]",
            p.p99
        );
    }

    #[test]
    fn restore_parts_carries_counters_and_drops() {
        let mut log = EventLog::with_capacity(3);
        for round in 1..=10u64 {
            log.record(round, "a", EventKind::RoundStarted { round });
        }
        let restored = EventLog::restore_parts(
            log.events().to_vec(),
            log.counters(),
            log.events_dropped(),
            log.capacity(),
        );
        assert_eq!(restored.counters(), log.counters());
        assert_eq!(restored.events_dropped(), log.events_dropped());
        assert_eq!(restored.events(), log.events());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut log = EventLog::new();
        log.record(
            5,
            "dev-1",
            EventKind::RoundPassed {
                round: 2,
                measured: 123,
            },
        );
        let j = log.to_json();
        assert!(j.contains("\"round_passed\""));
        assert!(j.contains("\"rounds_passed\": 1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
