//! Crash-safe control-plane state: a versioned binary snapshot of
//! everything the scheduler needs to resume mid-schedule.
//!
//! The crash model: the *control-plane process* dies — its scheduler
//! state (virtual clock, per-device lifecycle, outstanding rounds,
//! backoff timers, the event log) is lost unless snapshotted — while the
//! long-lived endpoints survive: the devices themselves, their transport,
//! and the enclave-resident verifiers (whose calibration is additionally
//! re-imposed from the snapshot, mirroring the enclave's own sealing
//! path). [`AttestationService::snapshot`] serializes the scheduler
//! state; [`AttestationService::into_endpoints`] surrenders the
//! survivors; [`AttestationService::restore`] marries the two back into
//! a service whose *subsequent* event history is bit-identical to a run
//! that never crashed — the keystone invariant the soak harness asserts.
//!
//! The format is hand-rolled little-endian (the workspace is
//! dependency-free by design), magic-tagged and versioned like the wire
//! codec, and every decode error is typed — a truncated or tampered
//! snapshot can never panic the control plane.

use sage::verifier::Verifier;
use sage::Calibration;
use sage_crypto::DhGroup;
use sage_evidence::chain::{decode_records, encode_records};
use sage_evidence::merkle::EpochLeaf;
use sage_evidence::record::EvidenceRecord;
use sage_evidence::{derive_evidence_key, EvidenceChain, Freshness};

use sage_vf::ReplayPool;

use crate::events::{Counters, Event, EventKind, EventLog, FailReason};
use crate::net::{NodeId, Transport};
use crate::node::DeviceNode;
use crate::quorum::{VerifierBehavior, VerifierSet};
use crate::service::{
    AttestationService, DeviceState, ManagedDevice, Outstanding, SealedEpoch, ServiceConfig,
};
use crate::shard::ShardIndex;
use crate::wheel::TimerWheel;

/// Snapshot magic: "SAGE snap".
const MAGIC: u32 = 0x5A6E_A950;
/// Current snapshot format version. Version 2 added the evidence layer:
/// per-device session keys, evidence chains, freshness anchors, and the
/// service's sealed fleet epochs. Version 3 carries the event-log
/// counters and drop count explicitly: with a bounded log the retained
/// event window no longer determines the counters, so replaying it on
/// restore (the v2 scheme) would under-count. Version 5 added the
/// verifier-quorum layer: per-replica vote state (behavior, suspect
/// flag, dissent count, evidence-view digest), the outstanding round's
/// dispatch time (the relay detector's wall anchor), and the
/// sampling/quorum/relay counters and event kinds.
const VERSION: u16 = 5;

/// Why a snapshot could not be decoded or re-married to its endpoints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The byte stream ended before the structure did.
    Truncated,
    /// The leading magic was not a snapshot's.
    BadMagic,
    /// A snapshot from an unknown format version.
    BadVersion(u16),
    /// An enum tag held an out-of-range value.
    BadTag {
        /// Which field the tag belongs to.
        field: &'static str,
        /// The offending value.
        value: u8,
    },
    /// A device name in the snapshot was not valid UTF-8.
    BadName,
    /// Bytes remained after the structure ended.
    TrailingBytes,
    /// The snapshot names a device no provided endpoint serves.
    MissingEndpoint(String),
    /// An endpoint was provided for a device the snapshot doesn't know.
    UnknownDevice(String),
    /// A device's evidence blob does not decode, or its records fail
    /// re-verification (the chain must re-hash to the recorded heads).
    BadEvidence(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a service snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadTag { field, value } => {
                write!(f, "bad {field} tag {value} in snapshot")
            }
            SnapshotError::BadName => write!(f, "device name in snapshot is not UTF-8"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
            SnapshotError::MissingEndpoint(n) => {
                write!(f, "snapshot device {n:?} has no surviving endpoint")
            }
            SnapshotError::UnknownDevice(n) => {
                write!(f, "endpoint {n:?} is not in the snapshot")
            }
            SnapshotError::BadEvidence(n) => {
                write!(f, "evidence chain for device {n:?} fails re-verification")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A surviving device endpoint: the network-facing node (session, agent,
/// transport address) and its enclave-resident verifier. Produced by
/// [`AttestationService::into_endpoints`], consumed by
/// [`AttestationService::restore`].
pub struct Endpoint {
    /// The device node (session + agent + transport address).
    pub node: DeviceNode,
    /// The verifier enclave paired with this device.
    pub verifier: Verifier,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    put_u16(out, bytes.len().min(u16::MAX as usize) as u16);
    out.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

fn state_tag(s: DeviceState) -> u8 {
    match s {
        DeviceState::Enrolled => 0,
        DeviceState::Attesting => 1,
        DeviceState::Trusted => 2,
        DeviceState::Degraded => 3,
        DeviceState::Quarantined => 4,
        DeviceState::Revoked => 5,
    }
}

fn reason_tag(r: FailReason) -> u8 {
    match r {
        FailReason::WrongValue => 0,
        FailReason::TooSlow => 1,
        FailReason::Timeout => 2,
        FailReason::LinkDown => 3,
        FailReason::Relay => 4,
    }
}

fn put_event(out: &mut Vec<u8>, e: &Event) {
    put_u64(out, e.at);
    put_str(out, &e.device);
    match &e.kind {
        EventKind::Joined => out.push(0),
        EventKind::CalibrationFailed => out.push(1),
        EventKind::EstablishFailed => out.push(2),
        EventKind::StateChanged { from, to } => {
            out.push(3);
            out.push(state_tag(*from));
            out.push(state_tag(*to));
        }
        EventKind::RoundStarted { round } => {
            out.push(4);
            put_u64(out, *round);
        }
        EventKind::RoundPassed { round, measured } => {
            out.push(5);
            put_u64(out, *round);
            put_u64(out, *measured);
        }
        EventKind::RoundFailed { round, reason } => {
            out.push(6);
            put_u64(out, *round);
            out.push(reason_tag(*reason));
        }
        EventKind::Restarted { round } => {
            out.push(7);
            put_u64(out, *round);
        }
        EventKind::LateResponse { round } => {
            out.push(8);
            put_u64(out, *round);
        }
        EventKind::Left => out.push(9),
        EventKind::FreshnessChanged { from, to } => {
            out.push(10);
            out.push(from.tag());
            out.push(to.tag());
        }
        EventKind::EpochSealed { epoch, root } => {
            out.push(11);
            put_u64(out, *epoch);
            out.extend_from_slice(root);
        }
        EventKind::LinkDown => out.push(12),
        EventKind::LinkResumed => out.push(13),
        EventKind::SpotCheckSkipped { epoch } => {
            out.push(14);
            put_u64(out, *epoch);
        }
        EventKind::QuorumDisputed {
            round,
            accepts,
            rejects,
        } => {
            out.push(15);
            put_u64(out, *round);
            put_u16(out, *accepts);
            put_u16(out, *rejects);
        }
        EventKind::VerifierSuspected { verifier, round } => {
            out.push(16);
            put_u16(out, *verifier);
            put_u64(out, *round);
        }
    }
}

pub(crate) fn encode<T: Transport>(svc: &AttestationService<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    put_u32(&mut out, MAGIC);
    put_u16(&mut out, VERSION);
    put_u64(&mut out, svc.now);
    put_u16(&mut out, svc.next_node);
    put_u32(&mut out, svc.devices.len() as u32);
    for d in &svc.devices {
        put_str(&mut out, &d.node.member.name);
        put_u16(&mut out, d.node.id.0);
        out.push(state_tag(d.state));
        put_u64(&mut out, d.round);
        put_u64(&mut out, d.rounds_passed);
        put_u32(&mut out, d.consecutive_failures);
        put_u32(&mut out, d.consecutive_value_failures);
        put_u32(&mut out, d.consecutive_restarts);
        match d.next_action_at {
            Some(t) => {
                out.push(1);
                put_u64(&mut out, t);
            }
            None => out.push(0),
        }
        match &d.outstanding {
            Some(o) => {
                out.push(1);
                put_u64(&mut out, o.round);
                put_u64(&mut out, o.deadline);
                put_u64(&mut out, o.started_at);
                match o.expected {
                    Some(words) => {
                        out.push(1);
                        for w in words {
                            put_u32(&mut out, w);
                        }
                    }
                    None => out.push(0),
                }
                put_u32(&mut out, o.challenges.len() as u32);
                for c in &o.challenges {
                    out.extend_from_slice(c);
                }
            }
            None => out.push(0),
        }
        match d.verifier.calibration() {
            Some(c) => {
                out.push(1);
                put_f64(&mut out, c.t_avg);
                put_f64(&mut out, c.sigma);
                put_f64(&mut out, c.k_sigma);
                put_u64(&mut out, c.runs as u64);
            }
            None => out.push(0),
        }
        match d.session_key {
            Some(sk) => {
                out.push(1);
                out.extend_from_slice(&sk);
            }
            None => out.push(0),
        }
        match &d.evidence {
            Some(chain) => {
                out.push(1);
                let blob = encode_records(chain.records());
                put_u32(&mut out, blob.len() as u32);
                out.extend_from_slice(&blob);
            }
            None => out.push(0),
        }
        match d.last_attested {
            Some(t) => {
                out.push(1);
                put_u64(&mut out, t);
            }
            None => out.push(0),
        }
        out.push(d.freshness.tag());
    }
    match svc.next_seal_at {
        Some(t) => {
            out.push(1);
            put_u64(&mut out, t);
        }
        None => out.push(0),
    }
    put_u32(&mut out, svc.sealed_epochs.len() as u32);
    for e in &svc.sealed_epochs {
        put_u64(&mut out, e.index);
        put_u64(&mut out, e.at);
        out.extend_from_slice(&e.root);
        put_u32(&mut out, e.leaves.len() as u32);
        for l in &e.leaves {
            put_str(&mut out, &l.device);
            out.extend_from_slice(&l.head);
            put_u64(&mut out, l.seq);
        }
    }
    let events = svc.log.events();
    put_u32(&mut out, events.len() as u32);
    for e in events {
        put_event(&mut out, e);
    }
    put_counters(&mut out, &svc.log.counters());
    put_u64(&mut out, svc.log.events_dropped());
    // Verifier-quorum running state. Vote keys are not snapshotted:
    // they re-derive from the configured quorum seed on restore,
    // mirroring how device session keys survive in the endpoints.
    match &svc.quorum {
        Some(set) => {
            out.push(1);
            put_u16(&mut out, set.len() as u16);
            put_u64(&mut out, set.rounds);
            put_u64(&mut out, set.disputes);
            for rep in set.replicas() {
                out.push(rep.behavior.tag());
                out.push(u8::from(rep.suspected));
                put_u64(&mut out, rep.dissents);
                out.extend_from_slice(&rep.view);
            }
        }
        None => out.push(0),
    }
    out
}

/// Counters are encoded in declaration order; the decoder mirrors this.
fn put_counters(out: &mut Vec<u8>, c: &Counters) {
    for v in [
        c.joins,
        c.leaves,
        c.rounds_started,
        c.rounds_passed,
        c.value_rejects,
        c.timing_rejects,
        c.timeouts,
        c.restarts,
        c.late_responses,
        c.quarantines,
        c.calibration_failures,
        c.freshness_transitions,
        c.epochs_sealed,
        c.link_downs,
        c.link_resumes,
        c.spotcheck_skips,
        c.quorum_disputes,
        c.verifier_suspects,
        c.relay_rejects,
    ] {
        put_u64(out, v);
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u16()? as usize;
        let b = self.bytes(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapshotError::BadName)
    }

    fn state(&mut self) -> Result<DeviceState, SnapshotError> {
        let tag = self.u8()?;
        Ok(match tag {
            0 => DeviceState::Enrolled,
            1 => DeviceState::Attesting,
            2 => DeviceState::Trusted,
            3 => DeviceState::Degraded,
            4 => DeviceState::Quarantined,
            5 => DeviceState::Revoked,
            value => {
                return Err(SnapshotError::BadTag {
                    field: "device state",
                    value,
                })
            }
        })
    }

    fn reason(&mut self) -> Result<FailReason, SnapshotError> {
        let tag = self.u8()?;
        Ok(match tag {
            0 => FailReason::WrongValue,
            1 => FailReason::TooSlow,
            2 => FailReason::Timeout,
            3 => FailReason::LinkDown,
            4 => FailReason::Relay,
            value => {
                return Err(SnapshotError::BadTag {
                    field: "fail reason",
                    value,
                })
            }
        })
    }

    fn flag(&mut self, field: &'static str) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(SnapshotError::BadTag { field, value }),
        }
    }

    fn fixed<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.bytes(N)?);
        Ok(a)
    }

    fn freshness(&mut self) -> Result<Freshness, SnapshotError> {
        let value = self.u8()?;
        Freshness::from_tag(value).map_err(|_| SnapshotError::BadTag {
            field: "freshness",
            value,
        })
    }
}

/// Scheduler-side state of one device, decoded from a snapshot.
struct DeviceRecord {
    name: String,
    node: NodeId,
    state: DeviceState,
    round: u64,
    rounds_passed: u64,
    consecutive_failures: u32,
    consecutive_value_failures: u32,
    consecutive_restarts: u32,
    next_action_at: Option<u64>,
    outstanding: Option<Outstanding>,
    calibration: Option<Calibration>,
    session_key: Option<[u8; 16]>,
    evidence: Option<Vec<EvidenceRecord>>,
    last_attested: Option<u64>,
    freshness: Freshness,
}

/// One verifier replica's durable state, decoded from a snapshot.
struct ReplicaRecord {
    behavior: VerifierBehavior,
    suspected: bool,
    dissents: u64,
    view: [u8; 32],
}

/// The quorum's durable state, decoded from a snapshot.
struct QuorumRecord {
    rounds: u64,
    disputes: u64,
    replicas: Vec<ReplicaRecord>,
}

struct Decoded {
    now: u64,
    next_node: u16,
    devices: Vec<DeviceRecord>,
    next_seal_at: Option<u64>,
    sealed_epochs: Vec<SealedEpoch>,
    events: Vec<Event>,
    counters: Counters,
    events_dropped: u64,
    quorum: Option<QuorumRecord>,
}

fn decode(bytes: &[u8]) -> Result<Decoded, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.u32()? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let now = r.u64()?;
    let next_node = r.u16()?;
    let n_devices = r.u32()? as usize;
    let mut devices = Vec::new();
    for _ in 0..n_devices {
        let name = r.str()?;
        let node = NodeId(r.u16()?);
        let state = r.state()?;
        let round = r.u64()?;
        let rounds_passed = r.u64()?;
        let consecutive_failures = r.u32()?;
        let consecutive_value_failures = r.u32()?;
        let consecutive_restarts = r.u32()?;
        let next_action_at = r.flag("next_action_at")?.then(|| r.u64()).transpose()?;
        let outstanding = if r.flag("outstanding")? {
            let o_round = r.u64()?;
            let deadline = r.u64()?;
            let started_at = r.u64()?;
            let expected = if r.flag("expected")? {
                let mut words = [0u32; 8];
                for w in &mut words {
                    *w = r.u32()?;
                }
                Some(words)
            } else {
                None
            };
            let n_ch = r.u32()? as usize;
            let mut challenges = Vec::new();
            for _ in 0..n_ch {
                let mut c = [0u8; 16];
                c.copy_from_slice(r.bytes(16)?);
                challenges.push(c);
            }
            Some(Outstanding {
                round: o_round,
                challenges,
                expected,
                deadline,
                started_at,
            })
        } else {
            None
        };
        let calibration = if r.flag("calibration")? {
            Some(Calibration {
                t_avg: r.f64()?,
                sigma: r.f64()?,
                k_sigma: r.f64()?,
                runs: r.u64()? as usize,
            })
        } else {
            None
        };
        let session_key = r
            .flag("session_key")?
            .then(|| r.fixed::<16>())
            .transpose()?;
        let evidence = if r.flag("evidence")? {
            let len = r.u32()? as usize;
            let blob = r.bytes(len)?;
            let mut cr = sage_crypto::canon::Reader::new(blob);
            let records = decode_records(&mut cr)
                .and_then(|recs| cr.finish().map(|_| recs))
                .map_err(|_| SnapshotError::BadEvidence(name.clone()))?;
            Some(records)
        } else {
            None
        };
        let last_attested = r.flag("last_attested")?.then(|| r.u64()).transpose()?;
        let freshness = r.freshness()?;
        devices.push(DeviceRecord {
            name,
            node,
            state,
            round,
            rounds_passed,
            consecutive_failures,
            consecutive_value_failures,
            consecutive_restarts,
            next_action_at,
            outstanding,
            calibration,
            session_key,
            evidence,
            last_attested,
            freshness,
        });
    }
    let next_seal_at = r.flag("next_seal_at")?.then(|| r.u64()).transpose()?;
    let n_epochs = r.u32()? as usize;
    let mut sealed_epochs = Vec::new();
    for _ in 0..n_epochs {
        let index = r.u64()?;
        let at = r.u64()?;
        let root = r.fixed::<32>()?;
        let n_leaves = r.u32()? as usize;
        let mut leaves = Vec::new();
        for _ in 0..n_leaves {
            leaves.push(EpochLeaf {
                device: r.str()?,
                head: r.fixed::<32>()?,
                seq: r.u64()?,
            });
        }
        sealed_epochs.push(SealedEpoch {
            index,
            at,
            root,
            leaves,
        });
    }
    let n_events = r.u32()? as usize;
    let mut events = Vec::new();
    for _ in 0..n_events {
        let at = r.u64()?;
        let device = r.str()?;
        let tag = r.u8()?;
        let kind = match tag {
            0 => EventKind::Joined,
            1 => EventKind::CalibrationFailed,
            2 => EventKind::EstablishFailed,
            3 => EventKind::StateChanged {
                from: r.state()?,
                to: r.state()?,
            },
            4 => EventKind::RoundStarted { round: r.u64()? },
            5 => EventKind::RoundPassed {
                round: r.u64()?,
                measured: r.u64()?,
            },
            6 => EventKind::RoundFailed {
                round: r.u64()?,
                reason: r.reason()?,
            },
            7 => EventKind::Restarted { round: r.u64()? },
            8 => EventKind::LateResponse { round: r.u64()? },
            9 => EventKind::Left,
            10 => EventKind::FreshnessChanged {
                from: r.freshness()?,
                to: r.freshness()?,
            },
            11 => EventKind::EpochSealed {
                epoch: r.u64()?,
                root: r.fixed::<32>()?,
            },
            12 => EventKind::LinkDown,
            13 => EventKind::LinkResumed,
            14 => EventKind::SpotCheckSkipped { epoch: r.u64()? },
            15 => EventKind::QuorumDisputed {
                round: r.u64()?,
                accepts: r.u16()?,
                rejects: r.u16()?,
            },
            16 => EventKind::VerifierSuspected {
                verifier: r.u16()?,
                round: r.u64()?,
            },
            value => {
                return Err(SnapshotError::BadTag {
                    field: "event kind",
                    value,
                })
            }
        };
        events.push(Event { at, device, kind });
    }
    let counters = Counters {
        joins: r.u64()?,
        leaves: r.u64()?,
        rounds_started: r.u64()?,
        rounds_passed: r.u64()?,
        value_rejects: r.u64()?,
        timing_rejects: r.u64()?,
        timeouts: r.u64()?,
        restarts: r.u64()?,
        late_responses: r.u64()?,
        quarantines: r.u64()?,
        calibration_failures: r.u64()?,
        freshness_transitions: r.u64()?,
        epochs_sealed: r.u64()?,
        link_downs: r.u64()?,
        link_resumes: r.u64()?,
        spotcheck_skips: r.u64()?,
        quorum_disputes: r.u64()?,
        verifier_suspects: r.u64()?,
        relay_rejects: r.u64()?,
    };
    let events_dropped = r.u64()?;
    let quorum = if r.flag("quorum")? {
        let n = r.u16()? as usize;
        let rounds = r.u64()?;
        let disputes = r.u64()?;
        let mut replicas = Vec::with_capacity(n);
        for _ in 0..n {
            let value = r.u8()?;
            let behavior = VerifierBehavior::from_tag(value).ok_or(SnapshotError::BadTag {
                field: "verifier behavior",
                value,
            })?;
            let suspected = r.flag("verifier suspected")?;
            let dissents = r.u64()?;
            let view = r.fixed::<32>()?;
            replicas.push(ReplicaRecord {
                behavior,
                suspected,
                dissents,
                view,
            });
        }
        Some(QuorumRecord {
            rounds,
            disputes,
            replicas,
        })
    } else {
        None
    };
    if r.pos != bytes.len() {
        return Err(SnapshotError::TrailingBytes);
    }
    Ok(Decoded {
        now,
        next_node,
        devices,
        next_seal_at,
        sealed_epochs,
        events,
        counters,
        events_dropped,
        quorum,
    })
}

pub(crate) fn restore<T: Transport>(
    cfg: ServiceConfig,
    group: DhGroup,
    net: T,
    bytes: &[u8],
    endpoints: Vec<Endpoint>,
) -> Result<AttestationService<T>, SnapshotError> {
    let decoded = decode(bytes)?;
    // Re-marry scheduler records with surviving endpoints by device
    // name. Every record needs its endpoint and vice versa — a partial
    // fleet is a different deployment, not a restart.
    let mut endpoint_pool: Vec<Option<Endpoint>> = endpoints.into_iter().map(Some).collect();
    let mut devices = Vec::with_capacity(decoded.devices.len());
    for rec in decoded.devices {
        let pos = endpoint_pool
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.node.member.name == rec.name))
            .ok_or_else(|| SnapshotError::MissingEndpoint(rec.name.clone()))?;
        let mut ep = endpoint_pool[pos]
            .take()
            .ok_or_else(|| SnapshotError::MissingEndpoint(rec.name.clone()))?;
        // The scheduler's view is authoritative for addressing and
        // calibration (the latter mirrors the enclave's sealed copy).
        ep.node.id = rec.node;
        if let Some(c) = rec.calibration {
            ep.verifier.set_calibration(c);
        }
        // The evidence chain is rebuilt from its records and re-verified
        // link by link — a snapshot whose records do not re-hash to the
        // recorded structure is rejected, and the restored head is
        // byte-identical to the pre-crash head by construction.
        let evidence = match (&rec.session_key, rec.evidence) {
            (Some(sk), Some(records)) => Some(
                EvidenceChain::restore(&rec.name, derive_evidence_key(sk), records)
                    .map_err(|_| SnapshotError::BadEvidence(rec.name.clone()))?,
            ),
            (None, Some(_)) => return Err(SnapshotError::BadEvidence(rec.name.clone())),
            _ => None,
        };
        devices.push(ManagedDevice {
            node: ep.node,
            verifier: ep.verifier,
            state: rec.state,
            round: rec.round,
            rounds_passed: rec.rounds_passed,
            consecutive_failures: rec.consecutive_failures,
            consecutive_value_failures: rec.consecutive_value_failures,
            consecutive_restarts: rec.consecutive_restarts,
            outstanding: rec.outstanding,
            next_action_at: rec.next_action_at,
            session_key: rec.session_key,
            evidence,
            last_attested: rec.last_attested,
            freshness: rec.freshness,
            // Derived from `last_attested` by `rebuild_schedule` below;
            // never snapshotted.
            next_fresh_at: None,
            // Link state is runtime-only: a restored service starts
            // optimistic and the transport's first events correct it.
            link_up: true,
        });
    }
    if let Some(extra) = endpoint_pool.into_iter().flatten().next() {
        return Err(SnapshotError::UnknownDevice(extra.node.member.name.clone()));
    }
    // Every scheduling structure below `devices` — roster order, the
    // node→slot routing index, the timer wheel, worker scratch — is
    // derived state: it is rebuilt from the durable per-device fields
    // rather than snapshotted, so the restored wheel is exactly the
    // wheel a crash-free run would hold at `now`.
    let index = ShardIndex::new(cfg.shards);
    let worker_pool = (cfg.workers > 0).then(|| ReplayPool::new(cfg.workers));
    let log = EventLog::restore_parts(
        decoded.events,
        decoded.counters,
        decoded.events_dropped,
        cfg.event_capacity,
    );
    // The quorum rebuilds from the snapshot's replica count (vote keys
    // re-derive from the configured seed) and then re-imposes each
    // replica's durable state — behavior, suspect flag, dissent count,
    // and evidence-view digest — so a restored set is indistinguishable
    // from one that never stopped.
    let quorum = decoded.quorum.map(|q| {
        let mut set = VerifierSet::with_size(q.replicas.len() as u16, cfg.quorum.seed);
        set.rounds = q.rounds;
        set.disputes = q.disputes;
        for (i, rep) in q.replicas.into_iter().enumerate() {
            set.restore_replica(i, rep.behavior, rep.suspected, rep.dissents, rep.view);
        }
        set
    });
    let mut svc = AttestationService {
        cfg,
        group,
        net,
        now: decoded.now,
        devices,
        log,
        next_node: decoded.next_node,
        registry: None,
        prefill_wall: core::time::Duration::ZERO,
        sealed_epochs: decoded.sealed_epochs,
        next_seal_at: decoded.next_seal_at,
        timers: TimerWheel::new(),
        index,
        roster: Vec::new(),
        roster_pos: Vec::new(),
        work_of: Vec::new(),
        pool: worker_pool,
        timer_scratch: Vec::new(),
        quorum,
    };
    svc.rebuild_schedule();
    Ok(svc)
}

impl<T: Transport> AttestationService<T> {
    /// Serializes the control plane's scheduler state — virtual clock,
    /// per-device lifecycle and backoff, outstanding rounds, verifier
    /// calibrations, and the full event log — into a versioned binary
    /// snapshot. Device endpoints (sessions, agents, transport) are NOT
    /// in the snapshot; they survive the crash and are recovered via
    /// [`AttestationService::into_endpoints`].
    pub fn snapshot(&self) -> Vec<u8> {
        encode(self)
    }

    /// Consumes the service, surrendering the parts that survive a
    /// control-plane crash: the transport and each device's
    /// node + verifier pair.
    pub fn into_endpoints(self) -> (T, Vec<Endpoint>) {
        let endpoints = self
            .devices
            .into_iter()
            .map(|d| Endpoint {
                node: d.node,
                verifier: d.verifier,
            })
            .collect();
        (self.net, endpoints)
    }

    /// Rebuilds a service from a [`AttestationService::snapshot`] plus
    /// the surviving endpoints. Endpoints are matched to snapshot
    /// records by device name; every record must find its endpoint and
    /// no endpoint may be left over. The restored service resumes
    /// mid-schedule: with the same transport state, its subsequent event
    /// history is bit-identical to a run that never crashed.
    pub fn restore(
        cfg: ServiceConfig,
        group: DhGroup,
        net: T,
        bytes: &[u8],
        endpoints: Vec<Endpoint>,
    ) -> Result<AttestationService<T>, SnapshotError> {
        restore(cfg, group, net, bytes, endpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_and_tampered_snapshots_are_typed_errors() {
        assert_eq!(decode(&[]).err(), Some(SnapshotError::Truncated));
        let mut bogus = Vec::new();
        put_u32(&mut bogus, 0xDEAD_BEEF);
        put_u16(&mut bogus, VERSION);
        assert_eq!(decode(&bogus).err(), Some(SnapshotError::BadMagic));
        let mut vers = Vec::new();
        put_u32(&mut vers, MAGIC);
        put_u16(&mut vers, 99);
        assert_eq!(decode(&vers).err(), Some(SnapshotError::BadVersion(99)));
    }

    #[test]
    fn empty_service_round_trips() {
        let mut out = Vec::new();
        put_u32(&mut out, MAGIC);
        put_u16(&mut out, VERSION);
        put_u64(&mut out, 1234);
        put_u16(&mut out, 7);
        put_u32(&mut out, 0); // devices
        out.push(0); // next_seal_at
        put_u32(&mut out, 0); // sealed epochs
        put_u32(&mut out, 0); // events
        put_counters(&mut out, &Counters::default());
        put_u64(&mut out, 0); // events_dropped
        out.push(0); // quorum
        let d = decode(&out).unwrap();
        assert_eq!(d.now, 1234);
        assert_eq!(d.next_node, 7);
        assert!(d.devices.is_empty());
        assert!(d.events.is_empty());
        assert_eq!(d.counters, Counters::default());
        assert_eq!(d.events_dropped, 0);
        // Trailing garbage is rejected, not ignored.
        out.push(0);
        assert_eq!(decode(&out).err(), Some(SnapshotError::TrailingBytes));
    }
}
