//! Fleet attestation control plane (the service layer above the SAGE
//! protocol core).
//!
//! The paper's protocol (§3.2, §7.2, §8) assumes a verifier that
//! *continuously maintains* roots of trust across a heterogeneous GPU
//! fleet. The protocol core (`sage`) gives one-shot primitives; this
//! crate adds the long-running layer production GPU-validation systems
//! are built from:
//!
//! - [`wire`] — a framed, versioned codec for verifier↔agent SAKE
//!   messages, secure-channel [`sage::channel::Wire`] data, and the
//!   service's own challenge/response frames;
//! - [`net`] — the [`net::Transport`] trait plus [`net::SimNet`], a
//!   seeded virtual-clock network with latency, jitter, drop and
//!   duplication, and targeted per-link fault injection;
//! - [`node`] — the device-side endpoint answering re-attestation
//!   challenges (with a post-enrollment compromise knob for tests);
//! - [`policy`] — quarantine budget, timing-restart allowance (the
//!   paper's 0.5% false-positive rule) and exponential backoff;
//! - [`events`] — the structured event log and counters, exported as
//!   JSON;
//! - [`quorum`] — N verifier replicas voting on every verdict under a
//!   ⌈2N/3⌉ acceptance rule, with dissent flagged and sealed into the
//!   evidence chain, plus the relay/topology detector;
//! - [`sampling`] — seeded spot-check plans attesting a coverage-`c`
//!   sample of the fleet per epoch, with the closed-form
//!   `P(detect within k epochs) = 1 − (1 − c)^k` detection model;
//! - [`service`] — [`service::AttestationService`]: the per-device
//!   lifecycle state machine (`Enrolled → Attesting → Trusted →
//!   Degraded → Quarantined/Revoked`), deadline-driven re-attestation
//!   scheduling, and most-powerful-first roster maintenance across
//!   join/leave;
//! - [`snapshot`] — crash-safe recovery: a versioned binary snapshot of
//!   the scheduler state plus [`snapshot::Endpoint`] hand-back, so a
//!   restarted control plane resumes mid-schedule with a bit-identical
//!   subsequent event history.
//!
//! Everything is deterministic: one seed fixes the network, the device
//! timing and therefore the entire fleet history, which is what lets the
//! integration tests (`tests/service_fleet.rs` at the workspace root)
//! assert exact lifecycle outcomes under fault injection, and what makes
//! `svcperf` runs reproducible.
//!
//! See DESIGN.md §5 for the architecture and EXPERIMENTS.md for the
//! walkthrough (`examples/attestation_service.rs`).

pub mod clock;
pub mod events;
pub mod net;
pub mod node;
pub mod policy;
pub mod proxy;
pub mod quorum;
pub mod sampling;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod tcp;
pub mod wheel;
pub mod wire;

pub use clock::{ClockDriver, Pump, RealTransport};
pub use events::{Counters, Event, EventKind, EventLog, FailReason, LatencyPercentiles};
pub use net::{
    Envelope, Fault, LinkEvent, LinkProfile, NetStats, NodeId, SimNet, SplitMix64, Transport,
};
pub use node::DeviceNode;
pub use policy::{seeded_jitter, Policy};
pub use proxy::{ChaosProfile, ChaosProxy, ProxyStats};
pub use quorum::{
    quorum_threshold, relay_wire_excess, QuorumConfig, QuorumDecision, VerifierBehavior,
    VerifierReplica, VerifierSet,
};
pub use sampling::{
    covers, detect_probability_per_mille, epochs_to_detect, SamplingConfig, SpotCheckPlan,
};
pub use service::{
    AttestationService, DeviceHealth, DeviceState, DeviceStatus, SealedEpoch, ServiceConfig,
    VERIFIER_NODE,
};
pub use shard::{FxBuildHasher, FxHashMap, ShardIndex};
pub use snapshot::{Endpoint, SnapshotError};
pub use tcp::{
    Bind, DeviceLink, DeviceLinkConfig, DeviceLinkReport, FrameStream, LinkConfig, StreamError,
    TcpTransport, TransportStats,
};
pub use wheel::TimerWheel;
pub use wire::{CodecError, Frame};
