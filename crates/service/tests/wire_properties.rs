//! Property-based wire-codec checks: arbitrary byte strings never panic
//! the decoder, and every representable frame round-trips through
//! encode → decode unchanged. The always-on seeded twin of this suite
//! lives in `wire_fuzz.rs`; this file adds proptest's shrinking on top.

// Entire suite gated: `proptest` is not vendored in this dependency-free
// tree. Build with `--features proptest` after re-adding the dev-dependency
// locally to run it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use sage::channel::Wire;
use sage::sake::SakeMessage;
use sage_evidence::StageVerdict;
use sage_service::wire::{decode, encode};
use sage_service::Frame;

fn arb_verdict() -> impl Strategy<Value = StageVerdict> {
    prop_oneof![
        Just(StageVerdict::Pass),
        Just(StageVerdict::WrongValue),
        Just(StageVerdict::TooSlow),
        Just(StageVerdict::Timeout),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z0-9-]{0,24}"
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any::<[u8; 32]>().prop_map(|v2| Frame::Sake(SakeMessage::Challenge { v2 })),
        (any::<[u8; 32]>(), any::<[u8; 16]>())
            .prop_map(|(w2, mac)| Frame::Sake(SakeMessage::Commit { w2, mac })),
        any::<[u8; 32]>().prop_map(|v1| Frame::Sake(SakeMessage::RevealV1 { v1 })),
        (
            any::<[u8; 32]>(),
            prop::collection::vec(any::<u8>(), 0..64),
            any::<[u8; 16]>()
        )
            .prop_map(|(w1, k, mac_k)| Frame::Sake(SakeMessage::DeviceReveal1 {
                w1,
                k,
                mac_k
            })),
        prop::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v0| Frame::Sake(SakeMessage::RevealV0 { v0 })),
        any::<[u8; 32]>().prop_map(|w0| Frame::Sake(SakeMessage::DeviceReveal0 { w0 })),
        (
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..128),
            any::<bool>(),
            any::<[u8; 16]>()
        )
            .prop_map(|(seq, addr, body, confidential, mac)| Frame::Channel(Wire {
                seq,
                addr,
                body,
                confidential,
                mac,
            })),
        (any::<u64>(), prop::collection::vec(any::<[u8; 16]>(), 0..8))
            .prop_map(|(round, challenges)| Frame::Challenge { round, challenges }),
        (any::<u64>(), any::<[u32; 8]>(), any::<u64>()).prop_map(
            |(round, checksum, measured_cycles)| Frame::Response {
                round,
                checksum,
                measured_cycles,
            }
        ),
        (
            any::<u16>(),
            arb_name(),
            any::<u64>(),
            arb_verdict(),
            any::<[u8; 16]>()
        )
            .prop_map(|(verifier, device, round, vote, mac)| Frame::QuorumVote {
                verifier,
                device,
                round,
                vote,
                mac,
            }),
        (
            any::<u64>(),
            0u32..=1000,
            any::<u64>(),
            prop::collection::vec(arb_name(), 0..6)
        )
            .prop_map(
                |(epoch, coverage_per_mille, seed, selected)| Frame::SamplingPlan {
                    epoch,
                    coverage_per_mille,
                    seed,
                    selected,
                }
            ),
    ]
}

proptest! {
    #[test]
    fn decode_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes); // must return, never panic
    }

    #[test]
    fn frames_round_trip(frame in arb_frame()) {
        prop_assert_eq!(decode(&encode(&frame)).as_ref(), Ok(&frame));
    }

    #[test]
    fn mutated_encodings_stay_total(
        frame in arb_frame(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut buf = encode(&frame);
        if !buf.is_empty() {
            let i = idx.index(buf.len());
            buf[i] ^= 1 << bit;
        }
        if let Ok(reframe) = decode(&buf) {
            prop_assert_eq!(decode(&encode(&reframe)).as_ref(), Ok(&reframe));
        }
    }

    #[test]
    fn vote_tag_single_bit_mutations_rejected(
        verifier in any::<u16>(),
        device in arb_name(),
        round in any::<u64>(),
        vote in arb_verdict(),
        mac in any::<[u8; 16]>(),
        bit in 0u8..8,
    ) {
        let frame = Frame::QuorumVote { verifier, device: device.clone(), round, vote, mac };
        let mut buf = encode(&frame);
        // header (8) + verifier (2) + name length prefix (2) + name +
        // round (8) = the self-checking vote byte's offset.
        let vote_off = 8 + 2 + 2 + device.len() + 8;
        buf[vote_off] ^= 1 << bit;
        prop_assert!(decode(&buf).is_err());
    }
}
