//! Property-based wire-codec checks: arbitrary byte strings never panic
//! the decoder, and every representable frame round-trips through
//! encode → decode unchanged. The always-on seeded twin of this suite
//! lives in `wire_fuzz.rs`; this file adds proptest's shrinking on top.

// Entire suite gated: `proptest` is not vendored in this dependency-free
// tree. Build with `--features proptest` after re-adding the dev-dependency
// locally to run it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use sage::channel::Wire;
use sage::sake::SakeMessage;
use sage_service::wire::{decode, encode};
use sage_service::Frame;

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any::<[u8; 32]>().prop_map(|v2| Frame::Sake(SakeMessage::Challenge { v2 })),
        (any::<[u8; 32]>(), any::<[u8; 16]>())
            .prop_map(|(w2, mac)| Frame::Sake(SakeMessage::Commit { w2, mac })),
        any::<[u8; 32]>().prop_map(|v1| Frame::Sake(SakeMessage::RevealV1 { v1 })),
        (
            any::<[u8; 32]>(),
            prop::collection::vec(any::<u8>(), 0..64),
            any::<[u8; 16]>()
        )
            .prop_map(|(w1, k, mac_k)| Frame::Sake(SakeMessage::DeviceReveal1 {
                w1,
                k,
                mac_k
            })),
        prop::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v0| Frame::Sake(SakeMessage::RevealV0 { v0 })),
        any::<[u8; 32]>().prop_map(|w0| Frame::Sake(SakeMessage::DeviceReveal0 { w0 })),
        (
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..128),
            any::<bool>(),
            any::<[u8; 16]>()
        )
            .prop_map(|(seq, addr, body, confidential, mac)| Frame::Channel(Wire {
                seq,
                addr,
                body,
                confidential,
                mac,
            })),
        (any::<u64>(), prop::collection::vec(any::<[u8; 16]>(), 0..8))
            .prop_map(|(round, challenges)| Frame::Challenge { round, challenges }),
        (any::<u64>(), any::<[u32; 8]>(), any::<u64>()).prop_map(
            |(round, checksum, measured_cycles)| Frame::Response {
                round,
                checksum,
                measured_cycles,
            }
        ),
    ]
}

proptest! {
    #[test]
    fn decode_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes); // must return, never panic
    }

    #[test]
    fn frames_round_trip(frame in arb_frame()) {
        prop_assert_eq!(decode(&encode(&frame)).as_ref(), Ok(&frame));
    }

    #[test]
    fn mutated_encodings_stay_total(
        frame in arb_frame(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut buf = encode(&frame);
        if !buf.is_empty() {
            let i = idx.index(buf.len());
            buf[i] ^= 1 << bit;
        }
        if let Ok(reframe) = decode(&buf) {
            prop_assert_eq!(decode(&encode(&reframe)).as_ref(), Ok(&reframe));
        }
    }
}
