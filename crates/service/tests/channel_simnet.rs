//! `SecureChannel` under the `SimNet` transport: replayed, reordered,
//! duplicated and addr-retagged `Wire` frames must all be rejected
//! without desyncing the channel's sequence counters — after every
//! rejection, the next legitimate in-order frame still opens.

use sage::channel::{Role, SecureChannel, Wire};
use sage::SageError;
use sage_service::wire::{decode, encode, Frame};
use sage_service::{Envelope, Fault, LinkProfile, NodeId, SimNet, Transport};

const HOST: NodeId = NodeId(0);
const DEV: NodeId = NodeId(1);

fn channel_pair() -> (SecureChannel, SecureChannel) {
    let sk = [0x5A; 16];
    (
        SecureChannel::new(sk, Role::Host),
        SecureChannel::new(sk, Role::Device),
    )
}

fn send_wire(net: &mut SimNet, now: u64, w: &Wire) {
    net.send(
        now,
        Envelope {
            src: HOST,
            dst: DEV,
            bytes: encode(&Frame::Channel(w.clone())),
        },
    );
}

/// Drains every frame that reached the device by `now`, decoded.
fn arrivals(net: &mut SimNet, now: u64) -> Vec<Wire> {
    let mut out = Vec::new();
    while let Some(env) = net.poll(now, DEV) {
        match decode(&env.bytes) {
            Ok(Frame::Channel(w)) => out.push(w),
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    out
}

#[test]
fn duplicated_frames_rejected_without_desync() {
    // Every frame is duplicated by the network profile.
    let mut net = SimNet::new(
        11,
        LinkProfile {
            latency: 10,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 1000,
        },
    );
    let (mut host, mut dev) = channel_pair();
    for (i, payload) in [b"first", b"again", b"third"].iter().enumerate() {
        let w = host.seal(0x1000, *payload, true);
        send_wire(&mut net, i as u64 * 100, &w);
    }

    let got = arrivals(&mut net, 10_000);
    assert_eq!(got.len(), 6, "every frame should arrive twice");
    let mut opened = Vec::new();
    let mut rejected = 0;
    for w in &got {
        match dev.open(w) {
            Ok(p) => opened.push(p),
            Err(SageError::ChannelTamper(_)) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    // Each original opens once; each duplicate is a replay and is
    // rejected — and the rejection does not desync the stream, because
    // the following originals still opened.
    assert_eq!(
        opened,
        vec![b"first".to_vec(), b"again".to_vec(), b"third".to_vec()]
    );
    assert_eq!(rejected, 3);
}

#[test]
fn replayed_frame_rejected_then_stream_continues() {
    let mut net = SimNet::new(
        12,
        LinkProfile {
            latency: 10,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let (mut host, mut dev) = channel_pair();
    let w0 = host.seal(0, b"zero", false);
    send_wire(&mut net, 0, &w0);
    // The adversary records w0 off the bus and replays it later.
    send_wire(&mut net, 50, &w0);
    let w1 = host.seal(0, b"one", false);
    send_wire(&mut net, 100, &w1);

    let got = arrivals(&mut net, 1_000);
    assert_eq!(got.len(), 3);
    assert_eq!(dev.open(&got[0]).unwrap(), b"zero");
    assert!(matches!(
        dev.open(&got[1]),
        Err(SageError::ChannelTamper(_))
    ));
    // Sequence counter did not advance on the replay: w1 still opens.
    assert_eq!(dev.open(&got[2]).unwrap(), b"one");
}

#[test]
fn reordered_frames_rejected_then_recovered_in_order() {
    let mut net = SimNet::new(
        13,
        LinkProfile {
            latency: 10,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    // Delay the first frame so the second overtakes it in flight.
    net.inject(Fault::DelayNext {
        src: HOST,
        dst: DEV,
        extra: 500,
        remaining: 1,
    });
    let (mut host, mut dev) = channel_pair();
    send_wire(&mut net, 0, &host.seal(0, b"zero", true));
    send_wire(&mut net, 0, &host.seal(0, b"one", true));

    let got = arrivals(&mut net, 10_000);
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].seq, 1, "frame 1 overtook frame 0");
    // Out-of-order arrival is rejected...
    assert!(matches!(
        dev.open(&got[0]),
        Err(SageError::ChannelTamper(_))
    ));
    // ...without consuming a sequence number: the receiver can hold the
    // overtaking frame, accept its predecessor, then retry it.
    assert_eq!(dev.open(&got[1]).unwrap(), b"zero");
    assert_eq!(dev.open(&got[0]).unwrap(), b"one");
}

#[test]
fn addr_retagged_frame_rejected_then_original_opens() {
    let mut net = SimNet::new(
        14,
        LinkProfile {
            latency: 10,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let (mut host, mut dev) = channel_pair();
    let w = host.seal(0x1000, b"weights", true);
    // The untrusted runtime retags the DMA destination in flight.
    let mut retagged = w.clone();
    retagged.addr = 0x6666_0000;
    send_wire(&mut net, 0, &retagged);
    send_wire(&mut net, 100, &w);

    let got = arrivals(&mut net, 1_000);
    assert_eq!(got.len(), 2);
    assert!(matches!(
        dev.open(&got[0]),
        Err(SageError::ChannelTamper(_))
    ));
    assert_eq!(dev.open(&got[1]).unwrap(), b"weights");
}

#[test]
fn codec_survives_channel_traffic_bit_exactly() {
    // The codec must be transparent: open() on a decoded frame behaves
    // exactly like open() on the original.
    let (mut host, mut dev) = channel_pair();
    for i in 0..4u8 {
        let w = host.seal(u32::from(i), &[i; 24], i % 2 == 0);
        let bytes = encode(&Frame::Channel(w.clone()));
        let Ok(Frame::Channel(decoded)) = decode(&bytes) else {
            panic!("decode failed");
        };
        assert_eq!(decoded, w);
        assert_eq!(dev.open(&decoded).unwrap(), vec![i; 24]);
    }
}
