//! Seeded fuzz for the wire codec (and the snapshot codec riding along):
//! the verifier-side decoders sit directly on the adversarial link, so
//! no byte string — random, structured-random, or a mutation of a valid
//! frame — may ever panic them, and every valid frame must round-trip
//! bit for bit.
//!
//! This suite is dependency-free (SplitMix64 is the generator) and runs
//! in every `cargo test`. A proptest-shaped twin lives in
//! `wire_properties.rs` behind the `proptest` feature gate.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use sage::channel::Wire;
use sage::sake::SakeMessage;
use sage_crypto::DhGroup;
use sage_evidence::StageVerdict;
use sage_service::tcp::{Conn, FrameStream, StreamError, MAX_FRAME_BYTES};
use sage_service::wire::{decode, encode};
use sage_service::{AttestationService, Frame, LinkProfile, ServiceConfig, SimNet, SplitMix64};

fn arr16(rng: &mut SplitMix64) -> [u8; 16] {
    let mut a = [0u8; 16];
    for b in &mut a {
        *b = rng.next_u64() as u8;
    }
    a
}

fn arr32(rng: &mut SplitMix64) -> [u8; 32] {
    let mut a = [0u8; 32];
    for b in &mut a {
        *b = rng.next_u64() as u8;
    }
    a
}

fn bytes(rng: &mut SplitMix64, max_len: u64) -> Vec<u8> {
    (0..rng.below(max_len))
        .map(|_| rng.next_u64() as u8)
        .collect()
}

/// A random device name (the codec requires valid UTF-8).
fn ascii_name(rng: &mut SplitMix64, max_len: u64) -> String {
    (0..rng.below(max_len))
        .map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8))
        .collect()
}

fn verdict(rng: &mut SplitMix64) -> StageVerdict {
    match rng.below(4) {
        0 => StageVerdict::Pass,
        1 => StageVerdict::WrongValue,
        2 => StageVerdict::TooSlow,
        _ => StageVerdict::Timeout,
    }
}

/// A random valid frame covering every variant.
fn random_frame(rng: &mut SplitMix64) -> Frame {
    match rng.below(11) {
        0 => Frame::Sake(SakeMessage::Challenge { v2: arr32(rng) }),
        1 => Frame::Sake(SakeMessage::Commit {
            w2: arr32(rng),
            mac: arr16(rng),
        }),
        2 => Frame::Sake(SakeMessage::RevealV1 { v1: arr32(rng) }),
        3 => Frame::Sake(SakeMessage::DeviceReveal1 {
            w1: arr32(rng),
            k: bytes(rng, 64),
            mac_k: arr16(rng),
        }),
        4 => Frame::Sake(SakeMessage::RevealV0 { v0: bytes(rng, 64) }),
        5 => Frame::Sake(SakeMessage::DeviceReveal0 { w0: arr32(rng) }),
        6 => Frame::Channel(Wire {
            seq: rng.next_u64(),
            addr: rng.next_u64() as u32,
            body: bytes(rng, 128),
            confidential: rng.below(2) == 1,
            mac: arr16(rng),
        }),
        7 => Frame::Challenge {
            round: rng.next_u64(),
            challenges: (0..rng.below(5)).map(|_| arr16(rng)).collect(),
        },
        8 => {
            let mut checksum = [0u32; 8];
            for w in &mut checksum {
                *w = rng.next_u64() as u32;
            }
            Frame::Response {
                round: rng.next_u64(),
                checksum,
                measured_cycles: rng.next_u64(),
            }
        }
        9 => Frame::QuorumVote {
            verifier: rng.next_u64() as u16,
            device: ascii_name(rng, 24),
            round: rng.next_u64(),
            vote: verdict(rng),
            mac: arr16(rng),
        },
        _ => Frame::SamplingPlan {
            epoch: rng.next_u64(),
            coverage_per_mille: (rng.next_u64() % 1001) as u32,
            seed: rng.next_u64(),
            selected: (0..rng.below(6)).map(|_| ascii_name(rng, 16)).collect(),
        },
    }
}

#[test]
fn every_random_frame_round_trips() {
    let mut rng = SplitMix64::new(0xF0CC_ACC1A);
    for _ in 0..5_000 {
        let frame = random_frame(&mut rng);
        let encoded = encode(&frame);
        assert_eq!(
            decode(&encoded).as_ref(),
            Ok(&frame),
            "round-trip failed for {frame:?}"
        );
    }
}

#[test]
fn decode_never_panics_on_random_bytes() {
    let mut rng = SplitMix64::new(0xDEC0_DE00);
    for _ in 0..20_000 {
        let buf = bytes(&mut rng, 200);
        let _ = decode(&buf); // any Result is fine; a panic is the bug
    }
}

#[test]
fn decode_never_panics_on_structured_garbage() {
    // Valid-looking headers steer the fuzz past the magic/version checks
    // into the per-kind payload parsers.
    let mut rng = SplitMix64::new(0x57A6_E001);
    let kinds = [
        0x00u8, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x10, 0x11, 0x20, 0x21, 0x22, 0x40, 0x41,
        0xFF,
    ];
    for _ in 0..20_000 {
        let mut buf = Vec::new();
        buf.extend_from_slice(&sage_service::wire::MAGIC.to_le_bytes());
        buf.push(if rng.below(10) == 0 {
            rng.next_u64() as u8
        } else {
            sage_service::wire::VERSION
        });
        buf.push(kinds[rng.below(kinds.len() as u64) as usize]);
        let payload = bytes(&mut rng, 96);
        // Mostly truthful length fields (to reach the payload parsers),
        // sometimes lying ones (to exercise the length checks).
        let len = if rng.below(4) == 0 {
            rng.next_u64() as u32
        } else {
            payload.len() as u32
        };
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&payload);
        let _ = decode(&buf);
    }
}

#[test]
fn decode_never_panics_on_mutated_valid_frames() {
    let mut rng = SplitMix64::new(0xBADC_0FFE);
    for _ in 0..10_000 {
        let frame = random_frame(&mut rng);
        let mut buf = encode(&frame);
        for _ in 0..=rng.below(4) {
            match rng.below(3) {
                0 if !buf.is_empty() => {
                    // Flip a random bit.
                    let i = rng.below(buf.len() as u64) as usize;
                    buf[i] ^= 1 << rng.below(8);
                }
                1 if !buf.is_empty() => {
                    // Truncate.
                    let n = rng.below(buf.len() as u64 + 1) as usize;
                    buf.truncate(n);
                }
                _ => {
                    // Append garbage.
                    let extra = bytes(&mut rng, 16);
                    buf.extend_from_slice(&extra);
                }
            }
        }
        if let Ok(reframe) = decode(&buf) {
            // A mutation may still decode (e.g. a payload-byte flip);
            // whatever comes out must itself round-trip.
            assert_eq!(decode(&encode(&reframe)), Ok(reframe));
        }
    }
}

#[test]
fn every_single_bit_vote_tag_mutation_is_rejected() {
    // The vote byte is self-checking (verdict tag in the low nibble,
    // its complement in the high nibble), so the valid code points
    // differ pairwise by ≥ 2 bits: across random quorum-vote frames,
    // flipping ANY single bit of the vote tag must fail decode — a
    // ballot can never silently mutate into a different verdict.
    let mut rng = SplitMix64::new(0x0007_EB17);
    for _ in 0..1_000 {
        let device = ascii_name(&mut rng, 24);
        let frame = Frame::QuorumVote {
            verifier: rng.next_u64() as u16,
            device: device.clone(),
            round: rng.next_u64(),
            vote: verdict(&mut rng),
            mac: arr16(&mut rng),
        };
        let buf = encode(&frame);
        assert_eq!(decode(&buf).as_ref(), Ok(&frame));
        // header (8) + verifier (2) + name length prefix (2) + name +
        // round (8) = the vote byte's offset.
        let vote_off = 8 + 2 + 2 + device.len() + 8;
        for bit in 0..8 {
            let mut mutated = buf.clone();
            mutated[vote_off] ^= 1 << bit;
            assert!(
                decode(&mutated).is_err(),
                "bit {bit} of the vote tag mutated {frame:?} into {:?}",
                decode(&mutated)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Stream framing: the length-prefixed layer over live sockets. The same
// adversarial stance as the codec fuzz above — torn prefixes, mid-frame
// severs, interleaved partial writes, and raw garbage must produce typed
// errors or clean reassembly, never a panic or a partial-frame accept.
// ---------------------------------------------------------------------------

/// One length-prefixed wire message, as `write_frame` would emit it.
fn framed(frame: &Frame) -> Vec<u8> {
    let body = encode(frame);
    let mut msg = Vec::with_capacity(4 + body.len());
    msg.extend_from_slice(&(body.len() as u32).to_le_bytes());
    msg.extend_from_slice(&body);
    msg
}

#[test]
fn torn_interleaved_writes_reassemble_every_frame() {
    let mut rng = SplitMix64::new(0x7EA2_F00D);
    let frames: Vec<Frame> = (0..300).map(|_| random_frame(&mut rng)).collect();
    let stream_bytes: Vec<u8> = frames.iter().flat_map(framed).collect();

    let (writer_sock, reader_sock) = UnixStream::pair().unwrap();
    let mut reader = FrameStream::new(Conn::Unix(reader_sock));
    let writer = std::thread::spawn(move || {
        // Dribble the whole stream in 1..=9-byte pieces: every length
        // prefix and every frame body crosses a write boundary somewhere.
        let mut wrng = SplitMix64::new(0x0017_EA57);
        let mut sock = writer_sock;
        let mut rest = &stream_bytes[..];
        while !rest.is_empty() {
            let n = (1 + wrng.below(9) as usize).min(rest.len());
            sock.write_all(&rest[..n]).unwrap();
            sock.flush().unwrap();
            rest = &rest[n..];
        }
    });

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got = Vec::new();
    while got.len() < frames.len() {
        match reader.read_frame_deadline(deadline) {
            Ok(Some(f)) => got.push(f),
            Ok(None) => panic!("deadline with {}/{} frames", got.len(), frames.len()),
            Err(e) => panic!("typed error on valid torn stream: {e}"),
        }
    }
    assert_eq!(got, frames, "reassembled frames must match, in order");
    writer.join().unwrap();
}

#[test]
fn mid_frame_sever_is_closed_never_partial_accept() {
    let mut rng = SplitMix64::new(0x5E7E_12ED);
    for _ in 0..500 {
        let frame = random_frame(&mut rng);
        let msg = framed(&frame);
        // Cut anywhere strictly inside the message — torn prefix (1..4)
        // or torn body — including zero bytes sent.
        let cut = rng.below(msg.len() as u64) as usize;

        let (mut writer_sock, reader_sock) = UnixStream::pair().unwrap();
        let mut reader = FrameStream::new(Conn::Unix(reader_sock));
        writer_sock.write_all(&msg[..cut]).unwrap();
        drop(writer_sock); // sever

        let deadline = Instant::now() + Duration::from_secs(5);
        match reader.read_frame_deadline(deadline) {
            Err(StreamError::Closed) => {}
            Ok(Some(f)) => panic!("partial write of {frame:?} accepted as {f:?}"),
            other => panic!("expected Closed after mid-frame sever, got {other:?}"),
        }
    }
}

#[test]
fn garbage_on_live_socket_is_typed_error_never_panic() {
    let mut rng = SplitMix64::new(0x6A2B_A6E0);
    for _ in 0..500 {
        let (mut writer_sock, reader_sock) = UnixStream::pair().unwrap();
        let mut reader = FrameStream::new(Conn::Unix(reader_sock));
        // A garbage blob with a truthful stream-level length prefix:
        // framing succeeds, the codec inside must reject it.
        let blob = bytes(&mut rng, 64);
        let mut msg = (blob.len() as u32).to_le_bytes().to_vec();
        msg.extend_from_slice(&blob);
        writer_sock.write_all(&msg).unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        match reader.read_frame_deadline(deadline) {
            Err(StreamError::Codec(_)) => {} // the expected typed rejection
            Ok(Some(f)) => {
                // A random blob that happens to be a valid frame must
                // itself round-trip (same rule as the codec fuzz).
                assert_eq!(decode(&encode(&f)), Ok(f));
            }
            other => panic!("garbage produced {other:?}"),
        }
        drop(writer_sock);
    }
}

#[test]
fn oversize_prefix_is_rejected_without_buffering() {
    let mut rng = SplitMix64::new(0x0E12_51E5);
    for _ in 0..200 {
        let len = MAX_FRAME_BYTES + 1 + rng.next_u64() as u32 % 1_000_000;
        let (mut writer_sock, reader_sock) = UnixStream::pair().unwrap();
        let mut reader = FrameStream::new(Conn::Unix(reader_sock));
        writer_sock.write_all(&len.to_le_bytes()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        match reader.read_frame_deadline(deadline) {
            Err(StreamError::Oversize(l)) => assert_eq!(l, len),
            other => panic!("oversize prefix produced {other:?}"),
        }
    }
}

#[test]
fn snapshot_restore_never_panics_on_garbage() {
    let mut rng = SplitMix64::new(0x5AFE_5AFE);
    // A real snapshot to mutate, from an empty service (no endpoints to
    // hand back, so restore on the unmutated bytes succeeds trivially).
    let svc = AttestationService::new(
        ServiceConfig::default(),
        DhGroup::test_group(),
        SimNet::new(1, LinkProfile::default()),
    );
    let valid = svc.snapshot();
    for i in 0..5_000u64 {
        let mut buf = if i % 2 == 0 {
            bytes(&mut rng, 160)
        } else {
            valid.clone()
        };
        for _ in 0..=rng.below(4) {
            match rng.below(3) {
                0 if !buf.is_empty() => {
                    let i = rng.below(buf.len() as u64) as usize;
                    buf[i] ^= 1 << rng.below(8);
                }
                1 if !buf.is_empty() => {
                    let n = rng.below(buf.len() as u64 + 1) as usize;
                    buf.truncate(n);
                }
                _ => {
                    let extra = bytes(&mut rng, 16);
                    buf.extend_from_slice(&extra);
                }
            }
        }
        let net = SimNet::new(2, LinkProfile::default());
        let _ = AttestationService::restore(
            ServiceConfig::default(),
            DhGroup::test_group(),
            net,
            &buf,
            Vec::new(),
        );
    }
}
