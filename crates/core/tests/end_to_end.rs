//! End-to-end protocol flow (paper Fig. 3): install VF → calibrate →
//! attest + SAKE key establishment → user-kernel authenticity check →
//! protected data transfer → kernel execution.

use sage::{
    agent::DeviceAgent,
    channel::Role,
    kernels::{self, matmul_host},
    sake::SakeMessage,
    GpuSession, SageError, SecureChannel, Verifier,
};
use sage_crypto::{DhGroup, EntropySource};
use sage_gpu_sim::{Device, DeviceConfig};
use sage_sgx_sim::{verify_quote, SgxPlatform};
use sage_vf::VfParams;

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn setup() -> (Verifier, GpuSession, DeviceAgent, SgxPlatform) {
    let params = VfParams::test_tiny();
    let dev = Device::new(DeviceConfig::sim_tiny());
    let session = GpuSession::install(dev, &params, 0xFEED).unwrap();
    let platform = SgxPlatform::new([9u8; 16]);
    let enclave = platform.launch(b"sage-verifier-v1", &mut entropy(3));
    let verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    let agent = DeviceAgent::new(Box::new(entropy(7)));
    (verifier, session, agent, platform)
}

#[test]
fn full_protocol_happy_path() {
    let (mut verifier, mut session, mut agent, platform) = setup();

    // Phase 1: calibrate on the known-good device.
    let calibration = verifier.calibrate(&mut session, 12).unwrap();
    assert!(calibration.t_avg > 0.0);

    // Phase 2: repeated checksum verification (dynamic RoT).
    for _ in 0..3 {
        verifier.verify_once(&mut session).unwrap();
    }

    // Phase 3: SAKE key establishment.
    let outcome = verifier
        .establish_key(&mut session, &mut agent, None)
        .unwrap();
    assert_eq!(Some(outcome.session_key), agent.session_key());
    assert!(outcome.measured_cycles <= outcome.threshold_cycles);

    // Phase 4: external challenger verifies the enclave quote.
    let quote = verifier.quote_attestation(&outcome);
    assert!(verify_quote(&platform.quote_verification_key(), &quote));

    // Phase 5: user-kernel authenticity check (device-side SHA-256).
    let kernel = kernels::matmul_kernel();
    let code = kernel.encode();
    verifier
        .verify_user_kernel(&mut session, &mut agent, &code)
        .unwrap();

    // Phase 6: protected data transfer + matmul execution.
    let n = 32usize;
    let a: Vec<f32> = (0..n * n).map(|i| (i % 13) as f32 - 6.0).collect();
    let b: Vec<f32> = (0..n * n).map(|i| (i % 7) as f32 * 0.5).collect();
    let to_bytes =
        |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect() };

    let abuf = session.dev.alloc((4 * n * n) as u32).unwrap();
    let bbuf = session.dev.alloc((4 * n * n) as u32).unwrap();
    let cbuf = session.dev.alloc((4 * n * n) as u32).unwrap();

    let mut host_chan = verifier.open_channel(&outcome);
    let wire_a = host_chan.seal(abuf, &to_bytes(&a), true);
    let wire_b = host_chan.seal(bbuf, &to_bytes(&b), true);
    // The ciphertext on the bus is not the plaintext.
    assert_ne!(wire_a.body, to_bytes(&a));
    agent.receive_data(&mut session, &wire_a).unwrap();
    agent.receive_data(&mut session, &wire_b).unwrap();

    let entry = kernels::load_kernel(&mut session.dev, &kernel).unwrap();
    session
        .dev
        .run_single(
            kernels::KernelLaunch {
                entry_pc: entry,
                grid_dim: n as u32,
                block_dim: 32,
                regs_per_thread: kernels::matmul::MATMUL_REGS,
                smem_bytes: 0,
                params: vec![abuf, bbuf, cbuf, n as u32],
            }
            .into_launch(session.ctx),
        )
        .unwrap();

    // Phase 7: results come back over the authenticated channel.
    let wire_c = agent
        .send_data(&mut session, cbuf, (4 * n * n) as u32, true)
        .unwrap();
    let raw = host_chan.open(&wire_c).unwrap();
    let got: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
        .collect();
    assert_eq!(got, matmul_host(&a, &b, n));
}

#[test]
fn tampered_kernel_fails_authenticity_check() {
    let (mut verifier, mut session, mut agent, _) = setup();
    verifier.calibrate(&mut session, 6).unwrap();
    verifier
        .establish_key(&mut session, &mut agent, None)
        .unwrap();

    // The verifier expects the genuine kernel...
    let genuine = kernels::matmul_kernel().encode();
    // ...but the untrusted host placed a modified one: the measurement
    // runs over what is actually on the device path. Model: the device
    // measures tampered bytes.
    let mut tampered = genuine.clone();
    tampered[200] ^= 0x40;
    let r = [7u8; 32];
    let device_hash = agent.measure_kernel(&mut session, &r, &tampered).unwrap();
    let mut expect_input = r.to_vec();
    expect_input.extend_from_slice(&genuine);
    assert_ne!(
        device_hash.to_vec(),
        sage_crypto::sha256(&expect_input).to_vec()
    );
}

#[test]
fn mitm_on_sake_is_detected() {
    // Tamper each message in turn; every attempt must abort the protocol.
    for step in 1..=5usize {
        let (mut verifier, mut session, mut agent, _) = setup();
        verifier.calibrate(&mut session, 6).unwrap();
        let mut tap = |s: usize, msg: &mut SakeMessage| {
            if s == step {
                match msg {
                    SakeMessage::Challenge { v2 } => v2[0] ^= 1,
                    SakeMessage::Commit { w2, .. } => w2[0] ^= 1,
                    SakeMessage::RevealV1 { v1 } => v1[0] ^= 1,
                    SakeMessage::DeviceReveal1 { k, .. } => k[0] ^= 1,
                    SakeMessage::RevealV0 { v0 } => v0[0] ^= 1,
                    SakeMessage::DeviceReveal0 { w0 } => w0[0] ^= 1,
                }
            }
        };
        let result = verifier.establish_key(&mut session, &mut agent, Some(&mut tap));
        assert!(result.is_err(), "tampering step {step} went undetected");
    }
}

#[test]
fn uncalibrated_verifier_refuses() {
    let (mut verifier, mut session, _, _) = setup();
    assert!(matches!(
        verifier.verify_once(&mut session),
        Err(SageError::Protocol(_))
    ));
}

#[test]
fn channel_endpoints_must_share_the_sake_key() {
    let (mut verifier, mut session, mut agent, _) = setup();
    verifier.calibrate(&mut session, 6).unwrap();
    let outcome = verifier
        .establish_key(&mut session, &mut agent, None)
        .unwrap();
    let mut host = verifier.open_channel(&outcome);
    // A device endpoint with a different key cannot authenticate.
    let mut rogue = SecureChannel::new([0xEE; 16], Role::Device);
    let wire = host.seal(0x100, b"hello", false);
    assert!(rogue.open(&wire).is_err());
}

#[test]
fn verification_stats_accumulate() {
    let (mut verifier, mut session, _, _) = setup();
    verifier.calibrate(&mut session, 8).unwrap();
    for _ in 0..4 {
        let _ = verifier.verify_once(&mut session);
    }
    let stats = verifier.stats();
    assert_eq!(
        stats.accepted + stats.timing_rejects + stats.value_rejects,
        4
    );
}

#[test]
fn calibration_seals_and_restores_across_verifier_restarts() {
    let (mut verifier, mut session, _, _) = setup();
    assert!(!verifier.seal_calibration(), "nothing to seal yet");
    let original = verifier.calibrate(&mut session, 8).unwrap();
    assert!(verifier.seal_calibration());

    // "Restart": wipe the in-memory calibration, restore from the sealed
    // blob (bound to the enclave identity).
    verifier.set_calibration(sage::Calibration::from_samples(&[1]));
    assert!(verifier.unseal_calibration());
    let restored = *verifier.calibration().unwrap();
    assert_eq!(restored, original);
    // And verification works against the restored threshold.
    verifier.verify_once(&mut session).unwrap();
}

#[test]
fn corrupted_sealed_calibration_is_rejected() {
    let (mut verifier, mut session, _, _) = setup();
    verifier.calibrate(&mut session, 6).unwrap();
    assert!(verifier.seal_calibration());
    verifier
        .enclave
        .sealed_store_mut()
        .get_mut("calibration")
        .unwrap()[24] ^= 0x80;
    assert!(!verifier.unseal_calibration());
}
