//! The precomputed-round fast path at the verifier level: bank-backed
//! rounds verify identically to replay-online rounds, exhaustion degrades
//! transparently, and calibration runs off the bank.

use sage::{GpuSession, Verifier};
use sage_crypto::{DhGroup, EntropySource};
use sage_gpu_sim::{Device, DeviceConfig};
use sage_sgx_sim::SgxPlatform;
use sage_vf::{BankConfig, VfParams};

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn setup() -> (Verifier, GpuSession) {
    let params = VfParams::test_tiny();
    let dev = Device::new(DeviceConfig::sim_tiny());
    let session = GpuSession::install(dev, &params, 0xFEED).unwrap();
    let platform = SgxPlatform::new([9u8; 16]);
    let enclave = platform.launch(b"sage-verifier-v1", &mut entropy(3));
    let verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    (verifier, session)
}

#[test]
fn bank_rounds_verify_and_count_hits() {
    let (mut verifier, mut session) = setup();
    verifier.enable_fast_path(BankConfig {
        capacity: 8,
        workers: 0,
    });
    verifier.prefill_rounds(8);
    verifier.calibrate(&mut session, 6).unwrap();
    // Calibration drained 6 precomputed rounds; restock and verify.
    verifier.prefill_rounds(4);
    for _ in 0..3 {
        verifier.verify_once(&mut session).unwrap();
    }
    let c = verifier.bank_counters().unwrap();
    assert_eq!(c.hits, 9, "all rounds served from stock");
    assert_eq!(c.misses, 0);
    // Only the verify_once rounds pass through the accept counters;
    // calibration verifies inline.
    assert_eq!(verifier.stats().accepted, 3);
}

#[test]
fn exhausted_bank_falls_back_to_online_replay() {
    let (mut verifier, mut session) = setup();
    verifier.calibrate(&mut session, 6).unwrap();
    verifier.enable_fast_path(BankConfig {
        capacity: 2,
        workers: 0,
    });
    verifier.prefill_rounds(2);
    // Two hits, then the empty bank must degrade to online replay
    // without any round failing.
    for _ in 0..4 {
        verifier.verify_once(&mut session).unwrap();
    }
    let c = verifier.bank_counters().unwrap();
    assert_eq!(c.hits, 2);
    assert_eq!(c.misses, 2);
    assert_eq!(verifier.stats().accepted, 4);
}

#[test]
fn precomputed_expected_is_bit_exact_with_replay() {
    let (mut verifier, _session) = setup();
    verifier.enable_fast_path(BankConfig {
        capacity: 2,
        workers: 0,
    });
    verifier.prefill_rounds(2);
    let (ch, expected) = verifier.prepare_round();
    assert_eq!(expected.unwrap(), verifier.expected(&ch));
}

#[test]
fn background_workers_serve_blocking_rounds() {
    let (mut verifier, mut session) = setup();
    verifier.enable_fast_path(BankConfig {
        capacity: 2,
        workers: 1,
    });
    verifier.calibrate(&mut session, 6).unwrap();
    for _ in 0..3 {
        let (ch, expected) = verifier.prepare_round_blocking();
        let (got, measured) = session.run_checksum(&ch).unwrap();
        verifier
            .check_response_precomputed(expected.unwrap(), got, measured)
            .unwrap();
    }
    assert_eq!(verifier.stats().accepted, 3);
}

#[test]
fn without_fast_path_prepare_round_is_online() {
    let (mut verifier, mut session) = setup();
    verifier.calibrate(&mut session, 6).unwrap();
    assert!(!verifier.fast_path_enabled());
    assert!(verifier.bank_counters().is_none());
    let (ch, expected) = verifier.prepare_round();
    assert!(expected.is_none());
    assert_eq!(ch.len(), session.build().params.grid_blocks as usize);
}

#[test]
fn tampered_response_rejected_on_the_fast_path() {
    let (mut verifier, mut session) = setup();
    verifier.calibrate(&mut session, 6).unwrap();
    verifier.enable_fast_path(BankConfig {
        capacity: 1,
        workers: 0,
    });
    verifier.prefill_rounds(1);
    let (ch, expected) = verifier.prepare_round();
    let (mut got, measured) = session.run_checksum(&ch).unwrap();
    got[0] ^= 1;
    assert!(verifier
        .check_response_precomputed(expected.unwrap(), got, measured)
        .is_err());
    assert_eq!(verifier.stats().value_rejects, 1);
}

#[test]
fn poisoned_bank_stock_falls_back_to_online_replay() {
    let (mut verifier, mut session) = setup();
    verifier.calibrate(&mut session, 6).unwrap();
    verifier.enable_fast_path(BankConfig {
        capacity: 2,
        workers: 0,
    });
    verifier.prefill_rounds(2);
    // A host-memory fault flips a bit in both stocked pairs: payload
    // changes, integrity tag doesn't.
    assert!(verifier.corrupt_bank_stock(0));
    assert!(verifier.corrupt_bank_stock(1));
    // The round must discard the poisoned stock, degrade to the online
    // replay path, and still verify the honest device — the corrupted
    // expected value is never compared against anything.
    let (ch, expected) = verifier.prepare_round();
    assert!(expected.is_none(), "poisoned stock must not be issued");
    let (got, measured) = session.run_checksum(&ch).unwrap();
    verifier.check_response(&ch, got, measured).unwrap();
    // And the online expected value is bit-exact with the unpooled
    // oracle — fallback does not change verdict semantics.
    assert_eq!(
        verifier.expected(&ch),
        sage_vf::replay::expected_checksum_unpooled(session.build(), &ch)
    );
    let c = verifier.bank_counters().unwrap();
    assert_eq!(c.poisoned, 2, "both corrupted pairs recorded");
    assert_eq!(c.misses, 1, "the fallback round recorded a miss");
    assert_eq!(c.hits, 0);
    assert_eq!(verifier.stats().accepted, 1);
    assert_eq!(verifier.stats().value_rejects, 0, "no false reject");
}

#[test]
fn wrong_answer_still_rejected_after_poison_fallback() {
    let (mut verifier, mut session) = setup();
    verifier.calibrate(&mut session, 6).unwrap();
    verifier.enable_fast_path(BankConfig {
        capacity: 1,
        workers: 0,
    });
    verifier.prefill_rounds(1);
    assert!(verifier.corrupt_bank_stock(0));
    let (ch, expected) = verifier.prepare_round();
    assert!(expected.is_none());
    // A device that happens to answer with the *corrupted* expected
    // value must still be rejected: the poisoned pair is gone, the
    // verifier replays the true expectation online.
    let (mut got, measured) = session.run_checksum(&ch).unwrap();
    got[0] ^= 1 << 17; // the exact corruption corrupt_bank_stock applies
    assert!(verifier.check_response(&ch, got, measured).is_err());
    assert_eq!(verifier.stats().value_rejects, 1);
    assert_eq!(verifier.stats().accepted, 0, "zero false accepts");
}
