//! The TOCTOU defence (paper §8): the user kernel is inlined into the VF
//! and called directly by the epilog — no scheduler gap, and the kernel's
//! code is fingerprinted by the checksum traversal.

use sage::kernels::{vecadd::Elem, vecadd_kernel};
use sage::GpuSession;
use sage_gpu_sim::{Device, DeviceConfig};
use sage_vf::{build_vf_inline, expected_checksum, VfParams};

fn params() -> VfParams {
    let mut p = VfParams::test_tiny();
    p.iterations = 4;
    p
}

fn challenges(n: u32) -> Vec<[u8; 16]> {
    (0..n)
        .map(|b| [0x21u8.wrapping_add(b as u8 * 7); 16])
        .collect()
}

#[test]
fn inlined_kernel_runs_after_checksum_in_one_launch() {
    let kernel = vecadd_kernel(Elem::U32);
    let dev = Device::new(DeviceConfig::sim_tiny());
    let p = params();
    let mut session = GpuSession::install_inline(dev, &p, 0x10C7, Some(&kernel)).unwrap();
    assert!(session.build().layout.user_kernel_addr().is_some());

    // Input/output buffers for the inlined vecadd; geometry comes from
    // the VF launch (2 blocks × 64 threads = 128 threads ≥ n).
    let n = 100u32;
    let a: Vec<u32> = (0..n).collect();
    let b: Vec<u32> = (0..n).map(|i| 2 * i).collect();
    let bytes = |v: &[u32]| -> Vec<u8> { v.iter().flat_map(|w| w.to_le_bytes()).collect() };
    let abuf = session.dev.alloc(4 * n).unwrap();
    let bbuf = session.dev.alloc(4 * n).unwrap();
    let obuf = session.dev.alloc(4 * n).unwrap();
    session.dev.memcpy_h2d(abuf, &bytes(&a)).unwrap();
    session.dev.memcpy_h2d(bbuf, &bytes(&b)).unwrap();

    let ch = challenges(p.grid_blocks);
    let (got, _) = session
        .run_checksum_with_params(&ch, vec![abuf, bbuf, obuf, n])
        .unwrap();

    // The checksum is correct (replay covers the kernel bytes too)…
    assert_eq!(got, expected_checksum(session.build(), &ch));
    // …and the kernel ran inside the same launch.
    let raw = session.dev.memcpy_d2h(obuf, 4 * n).unwrap();
    for i in 0..n as usize {
        let v = u32::from_le_bytes(raw[i * 4..i * 4 + 4].try_into().unwrap());
        assert_eq!(v, 3 * i as u32, "element {i}");
    }
}

#[test]
fn tampering_the_inlined_kernel_breaks_the_checksum() {
    // Because the kernel lives inside the checksummed region, modifying
    // it is equivalent to modifying the VF: the traversal reads the
    // changed bytes and the checksum diverges — kernel code integrity
    // without a separate hash check.
    let kernel = vecadd_kernel(Elem::U32);
    let p = params();
    let build = build_vf_inline(&p, 4096, 0x10C7, Some(&kernel)).unwrap();
    let ch = challenges(p.grid_blocks);
    let expected = expected_checksum(&build, &ch);

    let mut dev = Device::new(DeviceConfig::sim_tiny());
    let ctx = dev.create_context();
    let base = dev.alloc(build.layout.total_bytes).unwrap();
    assert_eq!(base, build.layout.base);
    let mut image = build.image.clone();
    // Adversary swaps one instruction of the inlined kernel for a NOP
    // (e.g. to skip the range guard). Overwrite a whole word in the user
    // area.
    let off = build.layout.user_off as usize + 6 * 16;
    let nop = sage_isa::encode::encode_bytes(&sage_isa::Instruction::new(sage_isa::Opcode::Nop));
    image[off..off + 16].copy_from_slice(&nop);
    dev.memcpy_h2d(base, &image).unwrap();
    for (b, c) in ch.iter().enumerate() {
        dev.memcpy_h2d(build.layout.challenge_addr(b as u32), c)
            .unwrap();
    }
    dev.run_single(sage_gpu_sim::LaunchParams {
        ctx,
        entry_pc: build.layout.entry_addr(),
        grid_dim: p.grid_blocks,
        block_dim: p.block_threads,
        regs_per_thread: build.regs_per_thread(),
        smem_bytes: build.smem_bytes(),
        params: vec![0, 0, 0, 0],
    })
    .unwrap();
    let raw = dev.memcpy_d2h(build.layout.result_addr(), 32).unwrap();
    let mut got = [0u32; 8];
    for (j, cell) in got.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().unwrap());
    }
    assert_ne!(
        got, expected,
        "kernel tampering must surface in the checksum"
    );
}

#[test]
fn inline_build_rejects_oversized_kernels() {
    let mut p = params();
    p.data_bytes = 4096; // tiny region
    let kernel = sage::kernels::sha256_dev::sha256_kernel(); // ~2k insns
    assert!(build_vf_inline(&p, 0, 1, Some(&kernel)).is_err());
}

#[test]
fn inline_and_plain_builds_differ_only_in_kernel_presence() {
    let p = params();
    let plain = sage_vf::build_vf(&p, 0x1000, 9).unwrap();
    let kernel = vecadd_kernel(Elem::U32);
    let inline = build_vf_inline(&p, 0x1000, 9, Some(&kernel)).unwrap();
    assert_eq!(plain.layout.user_bytes, 0);
    assert_eq!(inline.layout.user_bytes, kernel.byte_len() as u32);
    assert!(inline.layout.fill_off > plain.layout.fill_off);
    // Different images → different checksums, naturally.
    let ch = challenges(p.grid_blocks);
    assert_ne!(
        expected_checksum(&plain, &ch),
        expected_checksum(&inline, &ch)
    );
}
