//! Drive the attestation data path through the command-processor
//! channel API (paper §2) instead of the direct device methods — the
//! shape a real user-space runtime/driver has.

use sage_gpu_sim::{
    channel::expect_alloc, Command, CommandProcessor, Completion, Device, DeviceConfig,
    LaunchParams,
};
use sage_vf::{build_vf, expected_checksum, VfParams};

#[test]
fn checksum_round_through_channels() {
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    let ctx = dev.create_context();
    let mut cp = CommandProcessor::new();
    let ch = cp.create_channel(ctx);

    let mut params = VfParams::test_tiny();
    params.iterations = 4;

    // Allocate the VF buffer through the channel.
    let probe = build_vf(&params, 0, 0xD41E).unwrap();
    cp.submit(
        ch,
        Command::MemAlloc {
            bytes: probe.layout.total_bytes,
        },
    );
    let done = cp.process(&mut dev).unwrap();
    let base = expect_alloc(&done[0].1).unwrap();
    let build = build_vf(&params, base, 0xD41E).unwrap();

    // Upload image + challenges, launch, run, read back — all as
    // commands.
    let challenges: Vec<[u8; 16]> = (0..params.grid_blocks)
        .map(|b| [b as u8 ^ 0x5C; 16])
        .collect();
    cp.submit(
        ch,
        Command::MemcpyH2D {
            addr: base,
            data: build.image.clone(),
        },
    );
    for (b, c) in challenges.iter().enumerate() {
        cp.submit(
            ch,
            Command::MemcpyH2D {
                addr: build.layout.challenge_addr(b as u32),
                data: c.to_vec(),
            },
        );
    }
    cp.submit(
        ch,
        Command::Launch(LaunchParams {
            ctx,
            entry_pc: build.layout.entry_addr(),
            grid_dim: params.grid_blocks,
            block_dim: params.block_threads,
            regs_per_thread: build.regs_per_thread(),
            smem_bytes: build.smem_bytes(),
            params: vec![],
        }),
    );
    cp.submit(ch, Command::RunToCompletion);
    cp.submit(
        ch,
        Command::MemcpyD2H {
            addr: build.layout.result_addr(),
            len: 32,
        },
    );

    let done = cp.process(&mut dev).unwrap();
    let Completion::Bytes(raw) = &done.last().unwrap().1 else {
        panic!("expected checksum bytes");
    };
    let mut got = [0u32; 8];
    for (j, cell) in got.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().unwrap());
    }
    assert_eq!(got, expected_checksum(&build, &challenges));

    // The run completion carried timing the verifier can use.
    let ran = done.iter().find_map(|(_, c)| match c {
        Completion::Ran(r) => Some(r.total_cycles),
        _ => None,
    });
    assert!(ran.unwrap() > 0);
}

#[test]
fn adversary_channel_can_snoop_but_not_forge() {
    // A second context's channel reads the VF region (no isolation, §2)
    // — but knowing the bytes does not help forge a checksum for a fresh
    // challenge without running the function.
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    let victim_ctx = dev.create_context();
    let adv_ctx = dev.create_context();
    let mut cp = CommandProcessor::new();
    let victim = cp.create_channel(victim_ctx);
    let adv = cp.create_channel(adv_ctx);

    let mut params = VfParams::test_tiny();
    params.iterations = 2;
    let probe = build_vf(&params, 0, 1).unwrap();
    cp.submit(
        victim,
        Command::MemAlloc {
            bytes: probe.layout.total_bytes,
        },
    );
    let done = cp.process(&mut dev).unwrap();
    let base = expect_alloc(&done[0].1).unwrap();
    let build = build_vf(&params, base, 1).unwrap();
    cp.submit(
        victim,
        Command::MemcpyH2D {
            addr: base,
            data: build.image.clone(),
        },
    );
    // Adversary snoops the whole image through its own channel.
    cp.submit(
        adv,
        Command::MemcpyD2H {
            addr: base,
            len: build.layout.total_bytes,
        },
    );
    let done = cp.process(&mut dev).unwrap();
    let Completion::Bytes(snooped) = &done.last().unwrap().1 else {
        panic!("expected bytes");
    };
    assert_eq!(snooped[..], build.image[..], "no isolation: snoop succeeds");
    // The image is public in SAGE's model anyway — the checksum's secrecy
    // comes from the challenge, not the code.
}
