//! The authenticated/encrypted data channel keyed by the SAKE secret
//! (paper §5.2.4): "the data could be either *authenticated* and/or
//! *encrypted* using the established symmetric key".

use sage_crypto::{
    cmac::{cmac_aes128, cmac_verify},
    ctr::AesCtr,
    Sha256,
};

use crate::error::{Result, SageError};

/// Address tag reserved for liveness probes (outside the simulator's
/// mapped device memory, so a probe can never be confused with a data
/// transfer).
pub const LIVENESS_ADDR: u32 = 0xFFFF_4C50;

/// Which end of the channel this instance is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// The verifier enclave on the host.
    Host,
    /// The trusted code on the device.
    Device,
}

/// A sealed message on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct Wire {
    /// Sequence number (replay/reorder protection).
    pub seq: u64,
    /// Destination address tag (bound into the MAC so the untrusted
    /// runtime cannot redirect transfers).
    pub addr: u32,
    /// Payload (ciphertext if confidential, plaintext otherwise).
    pub body: Vec<u8>,
    /// Whether the body is encrypted.
    pub confidential: bool,
    /// AES-CMAC over (direction, seq, addr, confidential, body).
    pub mac: [u8; 16],
}

/// One direction-aware endpoint of the secure channel.
pub struct SecureChannel {
    role: Role,
    enc_send: [u8; 16],
    enc_recv: [u8; 16],
    mac_send: [u8; 16],
    mac_recv: [u8; 16],
    send_seq: u64,
    recv_seq: u64,
}

fn derive(sk: &[u8; 16], label: &str) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(b"sage-channel:");
    h.update(label.as_bytes());
    h.update(sk);
    let d = h.finalize();
    d[..16].try_into().expect("16 bytes")
}

fn mac_input(dir: u8, seq: u64, addr: u32, confidential: bool, body: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(body.len() + 16);
    m.push(dir);
    m.extend_from_slice(&seq.to_le_bytes());
    m.extend_from_slice(&addr.to_le_bytes());
    m.push(confidential as u8);
    m.extend_from_slice(body);
    m
}

impl SecureChannel {
    /// Creates an endpoint from the SAKE session key.
    pub fn new(sk: [u8; 16], role: Role) -> SecureChannel {
        let h2d_enc = derive(&sk, "enc-h2d");
        let d2h_enc = derive(&sk, "enc-d2h");
        let h2d_mac = derive(&sk, "mac-h2d");
        let d2h_mac = derive(&sk, "mac-d2h");
        let (enc_send, enc_recv, mac_send, mac_recv) = match role {
            Role::Host => (h2d_enc, d2h_enc, h2d_mac, d2h_mac),
            Role::Device => (d2h_enc, h2d_enc, d2h_mac, h2d_mac),
        };
        SecureChannel {
            role,
            enc_send,
            enc_recv,
            mac_send,
            mac_recv,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    fn dir_byte(role: Role) -> u8 {
        match role {
            Role::Host => 0,
            Role::Device => 1,
        }
    }

    fn ctr_for(key: &[u8; 16], seq: u64) -> AesCtr {
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&seq.to_le_bytes());
        AesCtr::new(key, &iv)
    }

    /// Seals a payload destined for device/host address `addr`.
    pub fn seal(&mut self, addr: u32, payload: &[u8], confidential: bool) -> Wire {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut body = payload.to_vec();
        if confidential {
            Self::ctr_for(&self.enc_send, seq).apply(&mut body);
        }
        let mac = cmac_aes128(
            &self.mac_send,
            &mac_input(Self::dir_byte(self.role), seq, addr, confidential, &body),
        );
        Wire {
            seq,
            addr,
            body,
            confidential,
            mac,
        }
    }

    /// Opens a received wire message, enforcing authenticity and strict
    /// ordering. Returns the plaintext payload.
    pub fn open(&mut self, wire: &Wire) -> Result<Vec<u8>> {
        let peer = match self.role {
            Role::Host => Role::Device,
            Role::Device => Role::Host,
        };
        let expected_mac = cmac_aes128(
            &self.mac_recv,
            &mac_input(
                Self::dir_byte(peer),
                wire.seq,
                wire.addr,
                wire.confidential,
                &wire.body,
            ),
        );
        if !sage_crypto::ct_eq(&expected_mac, &wire.mac) {
            return Err(SageError::ChannelTamper("MAC mismatch"));
        }
        if wire.seq != self.recv_seq {
            return Err(SageError::ChannelTamper("sequence violation"));
        }
        self.recv_seq += 1;
        let mut body = wire.body.clone();
        if wire.confidential {
            Self::ctr_for(&self.enc_recv, wire.seq).apply(&mut body);
        }
        Ok(body)
    }

    /// Seals a liveness probe carrying `nonce` (an authenticated ping;
    /// the peer answers with [`SecureChannel::answer_liveness`]).
    pub fn probe_liveness(&mut self, nonce: u64) -> Wire {
        self.seal(LIVENESS_ADDR, &nonce.to_le_bytes(), false)
    }

    /// Opens a liveness probe and seals the authenticated echo. The echo
    /// body is the probe nonce, so direction separation plus the nonce
    /// binds the answer to this probe.
    pub fn answer_liveness(&mut self, probe: &Wire) -> Result<Wire> {
        let body = self.open(probe)?;
        let nonce: [u8; 8] = body
            .as_slice()
            .try_into()
            .map_err(|_| SageError::ChannelTamper("malformed liveness probe"))?;
        Ok(self.seal(LIVENESS_ADDR, &nonce, false))
    }

    /// Opens a liveness echo and checks it answers the probe `nonce`.
    pub fn confirm_liveness(&mut self, nonce: u64, echo: &Wire) -> Result<()> {
        let body = self.open(echo)?;
        if body != nonce.to_le_bytes() {
            return Err(SageError::ChannelTamper("liveness nonce mismatch"));
        }
        Ok(())
    }

    /// Verifies a wire MAC without consuming a sequence number (used by
    /// tests and auditing).
    pub fn peek_authentic(&self, wire: &Wire) -> bool {
        let peer = match self.role {
            Role::Host => Role::Device,
            Role::Device => Role::Host,
        };
        cmac_verify(
            &self.mac_recv,
            &mac_input(
                Self::dir_byte(peer),
                wire.seq,
                wire.addr,
                wire.confidential,
                &wire.body,
            ),
            &wire.mac,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let sk = [0x5A; 16];
        (
            SecureChannel::new(sk, Role::Host),
            SecureChannel::new(sk, Role::Device),
        )
    }

    #[test]
    fn round_trip_plain_and_confidential() {
        let (mut h, mut d) = pair();
        let w1 = h.seal(0x1000, b"authenticated only", false);
        assert_eq!(w1.body, b"authenticated only");
        assert_eq!(d.open(&w1).unwrap(), b"authenticated only");

        let w2 = h.seal(0x2000, b"secret weights", true);
        assert_ne!(w2.body, b"secret weights");
        assert_eq!(d.open(&w2).unwrap(), b"secret weights");
    }

    #[test]
    fn device_to_host_direction() {
        let (mut h, mut d) = pair();
        let w = d.seal(0, b"result", true);
        assert_eq!(h.open(&w).unwrap(), b"result");
    }

    #[test]
    fn tampered_body_rejected() {
        let (mut h, mut d) = pair();
        let mut w = h.seal(0, b"data", true);
        w.body[0] ^= 1;
        assert!(matches!(d.open(&w), Err(SageError::ChannelTamper(_))));
    }

    #[test]
    fn redirected_address_rejected() {
        let (mut h, mut d) = pair();
        let mut w = h.seal(0x1000, b"data", false);
        w.addr = 0x6666_0000; // adversary redirects the DMA target
        assert!(matches!(d.open(&w), Err(SageError::ChannelTamper(_))));
    }

    #[test]
    fn replay_rejected() {
        let (mut h, mut d) = pair();
        let w = h.seal(0, b"one", false);
        d.open(&w).unwrap();
        assert!(matches!(d.open(&w), Err(SageError::ChannelTamper(_))));
    }

    #[test]
    fn reorder_rejected() {
        let (mut h, mut d) = pair();
        let _w0 = h.seal(0, b"zero", false);
        let w1 = h.seal(0, b"one", false);
        assert!(matches!(d.open(&w1), Err(SageError::ChannelTamper(_))));
    }

    #[test]
    fn reflected_message_rejected() {
        // A message sealed by the host cannot be "opened" by the host
        // (direction separation).
        let (mut h, _) = pair();
        let w = h.seal(0, b"loop", false);
        let mut h2 = SecureChannel::new([0x5A; 16], Role::Host);
        assert!(matches!(h2.open(&w), Err(SageError::ChannelTamper(_))));
    }

    #[test]
    fn liveness_probe_round_trip() {
        let (mut h, mut d) = pair();
        let probe = h.probe_liveness(0xDEAD_BEEF);
        let echo = d.answer_liveness(&probe).unwrap();
        h.confirm_liveness(0xDEAD_BEEF, &echo).unwrap();
    }

    #[test]
    fn liveness_wrong_nonce_rejected() {
        let (mut h, mut d) = pair();
        let probe = h.probe_liveness(1);
        let _ = d.answer_liveness(&probe).unwrap();
        // The device answers a different (self-made) nonce.
        let bogus = d.seal(LIVENESS_ADDR, &2u64.to_le_bytes(), false);
        assert!(matches!(
            h.confirm_liveness(1, &bogus),
            Err(SageError::ChannelTamper(_))
        ));
    }

    #[test]
    fn liveness_replayed_echo_rejected() {
        let (mut h, mut d) = pair();
        let probe = h.probe_liveness(7);
        let echo = d.answer_liveness(&probe).unwrap();
        h.confirm_liveness(7, &echo).unwrap();
        // Replaying the same echo for a second probe violates ordering.
        let _probe2 = h.probe_liveness(8);
        assert!(matches!(
            h.confirm_liveness(8, &echo),
            Err(SageError::ChannelTamper(_))
        ));
    }

    #[test]
    fn wrong_key_rejected() {
        let (mut h, _) = pair();
        let w = h.seal(0, b"x", true);
        let mut d = SecureChannel::new([0x00; 16], Role::Device);
        assert!(matches!(d.open(&w), Err(SageError::ChannelTamper(_))));
    }
}
