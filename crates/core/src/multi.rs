//! Multi-GPU root-of-trust establishment (paper §3.2 and §8, proxy
//! case 1).
//!
//! In heterogeneous multi-GPU systems the verification function must run
//! on the *fastest* GPU first — otherwise the adversary could answer a
//! slower GPU's challenge with a faster one and bank the time difference.
//! The paper's prescription: "the dynamic RoT could also be established
//! in sequence (while actively maintaining already established RoTs)
//! starting from the most powerful GPU to the least powerful GPU."
//!
//! [`attest_fleet`] implements exactly that: devices are ranked by
//! compute power, attested in descending order, and every already
//! attested device is re-verified after each new establishment (the
//! "actively maintaining" step).

use sage_crypto::DhGroup;
use sage_gpu_sim::DeviceConfig;
use sage_sgx_sim::Enclave;

use crate::{
    agent::DeviceAgent,
    error::{Result, SageError},
    session::GpuSession,
    verifier::{AttestationOutcome, Verifier},
};

/// A relative compute-power score used for ordering (issue slots per
/// second: SMs × partitions × clock).
pub fn power_score(cfg: &DeviceConfig) -> u128 {
    cfg.num_sms as u128 * cfg.partitions_per_sm as u128 * cfg.clock_hz as u128
}

/// One member of the fleet: the session plus its device-resident agent.
pub struct FleetMember {
    /// Installed VF session.
    pub session: GpuSession,
    /// Device-resident agent.
    pub agent: DeviceAgent,
    /// Human-readable name (defaults to the device config name).
    pub name: String,
}

impl FleetMember {
    /// Creates a member from a session and agent.
    pub fn new(session: GpuSession, agent: DeviceAgent) -> FleetMember {
        let name = session.dev.cfg.name.to_string();
        FleetMember {
            session,
            agent,
            name,
        }
    }
}

/// The protocol phase a fleet attestation failed in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FleetPhase {
    /// Timing calibration of a new device.
    Calibrate,
    /// Key establishment (modified SAKE) on a new device.
    Establish,
    /// Re-verification of an already established root of trust.
    Maintain,
}

/// A mid-fleet failure: which device failed, in which phase, and why.
#[derive(Clone, PartialEq, Debug)]
pub struct FleetFailure {
    /// The device the failure occurred on.
    pub device: String,
    /// The phase it failed in.
    pub phase: FleetPhase,
    /// The underlying protocol error.
    pub error: SageError,
}

impl std::fmt::Display for FleetFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device {} failed during {:?}: {}",
            self.device, self.phase, self.error
        )
    }
}

/// The outcome of a fleet attestation.
///
/// On failure the already-attested prefix is *kept*: `attested` holds
/// every device whose root of trust was established before the failure,
/// and `failure` names the device that broke the sequence and why.
pub struct FleetOutcome {
    /// Per-device results, in the order the devices were attested
    /// (descending power).
    pub attested: Vec<(String, AttestationOutcome)>,
    /// The first failure, if the sequence did not complete.
    pub failure: Option<FleetFailure>,
}

impl FleetOutcome {
    /// Whether every submitted device was attested.
    pub fn is_complete(&self) -> bool {
        self.failure.is_none()
    }

    /// Converts to a `Result`, discarding the partial prefix on failure
    /// (the pre-partial-results behaviour).
    pub fn into_result(self) -> Result<Vec<(String, AttestationOutcome)>> {
        match self.failure {
            None => Ok(self.attested),
            Some(f) => Err(SageError::Protocol(f.to_string())),
        }
    }
}

/// Sorts members most-powerful-first (paper §3.2), breaking equal
/// [`power_score`]s deterministically by device name so fleets with
/// identical hardware attest in a stable order across runs.
pub fn sort_most_powerful_first(members: &mut [FleetMember]) {
    members.sort_by(|a, b| {
        power_score(&b.session.dev.cfg)
            .cmp(&power_score(&a.session.dev.cfg))
            .then_with(|| a.name.cmp(&b.name))
    });
}

/// Attests every fleet member in descending power order, re-verifying all
/// previously attested members after each new establishment.
///
/// `calibration_runs` timed exchanges are used per device to establish
/// its threshold. Always returns the per-device outcomes for the attested
/// prefix together with the established sessions; a mid-fleet failure is
/// reported in [`FleetOutcome::failure`] rather than discarding the
/// devices already attested.
pub fn attest_fleet(
    enclave_factory: &mut dyn FnMut() -> Enclave,
    group: DhGroup,
    mut members: Vec<FleetMember>,
    calibration_runs: usize,
) -> (FleetOutcome, Vec<(FleetMember, Verifier)>) {
    sort_most_powerful_first(&mut members);

    let mut attested: Vec<(String, AttestationOutcome)> = Vec::new();
    let mut done: Vec<(FleetMember, Verifier)> = Vec::new();
    let mut failure = None;

    'fleet: for mut member in members {
        let mut verifier = Verifier::new(
            enclave_factory(),
            member.session.build().clone(),
            group.clone(),
        );
        if let Err(e) = verifier.calibrate(&mut member.session, calibration_runs) {
            failure = Some(fail(&member.name, FleetPhase::Calibrate, e));
            break;
        }
        let outcome = match verifier.establish_key(&mut member.session, &mut member.agent, None) {
            Ok(o) => o,
            Err(e) => {
                failure = Some(fail(&member.name, FleetPhase::Establish, e));
                break;
            }
        };
        attested.push((member.name.clone(), outcome));
        done.push((member, verifier));

        // Actively maintain the RoTs established so far: one fresh
        // verification round per earlier device.
        for (earlier, earlier_verifier) in done.iter_mut() {
            if let Err(e) = earlier_verifier.verify_once(&mut earlier.session) {
                failure = Some(fail(&earlier.name, FleetPhase::Maintain, e));
                break 'fleet;
            }
        }
    }

    (FleetOutcome { attested, failure }, done)
}

fn fail(name: &str, phase: FleetPhase, error: SageError) -> FleetFailure {
    FleetFailure {
        device: name.to_string(),
        phase,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_crypto::EntropySource;
    use sage_gpu_sim::Device;
    use sage_sgx_sim::SgxPlatform;
    use sage_vf::VfParams;

    fn entropy(seed: u8) -> impl EntropySource {
        let mut state = seed;
        move |buf: &mut [u8]| {
            for b in buf {
                state = state.wrapping_mul(181).wrapping_add(101);
                *b = state;
            }
        }
    }

    fn member(cfg: DeviceConfig, seed: u8) -> FleetMember {
        let mut params = VfParams::test_tiny();
        params.iterations = 6;
        let session = GpuSession::install(Device::new(cfg), &params, 0xF1EE7).unwrap();
        FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))))
    }

    fn fleet_of(members: Vec<FleetMember>) -> (FleetOutcome, Vec<(FleetMember, Verifier)>) {
        let platform = SgxPlatform::new([7u8; 16]);
        let mut launch_seed = 60u8;
        let mut factory = move || {
            launch_seed += 1;
            platform.launch(b"fleet-verifier", &mut entropy(launch_seed))
        };
        attest_fleet(&mut factory, DhGroup::test_group(), members, 5)
    }

    fn run_fleet(cfgs: Vec<DeviceConfig>) -> FleetOutcome {
        let mut seed = 40u8;
        let members = cfgs
            .into_iter()
            .map(|c| {
                seed += 1;
                member(c, seed)
            })
            .collect();
        fleet_of(members).0
    }

    #[test]
    fn fleet_attests_most_powerful_first() {
        let outcome = run_fleet(vec![
            DeviceConfig::sim_tiny(),  // 1 SM
            DeviceConfig::sim_small(), // 2 SMs — more powerful
        ]);
        assert!(outcome.is_complete());
        assert_eq!(outcome.attested.len(), 2);
        assert_eq!(outcome.attested[0].0, "SIM-SMALL");
        assert_eq!(outcome.attested[1].0, "SIM-TINY");
    }

    #[test]
    fn power_score_orders_presets() {
        assert!(power_score(&DeviceConfig::a100()) > power_score(&DeviceConfig::sim_large()));
        assert!(power_score(&DeviceConfig::sim_large()) > power_score(&DeviceConfig::sim_small()));
        assert!(power_score(&DeviceConfig::sim_small()) > power_score(&DeviceConfig::sim_tiny()));
    }

    #[test]
    fn single_device_fleet_works() {
        let outcome = run_fleet(vec![DeviceConfig::sim_tiny()]);
        assert!(outcome.is_complete());
        assert_eq!(outcome.attested.len(), 1);
        assert_eq!(outcome.into_result().unwrap().len(), 1);
    }

    #[test]
    fn equal_power_ties_break_on_name() {
        // Two identical devices: power scores tie, so the deterministic
        // name tie-break decides the attestation order.
        let mut a = member(DeviceConfig::sim_tiny(), 41);
        a.name = "tiny-b".into();
        let mut b = member(DeviceConfig::sim_tiny(), 42);
        b.name = "tiny-a".into();
        let (outcome, _) = fleet_of(vec![a, b]);
        assert!(outcome.is_complete());
        assert_eq!(outcome.attested[0].0, "tiny-a");
        assert_eq!(outcome.attested[1].0, "tiny-b");
    }

    #[test]
    fn mid_fleet_failure_keeps_attested_prefix() {
        // The weaker device's static checksum data is corrupted, so its
        // calibration fails — but the stronger device, attested first,
        // must survive in the outcome with its established session.
        let strong = member(DeviceConfig::sim_small(), 43);
        let mut weak = member(DeviceConfig::sim_tiny(), 44);
        let layout = weak.session.build().layout;
        weak.session
            .dev
            .poke(layout.base + layout.fill_off + 16, &[0xFF; 4])
            .unwrap();
        let (outcome, done) = fleet_of(vec![strong, weak]);

        assert_eq!(outcome.attested.len(), 1);
        assert_eq!(outcome.attested[0].0, "SIM-SMALL");
        assert_eq!(done.len(), 1);
        let failure = outcome.failure.as_ref().expect("weak device must fail");
        assert_eq!(failure.device, "SIM-TINY");
        assert_eq!(failure.phase, FleetPhase::Calibrate);
        assert!(matches!(failure.error, SageError::ChecksumMismatch { .. }));
        assert!(outcome.into_result().is_err());
    }
}
