//! Multi-GPU root-of-trust establishment (paper §3.2 and §8, proxy
//! case 1).
//!
//! In heterogeneous multi-GPU systems the verification function must run
//! on the *fastest* GPU first — otherwise the adversary could answer a
//! slower GPU's challenge with a faster one and bank the time difference.
//! The paper's prescription: "the dynamic RoT could also be established
//! in sequence (while actively maintaining already established RoTs)
//! starting from the most powerful GPU to the least powerful GPU."
//!
//! [`attest_fleet`] implements exactly that: devices are ranked by
//! compute power, attested in descending order, and every already
//! attested device is re-verified after each new establishment (the
//! "actively maintaining" step).

use sage_crypto::DhGroup;
use sage_gpu_sim::DeviceConfig;
use sage_sgx_sim::Enclave;

use crate::{
    agent::DeviceAgent,
    error::{Result, SageError},
    session::GpuSession,
    verifier::{AttestationOutcome, Verifier},
};

/// A relative compute-power score used for ordering (issue slots per
/// second: SMs × partitions × clock).
pub fn power_score(cfg: &DeviceConfig) -> u128 {
    cfg.num_sms as u128 * cfg.partitions_per_sm as u128 * cfg.clock_hz as u128
}

/// One member of the fleet: the session plus its device-resident agent.
pub struct FleetMember {
    /// Installed VF session.
    pub session: GpuSession,
    /// Device-resident agent.
    pub agent: DeviceAgent,
    /// Human-readable name (defaults to the device config name).
    pub name: String,
}

impl FleetMember {
    /// Creates a member from a session and agent.
    pub fn new(session: GpuSession, agent: DeviceAgent) -> FleetMember {
        let name = session.dev.cfg.name.to_string();
        FleetMember {
            session,
            agent,
            name,
        }
    }
}

/// The outcome of a fleet attestation.
pub struct FleetOutcome {
    /// Per-device results, in the order the devices were attested
    /// (descending power).
    pub attested: Vec<(String, AttestationOutcome)>,
}

/// Attests every fleet member in descending power order, re-verifying all
/// previously attested members after each new establishment.
///
/// `calibration_runs` timed exchanges are used per device to establish
/// its threshold. Returns the per-device outcomes or the first failure
/// (naming the device in the error).
pub fn attest_fleet(
    enclave_factory: &mut dyn FnMut() -> Enclave,
    group: DhGroup,
    mut members: Vec<FleetMember>,
    calibration_runs: usize,
) -> Result<(FleetOutcome, Vec<(FleetMember, Verifier)>)> {
    // Most powerful first (paper §3.2).
    members.sort_by_key(|m| std::cmp::Reverse(power_score(&m.session.dev.cfg)));

    let mut attested: Vec<(String, AttestationOutcome)> = Vec::new();
    let mut done: Vec<(FleetMember, Verifier)> = Vec::new();

    for mut member in members {
        let mut verifier = Verifier::new(
            enclave_factory(),
            member.session.build().clone(),
            group.clone(),
        );
        verifier
            .calibrate(&mut member.session, calibration_runs)
            .map_err(|e| named(&member.name, e))?;
        let outcome = verifier
            .establish_key(&mut member.session, &mut member.agent, None)
            .map_err(|e| named(&member.name, e))?;
        attested.push((member.name.clone(), outcome));
        done.push((member, verifier));

        // Actively maintain the RoTs established so far: one fresh
        // verification round per earlier device.
        for (earlier, earlier_verifier) in done.iter_mut() {
            earlier_verifier
                .verify_once(&mut earlier.session)
                .map_err(|e| named(&earlier.name, e))?;
        }
    }

    Ok((FleetOutcome { attested }, done))
}

fn named(name: &str, e: SageError) -> SageError {
    SageError::Protocol(format!("device {name}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_crypto::EntropySource;
    use sage_gpu_sim::Device;
    use sage_sgx_sim::SgxPlatform;
    use sage_vf::VfParams;

    fn entropy(seed: u8) -> impl EntropySource {
        let mut state = seed;
        move |buf: &mut [u8]| {
            for b in buf {
                state = state.wrapping_mul(181).wrapping_add(101);
                *b = state;
            }
        }
    }

    fn member(cfg: DeviceConfig, seed: u8) -> FleetMember {
        let mut params = VfParams::test_tiny();
        params.iterations = 6;
        let session = GpuSession::install(Device::new(cfg), &params, 0xF1EE7).unwrap();
        FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))))
    }

    fn run_fleet(cfgs: Vec<DeviceConfig>) -> Result<FleetOutcome> {
        let platform = SgxPlatform::new([7u8; 16]);
        let mut seed = 40u8;
        let members = cfgs
            .into_iter()
            .map(|c| {
                seed += 1;
                member(c, seed)
            })
            .collect();
        let mut launch_seed = 60u8;
        let mut factory = move || {
            launch_seed += 1;
            platform.launch(b"fleet-verifier", &mut entropy(launch_seed))
        };
        attest_fleet(&mut factory, DhGroup::test_group(), members, 5).map(|(o, _)| o)
    }

    #[test]
    fn fleet_attests_most_powerful_first() {
        let outcome = run_fleet(vec![
            DeviceConfig::sim_tiny(),  // 1 SM
            DeviceConfig::sim_small(), // 2 SMs — more powerful
        ])
        .unwrap();
        assert_eq!(outcome.attested.len(), 2);
        assert_eq!(outcome.attested[0].0, "SIM-SMALL");
        assert_eq!(outcome.attested[1].0, "SIM-TINY");
    }

    #[test]
    fn power_score_orders_presets() {
        assert!(power_score(&DeviceConfig::a100()) > power_score(&DeviceConfig::sim_large()));
        assert!(power_score(&DeviceConfig::sim_large()) > power_score(&DeviceConfig::sim_small()));
        assert!(power_score(&DeviceConfig::sim_small()) > power_score(&DeviceConfig::sim_tiny()));
    }

    #[test]
    fn single_device_fleet_works() {
        let outcome = run_fleet(vec![DeviceConfig::sim_tiny()]).unwrap();
        assert_eq!(outcome.attested.len(), 1);
    }
}
