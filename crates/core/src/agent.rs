//! The device-resident trusted agent.
//!
//! After the dynamic root of trust is established, SAGE has verified code
//! running on the GPU: the key-establishment arithmetic, the user-kernel
//! measurement and the channel endpoints execute inside that untampered
//! environment. The checksum itself and the SHA-256 measurement run as
//! real microcode on the simulated device; the (small) remaining protocol
//! arithmetic of the agent is modelled in Rust, standing in for VF code
//! the paper likewise runs after attestation (substitution documented in
//! DESIGN.md).

use sage_crypto::EntropySource;

use crate::{
    channel::{Role, SecureChannel, Wire},
    error::{Result, SageError},
    kernels::{load_kernel, sha256_dev},
    sake::{derive_challenges, SakeDevice, SakeMessage},
    session::GpuSession,
};

/// The trusted device-side agent.
pub struct DeviceAgent {
    entropy: Box<dyn EntropySource>,
    sake: Option<SakeDevice>,
    channel: Option<SecureChannel>,
    sha_entry: Option<u32>,
}

impl DeviceAgent {
    /// Creates an agent with the given entropy source (the race-condition
    /// TRNG in production, an injected DRBG in tests).
    pub fn new(entropy: Box<dyn EntropySource>) -> DeviceAgent {
        DeviceAgent {
            entropy,
            sake: None,
            channel: None,
            sha_entry: None,
        }
    }

    /// Creates an agent backed by the race-condition TRNG (paper §6.6).
    pub fn with_race_trng() -> DeviceAgent {
        DeviceAgent::new(Box::new(sage_trng::RaceTrng::start(Default::default())))
    }

    /// SAKE: handles the verifier challenge — runs the checksum kernel on
    /// the device and produces the commitment. Returns the message and
    /// the measured exchange time (what the verifier observes as
    /// `t₁ − t₀`).
    pub fn handle_challenge(
        &mut self,
        session: &mut GpuSession,
        group: sage_crypto::DhGroup,
        v2: [u8; 32],
    ) -> Result<(SakeMessage, u64)> {
        let blocks = session.build().params.grid_blocks;
        let challenges = derive_challenges(&v2, blocks);
        let (c, measured) = session.run_checksum(&challenges)?;
        let mut sake = SakeDevice::new(group);
        let msg = sake.on_challenge(v2, c, self.entropy.as_mut());
        self.sake = Some(sake);
        Ok((msg, measured))
    }

    /// SAKE: handles the `v₁` reveal.
    pub fn handle_reveal_v1(&mut self, v1: [u8; 32]) -> Result<SakeMessage> {
        self.sake_mut()?.on_reveal_v1(v1)
    }

    /// SAKE: handles the `v₀` reveal; on success the agent derives its
    /// channel endpoint.
    pub fn handle_reveal_v0(&mut self, v0: Vec<u8>) -> Result<SakeMessage> {
        let msg = self.sake_mut()?.on_reveal_v0(v0)?;
        let sk = self
            .sake_mut()?
            .session_key()
            .ok_or_else(|| SageError::Protocol("device key not established".into()))?;
        self.channel = Some(SecureChannel::new(sk, Role::Device));
        Ok(msg)
    }

    fn sake_mut(&mut self) -> Result<&mut SakeDevice> {
        self.sake
            .as_mut()
            .ok_or_else(|| SageError::Protocol("SAKE not started".into()))
    }

    /// The established session key (after SAKE completes).
    pub fn session_key(&self) -> Option<[u8; 16]> {
        self.sake.as_ref().and_then(|s| s.session_key())
    }

    /// Measures a user kernel *on the device*: uploads `pad(r ‖ code)`,
    /// runs the SHA-256 microcode kernel, returns the digest (paper
    /// Eq. 9).
    pub fn measure_kernel(
        &mut self,
        session: &mut GpuSession,
        r: &[u8; 32],
        code: &[u8],
    ) -> Result<[u8; 32]> {
        let entry = match self.sha_entry {
            Some(e) => e,
            None => {
                let e = load_kernel(&mut session.dev, &sha256_dev::sha256_kernel())?;
                self.sha_entry = Some(e);
                e
            }
        };
        let mut msg = Vec::with_capacity(32 + code.len());
        msg.extend_from_slice(r);
        msg.extend_from_slice(code);
        let padded = sha256_dev::sha256_pad(&msg);
        let mbuf = session.dev.alloc(padded.len() as u32)?;
        let obuf = session.dev.alloc(32)?;
        session.dev.memcpy_h2d(mbuf, &padded)?;
        session.dev.run_single(sage_gpu_sim::LaunchParams {
            ctx: session.ctx,
            entry_pc: entry,
            grid_dim: 1,
            block_dim: 32,
            regs_per_thread: sha256_dev::SHA256_REGS,
            smem_bytes: sha256_dev::SHA256_SMEM,
            params: vec![mbuf, (padded.len() / 64) as u32, obuf],
        })?;
        let raw = session.dev.memcpy_d2h(obuf, 32)?;
        Ok(raw.try_into().expect("32 bytes"))
    }

    /// Receives protected data: authenticates (and decrypts) the wire
    /// message, then places the plaintext at its bound device address.
    ///
    /// The plaintext write uses the direct device path ([`sage_gpu_sim::Device::poke`]),
    /// standing in for the on-device decryption the trusted code performs
    /// — the ciphertext is what crossed the observable bus.
    pub fn receive_data(&mut self, session: &mut GpuSession, wire: &Wire) -> Result<()> {
        let chan = self
            .channel
            .as_mut()
            .ok_or_else(|| SageError::Protocol("channel not established".into()))?;
        let plain = chan.open(wire)?;
        session.dev.poke(wire.addr, &plain)?;
        Ok(())
    }

    /// Sends device data back to the host over the channel.
    pub fn send_data(
        &mut self,
        session: &mut GpuSession,
        addr: u32,
        len: u32,
        confidential: bool,
    ) -> Result<Wire> {
        let chan = self
            .channel
            .as_mut()
            .ok_or_else(|| SageError::Protocol("channel not established".into()))?;
        let data = session.dev.peek(addr, len)?;
        Ok(chan.seal(addr, &data, confidential))
    }
}
