//! The modified SAKE key-establishment protocol (paper §5.2.3).
//!
//! SAKE (Seshadri et al.) establishes a key between two parties with no
//! prior secrets by combining software-based attestation (the checksum
//! result is a *short-lived secret* — only a genuine, timely device can
//! know it), Guy-Fawkes hash chains for authentication, and
//! Diffie-Hellman for the actual key. SAGE modifies it as described in
//! the paper: the sensor-network checksum is replaced with the GPU
//! checksum function, only the host enclave acts as challenger, and the
//! primitives are AES-CMAC and SHA-256.
//!
//! Message flow (Eqs. 1–8):
//!
//! ```text
//! V: a ←R, v0 = g^a, v1 = H(v0), v2 = H(v1)
//! [t0] V → D: v2                                  (challenge)
//! D: c = checksum(v2), r ←R TRNG,
//!    w0 = H(c ‖ r), w1 = H(w0), w2 = H(w1)
//! [t1] D → V: w2, MAC_c(w2)                       (commit)
//! V: verify t1 − t0 ≤ threshold and MAC under the replayed c
//! D: b ←R TRNG, k = g^b
//! V → D: v1          D → V: w1, k, MAC(k)         (reveal 1)
//! V → D: v0          D → V: w0                    (reveal 2)
//! sk = g^{ab}
//! ```
//!
//! One deliberate deviation: the paper's Eq. 6 writes `MAC_{w2}(k)`, but
//! `w2` is public by that point; following the Guy-Fawkes discipline (and
//! the Tamarin model's authentic-channel assumption) we key that MAC with
//! the still-secret chain root `w0`, which the verifier checks after the
//! final reveal. Recorded in DESIGN.md §4.6.

use sage_crypto::{
    chain::HashChain,
    cmac::{cmac_aes128, cmac_verify},
    ctr::AesCtr,
    dh::{DhGroup, DhKeyPair},
    sha256::{sha256, sha256_concat},
    BigUint,
};

use crate::error::{Result, SageError};

/// Protocol messages, in flow order.
#[derive(Clone, Debug, PartialEq)]
pub enum SakeMessage {
    /// `V → D`: the chain head `v₂`, used as the checksum challenge seed.
    Challenge {
        /// `v₂ = H(v₁)`.
        v2: [u8; 32],
    },
    /// `D → V`: commitment to the device chain, MAC'd with the checksum.
    Commit {
        /// `w₂ = H(w₁)`.
        w2: [u8; 32],
        /// `MAC_c(w₂)` with the checksum-derived key.
        mac: [u8; 16],
    },
    /// `V → D`: reveal `v₁`.
    RevealV1 {
        /// `v₁ = H(v₀)`.
        v1: [u8; 32],
    },
    /// `D → V`: reveal `w₁` and send the device DH public value.
    DeviceReveal1 {
        /// `w₁ = H(w₀)`.
        w1: [u8; 32],
        /// `k = g^b mod p` (big-endian).
        k: Vec<u8>,
        /// MAC over `k`, keyed by the (later-revealed) chain root `w₀`.
        mac_k: [u8; 16],
    },
    /// `V → D`: reveal `v₀ = g^a` (the verifier DH public value).
    RevealV0 {
        /// `v₀` (big-endian DH public value).
        v0: Vec<u8>,
    },
    /// `D → V`: reveal the chain root `w₀`.
    DeviceReveal0 {
        /// `w₀ = H(c ‖ r)`.
        w0: [u8; 32],
    },
}

/// Derives the per-block checksum challenges from the chain head `v₂`
/// (AES-CTR expansion; both sides compute this identically).
///
/// The whole multi-block keystream is produced in one batched
/// [`AesCtr::keystream_into`] call (whole-block fast path, no per-16-byte
/// buffer management) — bit-exact with the former one-call-per-block
/// derivation, since CTR keystream bytes do not depend on how they are
/// chunked.
pub fn derive_challenges(v2: &[u8; 32], blocks: u32) -> Vec<[u8; 16]> {
    let key: [u8; 16] = v2[..16].try_into().expect("16 bytes");
    let iv: [u8; 16] = v2[16..].try_into().expect("16 bytes");
    let mut ctr = AesCtr::new(&key, &iv);
    let mut stream = vec![0u8; blocks as usize * 16];
    ctr.keystream_into(&mut stream);
    stream
        .chunks_exact(16)
        .map(|c| c.try_into().expect("16 bytes"))
        .collect()
}

/// Derives the 16-byte MAC key from a 32-byte secret with a domain label.
pub fn mac_key(label: &[u8], secret: &[u8]) -> [u8; 16] {
    let mut h = sage_crypto::Sha256::new();
    h.update(b"sage-mac:");
    h.update(label);
    h.update(secret);
    let d = h.finalize();
    d[..16].try_into().expect("16 bytes")
}

/// Public fingerprint of an established session key:
/// `SHA-256("sage-key-fp:" ‖ key)[..8]`. Safe to log or embed in
/// evidence — it identifies the key epoch without revealing key bits.
pub fn key_fingerprint(key: &[u8; 16]) -> [u8; 8] {
    let mut h = sage_crypto::Sha256::new();
    h.update(b"sage-key-fp:");
    h.update(key);
    let d = h.finalize();
    d[..8].try_into().expect("8 bytes")
}

/// Serializes a checksum result for hashing/MACing.
pub fn checksum_bytes(c: &[u32; 8]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (j, w) in c.iter().enumerate() {
        out[j * 4..j * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Verifier-side SAKE state machine.
pub struct SakeVerifier {
    group: DhGroup,
    keys: DhKeyPair,
    v1: [u8; 32],
    expected_c: Option<[u8; 32]>,
    w2: Option<[u8; 32]>,
    w1: Option<[u8; 32]>,
    k: Option<Vec<u8>>,
    mac_k: Option<[u8; 16]>,
    sk: Option<[u8; 16]>,
}

impl SakeVerifier {
    /// Starts a session: samples `a`, builds the `v` chain, and returns
    /// the first message.
    pub fn start(
        group: DhGroup,
        entropy: &mut dyn sage_crypto::EntropySource,
    ) -> (SakeVerifier, SakeMessage) {
        let keys = group.generate(entropy);
        let v0 = keys.public.to_bytes_be();
        // Paper Eq. 1: v1 = H(v0), v2 = H(v1). The fixed-width chain
        // links are hashes; v0 itself (the DH public value) is disclosed
        // last.
        let v1 = sha256(&v0);
        let v2 = sha256(&v1);
        let msg = SakeMessage::Challenge { v2 };
        (
            SakeVerifier {
                group,
                keys,
                v1,
                expected_c: None,
                w2: None,
                w1: None,
                k: None,
                mac_k: None,
                sk: None,
            },
            msg,
        )
    }

    /// Records the checksum the verifier's replay expects for this
    /// session's challenges.
    pub fn set_expected_checksum(&mut self, c: [u32; 8]) {
        self.expected_c = Some(checksum_bytes(&c));
    }

    /// Handles the device commitment; returns the `v₁` reveal.
    pub fn on_commit(&mut self, w2: [u8; 32], mac: [u8; 16]) -> Result<SakeMessage> {
        let c = self
            .expected_c
            .ok_or_else(|| SageError::Protocol("commit before checksum replay".into()))?;
        let key = mac_key(b"commit", &c);
        if !cmac_verify(&key, &w2, &mac) {
            return Err(SageError::MacFailure("device commitment"));
        }
        self.w2 = Some(w2);
        Ok(SakeMessage::RevealV1 { v1: self.v1 })
    }

    /// Handles the device's first reveal; returns the `v₀` reveal.
    pub fn on_device_reveal1(
        &mut self,
        w1: [u8; 32],
        k: Vec<u8>,
        mac_k: [u8; 16],
    ) -> Result<SakeMessage> {
        let w2 = self
            .w2
            .ok_or_else(|| SageError::Protocol("reveal before commit".into()))?;
        if !HashChain::verify_link(&w2, &w1) {
            return Err(SageError::ChainFailure("w1 does not hash to w2"));
        }
        let k_big = BigUint::from_bytes_be(&k);
        if !self.group.valid_public(&k_big) {
            return Err(SageError::BadPublicKey);
        }
        self.w1 = Some(w1);
        self.k = Some(k);
        self.mac_k = Some(mac_k);
        Ok(SakeMessage::RevealV0 {
            v0: self.keys.public.to_bytes_be(),
        })
    }

    /// Handles the final device reveal; on success the shared key is
    /// established.
    pub fn on_device_reveal0(&mut self, w0: [u8; 32]) -> Result<()> {
        let w1 = self
            .w1
            .ok_or_else(|| SageError::Protocol("final reveal out of order".into()))?;
        if !HashChain::verify_link(&w1, &w0) {
            return Err(SageError::ChainFailure("w0 does not hash to w1"));
        }
        // Now that w0 is known, verify the deferred MAC over k.
        let k = self
            .k
            .clone()
            .ok_or_else(|| SageError::Protocol("missing device public value".into()))?;
        let mac_k = self.mac_k.expect("set with k");
        if !cmac_verify(&mac_key(b"dh-public", &w0), &k, &mac_k) {
            return Err(SageError::MacFailure("device DH public value"));
        }
        let shared = self
            .group
            .shared_secret(&self.keys, &BigUint::from_bytes_be(&k));
        self.sk = Some(self.group.derive_key(&shared));
        Ok(())
    }

    /// The established key, if the protocol completed.
    pub fn session_key(&self) -> Option<[u8; 16]> {
        self.sk
    }
}

/// Device-side SAKE state machine.
///
/// The checksum input is provided by the caller (the GPU run); everything
/// else is the device-resident protocol logic that executes inside the
/// untampered environment after root-of-trust establishment.
pub struct SakeDevice {
    group: DhGroup,
    v2: Option<[u8; 32]>,
    w_chain: Option<HashChain>,
    keys: Option<DhKeyPair>,
    sk: Option<[u8; 16]>,
}

impl SakeDevice {
    /// Creates the device role.
    pub fn new(group: DhGroup) -> SakeDevice {
        SakeDevice {
            group,
            v2: None,
            w_chain: None,
            keys: None,
            sk: None,
        }
    }

    /// Handles the challenge: given the freshly computed checksum `c` and
    /// TRNG randomness, builds the `w` chain and returns the commitment.
    pub fn on_challenge(
        &mut self,
        v2: [u8; 32],
        c: [u32; 8],
        entropy: &mut dyn sage_crypto::EntropySource,
    ) -> SakeMessage {
        self.v2 = Some(v2);
        let c_bytes = checksum_bytes(&c);
        let mut r = [0u8; 32];
        entropy.fill(&mut r);
        let w0 = sha256_concat(&c_bytes, &r);
        let chain = HashChain::from_root(w0);
        let w2 = *chain.x2();
        let mac = cmac_aes128(&mac_key(b"commit", &c_bytes), &w2);
        self.w_chain = Some(chain);
        // Generate the DH key pair "in the meantime" (Eq. 5).
        self.keys = Some(self.group.generate(entropy));
        SakeMessage::Commit { w2, mac }
    }

    /// Handles the verifier's `v₁` reveal; returns the device reveal.
    pub fn on_reveal_v1(&mut self, v1: [u8; 32]) -> Result<SakeMessage> {
        let v2 = self
            .v2
            .ok_or_else(|| SageError::Protocol("reveal before challenge".into()))?;
        if !HashChain::verify_link(&v2, &v1) {
            return Err(SageError::ChainFailure("v1 does not hash to v2"));
        }
        let chain = self.w_chain.as_ref().expect("set on challenge");
        let keys = self.keys.as_ref().expect("set on challenge");
        let k = keys.public.to_bytes_be();
        let mac_k = cmac_aes128(&mac_key(b"dh-public", chain.x0()), &k);
        Ok(SakeMessage::DeviceReveal1 {
            w1: *chain.x1(),
            k,
            mac_k,
        })
    }

    /// Handles the verifier's `v₀` reveal; returns the final device
    /// reveal and establishes the key.
    pub fn on_reveal_v0(&mut self, v0: Vec<u8>) -> Result<SakeMessage> {
        let v2 = self
            .v2
            .ok_or_else(|| SageError::Protocol("final reveal out of order".into()))?;
        // v1 = H(H(v0)) chain check: H(v0) must hash to v2 through v1.
        // We verified v1 against v2 already; check H(H(v0)) == v2 to bind
        // v0 to the chain without storing v1.
        let v1 = sha256(&sha256(&v0));
        if v1 != v2 {
            return Err(SageError::ChainFailure("v0 does not chain to v2"));
        }
        let v0_big = BigUint::from_bytes_be(&v0);
        if !self.group.valid_public(&v0_big) {
            return Err(SageError::BadPublicKey);
        }
        let keys = self.keys.as_ref().expect("set on challenge");
        let shared = self.group.shared_secret(keys, &v0_big);
        self.sk = Some(self.group.derive_key(&shared));
        let chain = self.w_chain.as_ref().expect("set on challenge");
        Ok(SakeMessage::DeviceReveal0 { w0: *chain.x0() })
    }

    /// The established key, if the protocol completed.
    pub fn session_key(&self) -> Option<[u8; 16]> {
        self.sk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entropy(seed: u8) -> impl sage_crypto::EntropySource {
        let mut state = seed;
        move |buf: &mut [u8]| {
            for b in buf {
                state = state.wrapping_mul(181).wrapping_add(101);
                *b = state;
            }
        }
    }

    /// Drives the protocol with a fixed fake checksum (the GPU part is
    /// tested at the integration level).
    fn run_protocol(
        tamper: impl Fn(usize, &mut SakeMessage),
    ) -> (Result<()>, SakeVerifier, SakeDevice) {
        let group = DhGroup::test_group();
        let mut ve = entropy(1);
        let mut de = entropy(2);
        let (mut v, mut msg) = SakeVerifier::start(group.clone(), &mut ve);
        let mut d = SakeDevice::new(group);
        let c = [7u32, 6, 5, 4, 3, 2, 1, 0];

        let result = (|| {
            tamper(0, &mut msg);
            let SakeMessage::Challenge { v2 } = msg else {
                return Err(SageError::Protocol("bad flow".into()));
            };
            v.set_expected_checksum(c);
            let mut m1 = d.on_challenge(v2, c, &mut de);
            tamper(1, &mut m1);
            let SakeMessage::Commit { w2, mac } = m1 else {
                return Err(SageError::Protocol("bad flow".into()));
            };
            let mut m2 = v.on_commit(w2, mac)?;
            tamper(2, &mut m2);
            let SakeMessage::RevealV1 { v1 } = m2 else {
                return Err(SageError::Protocol("bad flow".into()));
            };
            let mut m3 = d.on_reveal_v1(v1)?;
            tamper(3, &mut m3);
            let SakeMessage::DeviceReveal1 { w1, k, mac_k } = m3 else {
                return Err(SageError::Protocol("bad flow".into()));
            };
            let mut m4 = v.on_device_reveal1(w1, k, mac_k)?;
            tamper(4, &mut m4);
            let SakeMessage::RevealV0 { v0 } = m4 else {
                return Err(SageError::Protocol("bad flow".into()));
            };
            let mut m5 = d.on_reveal_v0(v0)?;
            tamper(5, &mut m5);
            let SakeMessage::DeviceReveal0 { w0 } = m5 else {
                return Err(SageError::Protocol("bad flow".into()));
            };
            v.on_device_reveal0(w0)
        })();
        (result, v, d)
    }

    #[test]
    fn honest_run_agrees_on_key() {
        let (result, v, d) = run_protocol(|_, _| {});
        result.unwrap();
        let vk = v.session_key().unwrap();
        let dk = d.session_key().unwrap();
        assert_eq!(vk, dk);
        assert_ne!(vk, [0u8; 16]);
    }

    #[test]
    fn distinct_sessions_distinct_keys() {
        let (r1, v1, _) = run_protocol(|_, _| {});
        let (r2, v2, _) = run_protocol(|_, _| {});
        r1.unwrap();
        r2.unwrap();
        // Same deterministic test entropy → same key; so instead check
        // that changing the checksum changes the transcript: covered in
        // wrong_checksum_rejected. Here assert keys are well-formed.
        assert_eq!(v1.session_key().unwrap(), v2.session_key().unwrap());
    }

    #[test]
    fn wrong_checksum_rejected() {
        // The device computes a different checksum than the verifier's
        // replay (i.e. the VF was tampered with): the commitment MAC
        // fails.
        let group = DhGroup::test_group();
        let mut ve = entropy(1);
        let mut de = entropy(2);
        let (mut v, msg) = SakeVerifier::start(group.clone(), &mut ve);
        let mut d = SakeDevice::new(group);
        let SakeMessage::Challenge { v2 } = msg else {
            unreachable!()
        };
        v.set_expected_checksum([1; 8]);
        let SakeMessage::Commit { w2, mac } = d.on_challenge(v2, [2; 8], &mut de) else {
            unreachable!()
        };
        assert_eq!(
            v.on_commit(w2, mac),
            Err(SageError::MacFailure("device commitment"))
        );
    }

    #[test]
    fn tampered_commit_rejected() {
        let (result, _, _) = run_protocol(|step, msg| {
            if step == 1 {
                if let SakeMessage::Commit { w2, .. } = msg {
                    w2[0] ^= 1;
                }
            }
        });
        assert!(matches!(result, Err(SageError::MacFailure(_))));
    }

    #[test]
    fn tampered_v1_rejected_by_device() {
        let (result, _, _) = run_protocol(|step, msg| {
            if step == 2 {
                if let SakeMessage::RevealV1 { v1 } = msg {
                    v1[5] ^= 0x10;
                }
            }
        });
        assert!(matches!(result, Err(SageError::ChainFailure(_))));
    }

    #[test]
    fn substituted_dh_key_rejected() {
        // A MITM replacing the device's DH public value is caught when
        // w0 is revealed (the MAC was keyed by w0).
        let (result, _, _) = run_protocol(|step, msg| {
            if step == 3 {
                if let SakeMessage::DeviceReveal1 { k, .. } = msg {
                    k[0] ^= 1;
                }
            }
        });
        assert!(matches!(result, Err(SageError::MacFailure(_))));
    }

    #[test]
    fn tampered_v0_rejected_by_device() {
        let (result, _, _) = run_protocol(|step, msg| {
            if step == 4 {
                if let SakeMessage::RevealV0 { v0 } = msg {
                    v0[0] ^= 1;
                }
            }
        });
        assert!(matches!(result, Err(SageError::ChainFailure(_))));
    }

    #[test]
    fn tampered_w0_rejected() {
        let (result, _, _) = run_protocol(|step, msg| {
            if step == 5 {
                if let SakeMessage::DeviceReveal0 { w0 } = msg {
                    w0[31] ^= 2;
                }
            }
        });
        assert!(matches!(result, Err(SageError::ChainFailure(_))));
    }

    #[test]
    fn challenge_derivation_is_deterministic_and_distinct() {
        let a = derive_challenges(&[1u8; 32], 4);
        let b = derive_challenges(&[1u8; 32], 4);
        let c = derive_challenges(&[2u8; 32], 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 4);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn batched_derivation_matches_per_block_keystream() {
        // The batched keystream_into derivation must be bit-exact with
        // the original one-call-per-block expansion.
        let v2 = [0x5au8; 32];
        let blocks = 7u32;
        let derived = derive_challenges(&v2, blocks);
        let key: [u8; 16] = v2[..16].try_into().unwrap();
        let iv: [u8; 16] = v2[16..].try_into().unwrap();
        let mut ctr = AesCtr::new(&key, &iv);
        let reference: Vec<[u8; 16]> = (0..blocks)
            .map(|_| ctr.keystream_bytes(16).try_into().unwrap())
            .collect();
        assert_eq!(derived, reference);
    }
}
