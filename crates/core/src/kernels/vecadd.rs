//! Element-wise vector addition: `out[i] = a[i] + b[i]`.

use sage_isa::{CmpOp, CtrlInfo, Pred, PredReg, Program, ProgramBuilder, Reg, SpecialReg};

/// Element type of the vector-add kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Elem {
    /// 32-bit unsigned integers.
    U32,
    /// IEEE-754 single precision.
    F32,
}

fn s4() -> CtrlInfo {
    CtrlInfo::stall(4).with_yield()
}

/// Builds the vector-add kernel.
///
/// Parameter block: `[a_base, b_base, out_base, n]`. Launch with
/// `grid_dim * block_dim >= n` threads and 16 registers.
pub fn vecadd_kernel(elem: Elem) -> Program {
    let mut b = ProgramBuilder::new();
    // Parameter loads.
    for (i, reg) in [(0u32, Reg(1)), (1, Reg(2)), (2, Reg(3)), (3, Reg(4))] {
        b.ctrl(CtrlInfo::stall(1).with_write_bar(i as u8));
        b.ldg(reg, Reg(0), 4 * i);
    }
    b.ctrl(s4());
    b.s2r(Reg(5), SpecialReg::TidX);
    b.ctrl(s4());
    b.s2r(Reg(6), SpecialReg::CtaIdX);
    b.ctrl(s4());
    b.s2r(Reg(7), SpecialReg::NTidX);
    b.ctrl(s4());
    b.imad(Reg(8), Reg(6), Reg(7).into(), Reg(5)); // gid
    let mut c = s4();
    c.wait_mask = 0b1111;
    b.ctrl(c);
    b.isetp(PredReg(0), CmpOp::Ge, Reg(8), Reg(4).into());
    b.pred(Pred::on(PredReg(0)));
    b.exit(); // out-of-range lanes retire

    b.ctrl(s4());
    b.lea(Reg(9), Reg(8), Reg(1).into(), 2);
    b.ctrl(s4());
    b.lea(Reg(10), Reg(8), Reg(2).into(), 2);
    b.ctrl(s4());
    b.lea(Reg(11), Reg(8), Reg(3).into(), 2);
    b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
    b.ldg(Reg(12), Reg(9), 0);
    b.ctrl(CtrlInfo::stall(1).with_write_bar(1));
    b.ldg(Reg(13), Reg(10), 0);
    let mut c = s4();
    c.wait_mask = 0b11;
    b.ctrl(c);
    match elem {
        Elem::U32 => {
            b.iadd3(Reg(14), Reg(12), Reg(13).into(), Reg::RZ);
        }
        Elem::F32 => {
            b.fadd(Reg(14), Reg(12), Reg(13).into());
        }
    }
    b.ctrl(s4());
    b.stg(Reg(11), 0, Reg(14));
    b.exit();
    b.build().expect("no unresolved labels")
}

/// Registers per thread the kernel needs.
pub const VECADD_REGS: u32 = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::load_kernel;
    use sage_gpu_sim::{Device, DeviceConfig, LaunchParams};

    fn run(elem: Elem, a: &[u32], bvals: &[u32]) -> Vec<u32> {
        let n = a.len() as u32;
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        dev.set_hazard_check(true);
        let ctx = dev.create_context();
        let abuf = dev.alloc(4 * n).unwrap();
        let bbuf = dev.alloc(4 * n).unwrap();
        let obuf = dev.alloc(4 * n).unwrap();
        let bytes = |v: &[u32]| -> Vec<u8> { v.iter().flat_map(|w| w.to_le_bytes()).collect() };
        dev.memcpy_h2d(abuf, &bytes(a)).unwrap();
        dev.memcpy_h2d(bbuf, &bytes(bvals)).unwrap();
        let entry = load_kernel(&mut dev, &vecadd_kernel(elem)).unwrap();
        let (_, stats) = dev
            .run_single(LaunchParams {
                ctx,
                entry_pc: entry,
                grid_dim: n.div_ceil(64).max(1),
                block_dim: 64,
                regs_per_thread: VECADD_REGS,
                smem_bytes: 0,
                params: vec![abuf, bbuf, obuf, n],
            })
            .unwrap();
        assert_eq!(stats.hazard_violations, 0);
        let out = dev.memcpy_d2h(obuf, 4 * n).unwrap();
        out.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn u32_addition() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 7).collect();
        let out = run(Elem::U32, &a, &b);
        for i in 0..100 {
            assert_eq!(out[i], a[i] + b[i], "element {i}");
        }
    }

    #[test]
    fn f32_addition() {
        let a: Vec<u32> = (0..64).map(|i| (i as f32 * 0.5).to_bits()).collect();
        let b: Vec<u32> = (0..64).map(|i| (i as f32 * 0.25).to_bits()).collect();
        let out = run(Elem::F32, &a, &b);
        for (i, &word) in out.iter().enumerate() {
            assert_eq!(f32::from_bits(word), i as f32 * 0.75, "element {i}");
        }
    }

    #[test]
    fn ragged_length_handled_by_guard() {
        // n = 37 with 64-thread blocks: 27 lanes exit early.
        let a: Vec<u32> = (0..37).collect();
        let b: Vec<u32> = (0..37).map(|i| 1000 - i).collect();
        let out = run(Elem::U32, &a, &b);
        assert!(out.iter().all(|&v| v == 1000));
    }
}
