//! Block-wise tree reduction (sum) in shared memory — the classic GPU
//! reduction pattern, exercising `LDS`/`STS`/`BAR.SYNC` and divergent
//! strides under the simulator.
//!
//! Each block loads `block_dim` elements, reduces them in shared memory
//! with a halving-stride tree, and the block leader atomically adds the
//! block total into the global accumulator.

use sage_isa::{CmpOp, CtrlInfo, Operand, Pred, PredReg, Program, ProgramBuilder, Reg, SpecialReg};

fn s4() -> CtrlInfo {
    CtrlInfo::stall(4).with_yield()
}

/// Builds the u32 sum-reduction kernel.
///
/// Parameter block: `[in_base, out_addr, n]`. Launch with
/// `grid_dim * block_dim >= n`, [`REDUCE_REGS`] registers and
/// `4 * block_dim` bytes of shared memory. `out_addr` must be zeroed
/// beforehand. `block_dim` must be a power of two.
pub fn reduce_sum_kernel(block_dim: u32) -> Program {
    assert!(block_dim.is_power_of_two() && block_dim >= 32);
    let mut b = ProgramBuilder::new();
    for (i, reg) in [(0u32, Reg(1)), (1, Reg(2)), (2, Reg(3))] {
        b.ctrl(CtrlInfo::stall(1).with_write_bar(i as u8));
        b.ldg(reg, Reg(0), 4 * i);
    }
    b.ctrl(s4());
    b.s2r(Reg(4), SpecialReg::TidX);
    b.ctrl(s4());
    b.s2r(Reg(5), SpecialReg::CtaIdX);
    b.ctrl(s4());
    b.s2r(Reg(6), SpecialReg::NTidX);
    b.ctrl(s4());
    b.imad(Reg(7), Reg(5), Reg(6).into(), Reg(4)); // gid

    // value = gid < n ? in[gid] : 0
    let mut c = s4();
    c.wait_mask = 0b111;
    b.ctrl(c);
    b.isetp(PredReg(0), CmpOp::Lt, Reg(7), Reg(3).into());
    b.ctrl(s4());
    b.mov(Reg(8), Operand::Imm(0));
    b.ctrl(s4());
    b.lea(Reg(9), Reg(7), Reg(1).into(), 2);
    b.pred(Pred::on(PredReg(0)));
    b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
    b.ldg(Reg(8), Reg(9), 0);

    // smem[tid] = value
    let mut c = s4();
    c.wait_mask = 0b1;
    b.ctrl(c);
    b.lea(Reg(10), Reg(4), Operand::Imm(0), 2); // 4*tid
    b.ctrl(s4());
    b.sts(Reg(10), 0, Reg(8));
    b.bar_sync();

    // Tree reduction: for stride = block_dim/2 .. 1 (compile-time
    // unrolled — strides are powers of two).
    let mut stride = block_dim / 2;
    while stride >= 1 {
        // if tid < stride: smem[tid] += smem[tid + stride]
        b.ctrl(s4());
        b.isetp(PredReg(1), CmpOp::Lt, Reg(4), Operand::Imm(stride));
        b.pred(Pred::on(PredReg(1)));
        b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
        b.lds(Reg(11), Reg(10), 4 * stride);
        b.pred(Pred::on(PredReg(1)));
        let mut c = CtrlInfo::stall(1).with_write_bar(1);
        c = c.with_wait(0);
        b.ctrl(c);
        b.lds(Reg(12), Reg(10), 0);
        b.pred(Pred::on(PredReg(1)));
        let mut c = s4();
        c.wait_mask = 0b10;
        b.ctrl(c);
        b.iadd3(Reg(12), Reg(12), Reg(11).into(), Reg::RZ);
        b.pred(Pred::on(PredReg(1)));
        b.ctrl(s4());
        b.sts(Reg(10), 0, Reg(12));
        b.bar_sync();
        stride /= 2;
    }

    // tid 0: atomically add the block total to out.
    b.ctrl(s4());
    b.isetp(PredReg(2), CmpOp::Eq, Reg(4), Operand::Imm(0));
    b.pred(Pred::on(PredReg(2)));
    b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
    b.lds(Reg(13), Reg::RZ, 0);
    b.pred(Pred::on(PredReg(2)));
    let mut c = s4();
    c.wait_mask = 0b1;
    b.ctrl(c);
    b.atomg_add(Reg(2), 0, Reg(13));
    b.exit();
    b.build().expect("no unresolved labels")
}

/// Registers per thread the kernel needs.
pub const REDUCE_REGS: u32 = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::load_kernel;
    use sage_gpu_sim::{Device, DeviceConfig, LaunchParams};

    fn run_reduce(data: &[u32], block_dim: u32) -> u32 {
        let n = data.len() as u32;
        let mut dev = Device::new(DeviceConfig::sim_small());
        dev.set_hazard_check(true);
        let ctx = dev.create_context();
        let inbuf = dev.alloc(4 * n).unwrap();
        let out = dev.alloc(4).unwrap();
        let bytes: Vec<u8> = data.iter().flat_map(|w| w.to_le_bytes()).collect();
        dev.memcpy_h2d(inbuf, &bytes).unwrap();
        dev.memcpy_h2d(out, &[0u8; 4]).unwrap();
        let entry = load_kernel(&mut dev, &reduce_sum_kernel(block_dim)).unwrap();
        let (_, stats) = dev
            .run_single(LaunchParams {
                ctx,
                entry_pc: entry,
                grid_dim: n.div_ceil(block_dim).max(1),
                block_dim,
                regs_per_thread: REDUCE_REGS,
                smem_bytes: 4 * block_dim,
                params: vec![inbuf, out, n],
            })
            .unwrap();
        assert_eq!(stats.hazard_violations, 0);
        let raw = dev.memcpy_d2h(out, 4).unwrap();
        u32::from_le_bytes(raw.try_into().unwrap())
    }

    #[test]
    fn sums_exact_multiple_of_block() {
        let data: Vec<u32> = (1..=256).collect();
        assert_eq!(run_reduce(&data, 64), (1..=256).sum::<u32>());
    }

    #[test]
    fn sums_ragged_tail() {
        let data: Vec<u32> = (0..137).map(|i| i * 3 + 1).collect();
        let expect: u32 = data.iter().sum();
        assert_eq!(run_reduce(&data, 64), expect);
    }

    #[test]
    fn sums_single_block_of_32() {
        let data: Vec<u32> = vec![7; 32];
        assert_eq!(run_reduce(&data, 32), 224);
    }

    #[test]
    fn wrapping_sums() {
        let data = vec![u32::MAX, 2, 5];
        assert_eq!(run_reduce(&data, 32), 6); // wraps mod 2^32
    }

    #[test]
    #[should_panic(expected = "power_of_two")]
    fn non_power_of_two_block_rejected() {
        let _ = reduce_sum_kernel(48);
    }
}
