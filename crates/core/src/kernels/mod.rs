//! User kernels as native microcode for the simulated GPU.
//!
//! These are the workloads SAGE protects: a quickstart vector add, the
//! §7.4 matrix-multiply benchmark, and a full SHA-256 used to measure the
//! user kernel *on the device* (`h = H(r ‖ code)`, Eq. 9).
//!
//! All kernel builders produce position-independent [`Program`]s with
//! label-based control flow; the loader relocates them to their device
//! address with [`Program::relocate`]. Parameters follow the launch ABI:
//! `R0` holds the address of a parameter block of 32-bit words.

pub mod matmul;
pub mod reduce;
pub mod sha256_dev;
pub mod vecadd;

pub use matmul::{matmul_host, matmul_kernel, MATMUL_REGS};
pub use reduce::{reduce_sum_kernel, REDUCE_REGS};
pub use sha256_dev::{sha256_kernel, sha256_pad};
pub use vecadd::{vecadd_kernel, VECADD_REGS};

use sage_gpu_sim::{ContextId, Device, LaunchParams};
use sage_isa::Program;

use crate::error::Result;

/// Loads a relocatable kernel at a fresh device allocation and returns
/// its entry address.
pub fn load_kernel(dev: &mut Device, prog: &Program) -> Result<u32> {
    let mut prog = prog.clone();
    let base = dev.alloc(prog.byte_len() as u32)?;
    prog.relocate(base);
    dev.memcpy_h2d(base, &prog.encode())?;
    Ok(base)
}

/// Convenience launch descriptor for the kernels in this module.
#[derive(Clone, Debug)]
pub struct KernelLaunch {
    /// Entry PC (from [`load_kernel`]).
    pub entry_pc: u32,
    /// Grid dimension.
    pub grid_dim: u32,
    /// Block dimension.
    pub block_dim: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory per block.
    pub smem_bytes: u32,
    /// Parameter words.
    pub params: Vec<u32>,
}

impl KernelLaunch {
    /// Converts into simulator launch parameters for `ctx`.
    pub fn into_launch(self, ctx: ContextId) -> LaunchParams {
        LaunchParams {
            ctx,
            entry_pc: self.entry_pc,
            grid_dim: self.grid_dim,
            block_dim: self.block_dim,
            regs_per_thread: self.regs_per_thread,
            smem_bytes: self.smem_bytes,
            params: self.params,
        }
    }
}
