//! Dense single-precision matrix multiplication `C = A × B` — the user
//! kernel of the paper's §7.4 benchmark (Table 2).
//!
//! Mapping: one thread per output element; block `cta` computes row
//! `cta`, thread `tid` computes column `tid` (so `n ≤ block_dim` and
//! `grid_dim = n`). The inner product runs a counted loop of
//! `LDG/LDG/FFMA` with pointer bumping.

use sage_isa::{CmpOp, CtrlInfo, Operand, Pred, PredReg, Program, ProgramBuilder, Reg, SpecialReg};

fn s4() -> CtrlInfo {
    CtrlInfo::stall(4).with_yield()
}

/// Builds the matmul kernel.
///
/// Parameter block: `[a_base, b_base, c_base, n]` (row-major f32).
/// Launch with `grid_dim = n`, `block_dim = n.next_multiple_of(32)` and
/// [`MATMUL_REGS`] registers.
pub fn matmul_kernel() -> Program {
    let mut b = ProgramBuilder::new();
    for (i, reg) in [(0u32, Reg(1)), (1, Reg(2)), (2, Reg(3)), (3, Reg(4))] {
        b.ctrl(CtrlInfo::stall(1).with_write_bar(i as u8));
        b.ldg(reg, Reg(0), 4 * i);
    }
    b.ctrl(s4());
    b.s2r(Reg(5), SpecialReg::TidX); // column
    b.ctrl(s4());
    b.s2r(Reg(6), SpecialReg::CtaIdX); // row
    let mut c = s4();
    c.wait_mask = 0b1111;
    b.ctrl(c);
    b.isetp(PredReg(0), CmpOp::Ge, Reg(5), Reg(4).into());
    b.pred(Pred::on(PredReg(0)));
    b.exit(); // columns beyond n retire

    // Row pointer: A + 4·n·row.
    b.ctrl(s4());
    b.imad(Reg(9), Reg(4), Reg(6).into(), Reg::RZ);
    b.ctrl(s4());
    b.lea(Reg(9), Reg(9), Reg(1).into(), 2);
    // Column pointer: B + 4·col.
    b.ctrl(s4());
    b.lea(Reg(10), Reg(5), Reg(2).into(), 2);
    // acc = 0.0, k = 0.
    b.ctrl(s4());
    b.mov(Reg(14), Operand::Imm(0));
    b.ctrl(s4());
    b.mov(Reg(7), Operand::Imm(0));

    b.label("kloop");
    b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
    b.ldg(Reg(12), Reg(9), 0); // A[row][k]
    b.ctrl(CtrlInfo::stall(1).with_write_bar(1));
    b.ldg(Reg(13), Reg(10), 0); // B[k][col]
                                // Bump pointers while the loads are in flight.
    b.ctrl(s4());
    b.iadd3(Reg(9), Reg(9), Operand::Imm(4), Reg::RZ);
    b.ctrl(s4());
    b.lea(Reg(10), Reg(4), Reg(10).into(), 2); // += 4·n
    b.ctrl(s4());
    b.iadd3(Reg(7), Reg(7), Operand::Imm(1), Reg::RZ);
    let mut c = s4();
    c.wait_mask = 0b11;
    b.ctrl(c);
    b.ffma(Reg(14), Reg(12), Reg(13).into(), Reg(14));
    b.ctrl(s4());
    b.isetp(PredReg(1), CmpOp::Lt, Reg(7), Reg(4).into());
    b.pred(Pred::on(PredReg(1)));
    b.bra("kloop");

    // C[row][col] = acc.
    b.ctrl(s4());
    b.imad(Reg(11), Reg(4), Reg(6).into(), Reg(5));
    b.ctrl(s4());
    b.lea(Reg(11), Reg(11), Reg(3).into(), 2);
    b.ctrl(s4());
    b.stg(Reg(11), 0, Reg(14));
    b.exit();
    b.build().expect("labels resolve")
}

/// Registers per thread the kernel needs.
pub const MATMUL_REGS: u32 = 16;

/// Host reference implementation (row-major f32).
pub fn matmul_host(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                // Match the kernel's FFMA accumulation order: the device
                // accumulates over k sequentially per (i, j); f32 addition
                // is not associative, so the host must use the same
                // order. The loop nest below computes the same sums as
                // `for j { for k { fma } }`.
                c[i * n + j] = aik.mul_add(b[k * n + j], c[i * n + j]);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::load_kernel;
    use sage_gpu_sim::{Device, DeviceConfig, LaunchParams};

    fn run_device_matmul(a: &[f32], b: &[f32], n: usize) -> (Vec<f32>, u64) {
        let mut dev = Device::new(DeviceConfig::sim_small());
        dev.set_hazard_check(true);
        let ctx = dev.create_context();
        let bytes =
            |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|w| w.to_bits().to_le_bytes()).collect() };
        let abuf = dev.alloc((4 * n * n) as u32).unwrap();
        let bbuf = dev.alloc((4 * n * n) as u32).unwrap();
        let cbuf = dev.alloc((4 * n * n) as u32).unwrap();
        dev.memcpy_h2d(abuf, &bytes(a)).unwrap();
        dev.memcpy_h2d(bbuf, &bytes(b)).unwrap();
        let entry = load_kernel(&mut dev, &matmul_kernel()).unwrap();
        let (report, stats) = dev
            .run_single(LaunchParams {
                ctx,
                entry_pc: entry,
                grid_dim: n as u32,
                block_dim: (n as u32).div_ceil(32) * 32,
                regs_per_thread: MATMUL_REGS,
                smem_bytes: 0,
                params: vec![abuf, bbuf, cbuf, n as u32],
            })
            .unwrap();
        assert_eq!(stats.hazard_violations, 0);
        let raw = dev.memcpy_d2h(cbuf, (4 * n * n) as u32).unwrap();
        let out = raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
            .collect();
        (out, report.completion_cycle)
    }

    fn test_matrices(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n * n)
            .map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.25)
            .collect();
        let b: Vec<f32> = (0..n * n)
            .map(|i| ((i * 13 % 19) as f32 - 9.0) * 0.5)
            .collect();
        (a, b)
    }

    #[test]
    fn matches_host_reference_exactly() {
        let n = 32;
        let (a, b) = test_matrices(n);
        let (device, _) = run_device_matmul(&a, &b, n);
        let host = matmul_host(&a, &b, n);
        assert_eq!(device, host, "bit-exact FFMA accumulation expected");
    }

    #[test]
    fn non_multiple_of_32_size() {
        let n = 48;
        let (a, b) = test_matrices(n);
        let (device, _) = run_device_matmul(&a, &b, n);
        let host = matmul_host(&a, &b, n);
        assert_eq!(device, host);
    }

    #[test]
    fn identity_matrix() {
        let n = 32;
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let (_, b) = test_matrices(n);
        let (device, _) = run_device_matmul(&a, &b, n);
        assert_eq!(device, b);
    }

    #[test]
    fn cycles_grow_with_size() {
        let (a32, b32) = test_matrices(32);
        let (_, c32) = run_device_matmul(&a32, &b32, 32);
        let (a64, b64) = test_matrices(64);
        let (_, c64) = run_device_matmul(&a64, &b64, 64);
        assert!(c64 > c32, "{c64} vs {c32}");
    }
}
