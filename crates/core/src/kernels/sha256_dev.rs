//! SHA-256 as native GPU microcode — the measurement kernel behind the
//! user-kernel authenticity check `h = H(r ‖ code)` (paper §5.2.3,
//! Eq. 9), which the VF runs *on the device* after root-of-trust
//! establishment.
//!
//! Implementation notes:
//! - fully unrolled 64-round compression, with the classic register
//!   renaming trick (no `a..h` moves: round `r` addresses the state
//!   registers rotated by `r mod 8`);
//! - the 16-word message schedule lives in `R16..R31` as a ring buffer
//!   with compile-time indices;
//! - chaining state `H0..H7` lives in shared memory across blocks;
//! - round constants are immediates (no table loads);
//! - input words are byte-swapped with two rotates and three `LOP3`s
//!   (SHA-256 is big-endian, the device memory is little-endian).
//!
//! Every thread of the single launched warp computes the same digest;
//! the stores are idempotent.

use sage_crypto::sha256::{H0, K};
use sage_isa::{op::lut, CmpOp, CtrlInfo, Operand, Pred, PredReg, Program, ProgramBuilder, Reg};

const R_MSG: Reg = Reg(1); // current block pointer
const R_NBLK: Reg = Reg(2); // blocks remaining
const R_OUT: Reg = Reg(3); // digest output address
const R_K: Reg = Reg(4); // round constant / scratch
const R_T1: Reg = Reg(5);
const R_T2: Reg = Reg(6);
const R_T3: Reg = Reg(7);
/// Working state `a..h` (rotating) in `R8..R15`.
const R_STATE: u8 = 8;
/// Message schedule ring `w0..w15` in `R16..R31`.
const R_W: u8 = 16;

fn s4() -> CtrlInfo {
    CtrlInfo::stall(4).with_yield()
}

/// Physical register of logical state variable `v` (0 = a … 7 = h) in
/// round `r`.
fn state_reg(v: usize, r: usize) -> Reg {
    Reg(R_STATE + ((v + 8 - (r % 8)) % 8) as u8)
}

fn w_reg(i: usize) -> Reg {
    Reg(R_W + (i % 16) as u8)
}

/// Emits `dst = rotate_right(src, n)` (via the funnel shifter).
fn emit_rotr(b: &mut ProgramBuilder, dst: Reg, src: Reg, n: u32) {
    // rotr(n) == rotl(32 - n); SHF.L with c == a is a rotate-left.
    b.ctrl(s4());
    b.shf_l(dst, src, Operand::Imm(32 - n), src);
}

/// Emits `dst ^= src`.
fn emit_xor_into(b: &mut ProgramBuilder, dst: Reg, src: Reg) {
    b.ctrl(s4());
    b.lop3(dst, dst, src.into(), Reg::RZ, lut::XOR_AB);
}

/// Emits a 32-bit byte swap of `reg` (clobbers `t1`, `t2`):
/// `bswap(x) = (rotl(x, 8) & 0x00FF00FF) | (rotl(x, 24) & 0xFF00FF00)`.
fn emit_bswap(b: &mut ProgramBuilder, reg: Reg, t1: Reg, t2: Reg) {
    b.ctrl(s4());
    b.shf_l(t1, reg, Operand::Imm(8), reg);
    b.ctrl(s4());
    b.shf_l(t2, reg, Operand::Imm(24), reg);
    b.ctrl(s4());
    b.lop3(t1, t1, Operand::Imm(0x00FF_00FF), Reg::RZ, lut::AND_AB);
    b.ctrl(s4());
    b.lop3(t2, t2, Operand::Imm(0xFF00_FF00), Reg::RZ, lut::AND_AB);
    b.ctrl(s4());
    b.lop3(reg, t1, t2.into(), Reg::RZ, lut::OR_AB);
}

/// `LOP3` look-up table for `ch(e, f, g) = (e & f) ^ (!e & g)` — the
/// bitwise mux `e ? f : g`.
const LUT_CH: u8 = 0xCA;
/// `LOP3` look-up table for `maj(a, b, c)`.
const LUT_MAJ: u8 = 0xE8;

/// Builds the SHA-256 kernel.
///
/// Parameter block: `[msg_addr, n_blocks, out_addr]`, where the message
/// is already padded ([`sha256_pad`]) and `n_blocks = padded_len / 64`.
/// Launch with one 32-thread block and [`SHA256_REGS`] registers and
/// [`SHA256_SMEM`] bytes of shared memory.
pub fn sha256_kernel() -> Program {
    let mut b = ProgramBuilder::new();
    // Parameters.
    for (i, reg) in [(0u32, R_MSG), (1, R_NBLK), (2, R_OUT)] {
        b.ctrl(CtrlInfo::stall(1).with_write_bar(i as u8));
        b.ldg(reg, Reg(0), 4 * i);
    }
    // Initialize the chaining state in shared memory.
    for (j, h) in H0.iter().enumerate() {
        b.ctrl(s4());
        b.mov(R_K, Operand::Imm(*h));
        b.ctrl(s4());
        b.sts(Reg::RZ, 4 * j as u32, R_K);
    }

    b.label("block_loop");
    // Load and byte-swap the 16 message words. Write barriers 0..5
    // rotate; re-arming a slot waits for its previous use first.
    for i in 0..16usize {
        let mut c = CtrlInfo::stall(1).with_write_bar((i % 6) as u8);
        if i >= 6 {
            c = c.with_wait((i % 6) as u8);
        }
        if i < 3 {
            // Parameter loads used barriers 0..2.
            c = c.with_wait(i as u8);
        }
        b.ctrl(c);
        b.ldg(w_reg(i), R_MSG, 4 * i as u32);
    }
    let mut c = s4();
    c.wait_mask = 0b11_1111;
    b.ctrl(c);
    b.nop(); // fence: all 16 words resident
    for i in 0..16usize {
        emit_bswap(&mut b, w_reg(i), R_T1, R_T2);
    }

    // Load working state a..h from shared memory. Round 0 has the
    // identity renaming, so logical v lives in R8+v.
    for v in 0..8usize {
        let mut c = CtrlInfo::stall(2).with_write_bar(0);
        b.ctrl(c);
        b.lds(state_reg(v, 0), Reg::RZ, 4 * v as u32);
        c = s4().with_wait(0);
        b.ctrl(c);
        b.nop();
    }

    // 64 unrolled rounds.
    for (r, &k) in K.iter().enumerate() {
        let (a, bb, cc, d, e, f, g, h) = (
            state_reg(0, r),
            state_reg(1, r),
            state_reg(2, r),
            state_reg(3, r),
            state_reg(4, r),
            state_reg(5, r),
            state_reg(6, r),
            state_reg(7, r),
        );
        if r >= 16 {
            // Schedule update:
            // w[r] = w[r-16] + s0(w[r-15]) + w[r-7] + s1(w[r-2]).
            let w = w_reg(r);
            let w15 = w_reg(r + 1);
            let w7 = w_reg(r + 9);
            let w2 = w_reg(r + 14);
            // s0 = rotr7 ^ rotr18 ^ shr3 (into T1).
            emit_rotr(&mut b, R_T1, w15, 7);
            emit_rotr(&mut b, R_T2, w15, 18);
            emit_xor_into(&mut b, R_T1, R_T2);
            b.ctrl(s4());
            b.shf_r(R_T2, w15, Operand::Imm(3), Reg::RZ);
            emit_xor_into(&mut b, R_T1, R_T2);
            // s1 = rotr17 ^ rotr19 ^ shr10 (into T2).
            emit_rotr(&mut b, R_T2, w2, 17);
            emit_rotr(&mut b, R_T3, w2, 19);
            emit_xor_into(&mut b, R_T2, R_T3);
            b.ctrl(s4());
            b.shf_r(R_T3, w2, Operand::Imm(10), Reg::RZ);
            emit_xor_into(&mut b, R_T2, R_T3);
            b.ctrl(s4());
            b.iadd3(w, w, R_T1.into(), w7);
            b.ctrl(s4());
            b.iadd3(w, w, R_T2.into(), Reg::RZ);
        }
        // S1(e) into T1.
        emit_rotr(&mut b, R_T1, e, 6);
        emit_rotr(&mut b, R_T2, e, 11);
        emit_xor_into(&mut b, R_T1, R_T2);
        emit_rotr(&mut b, R_T2, e, 25);
        emit_xor_into(&mut b, R_T1, R_T2);
        // ch(e, f, g) into T2.
        b.ctrl(s4());
        b.lop3(R_T2, e, f.into(), g, LUT_CH);
        // t1 = h + S1 + ch + K[r] + w[r].
        b.ctrl(s4());
        b.iadd3(R_T1, R_T1, R_T2.into(), h);
        b.ctrl(s4());
        b.mov(R_K, Operand::Imm(k));
        b.ctrl(s4());
        b.iadd3(R_T1, R_T1, R_K.into(), w_reg(r));
        // S0(a) into T2.
        emit_rotr(&mut b, R_T2, a, 2);
        emit_rotr(&mut b, R_T3, a, 13);
        emit_xor_into(&mut b, R_T2, R_T3);
        emit_rotr(&mut b, R_T3, a, 22);
        emit_xor_into(&mut b, R_T2, R_T3);
        // maj(a, b, c) into T3; t2 = S0 + maj.
        b.ctrl(s4());
        b.lop3(R_T3, a, bb.into(), cc, LUT_MAJ);
        b.ctrl(s4());
        b.iadd3(R_T2, R_T2, R_T3.into(), Reg::RZ);
        // d += t1; the old h register receives the new a = t1 + t2.
        b.ctrl(s4());
        b.iadd3(d, d, R_T1.into(), Reg::RZ);
        b.ctrl(s4());
        b.iadd3(h, R_T1, R_T2.into(), Reg::RZ);
    }

    // Add the working state back into the chaining state. After 64
    // rounds the renaming is the identity again (64 % 8 == 0).
    for v in 0..8usize {
        b.ctrl(CtrlInfo::stall(2).with_write_bar(0));
        b.lds(R_K, Reg::RZ, 4 * v as u32);
        b.ctrl(s4().with_wait(0));
        b.iadd3(R_K, R_K, state_reg(v, 0).into(), Reg::RZ);
        b.ctrl(s4());
        b.sts(Reg::RZ, 4 * v as u32, R_K);
    }

    // Next block.
    b.ctrl(s4());
    b.iadd3(R_MSG, R_MSG, Operand::Imm(64), Reg::RZ);
    b.ctrl(s4());
    b.iadd3(R_NBLK, R_NBLK, Operand::Imm(u32::MAX), Reg::RZ); // -= 1
    b.ctrl(s4());
    b.isetp(PredReg(0), CmpOp::Ne, R_NBLK, Operand::Imm(0));
    b.pred(Pred::on(PredReg(0)));
    b.bra("block_loop");

    // Emit the digest big-endian.
    for v in 0..8usize {
        b.ctrl(CtrlInfo::stall(2).with_write_bar(0));
        b.lds(R_K, Reg::RZ, 4 * v as u32);
        b.ctrl(s4().with_wait(0));
        b.nop();
        emit_bswap(&mut b, R_K, R_T1, R_T2);
        b.ctrl(s4());
        b.stg(R_OUT, 4 * v as u32, R_K);
    }
    b.exit();
    b.build().expect("labels resolve")
}

/// Registers per thread the kernel needs.
pub const SHA256_REGS: u32 = 32;

/// Shared memory bytes the kernel needs (8-word chaining state).
pub const SHA256_SMEM: u32 = 32;

/// Pads a message to full SHA-256 blocks (FIPS 180-4 §5.1.1): append
/// `0x80`, zeros, and the 64-bit big-endian bit length.
pub fn sha256_pad(msg: &[u8]) -> Vec<u8> {
    let mut out = msg.to_vec();
    let bit_len = (msg.len() as u64).wrapping_mul(8);
    out.push(0x80);
    while out.len() % 64 != 56 {
        out.push(0);
    }
    out.extend_from_slice(&bit_len.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::load_kernel;
    use sage_crypto::sha256;
    use sage_gpu_sim::{Device, DeviceConfig, LaunchParams};

    fn device_sha256(msg: &[u8]) -> [u8; 32] {
        let padded = sha256_pad(msg);
        let mut dev = Device::new(DeviceConfig::sim_small());
        dev.set_hazard_check(true);
        let ctx = dev.create_context();
        let mbuf = dev.alloc(padded.len() as u32).unwrap();
        let obuf = dev.alloc(32).unwrap();
        dev.memcpy_h2d(mbuf, &padded).unwrap();
        let entry = load_kernel(&mut dev, &sha256_kernel()).unwrap();
        let (_, stats) = dev
            .run_single(LaunchParams {
                ctx,
                entry_pc: entry,
                grid_dim: 1,
                block_dim: 32,
                regs_per_thread: SHA256_REGS,
                smem_bytes: SHA256_SMEM,
                params: vec![mbuf, (padded.len() / 64) as u32, obuf],
            })
            .unwrap();
        assert_eq!(stats.hazard_violations, 0, "SHA kernel must be hazard-free");
        let raw = dev.memcpy_d2h(obuf, 32).unwrap();
        raw.try_into().expect("32 bytes")
    }

    #[test]
    fn padding_structure() {
        let p = sha256_pad(b"abc");
        assert_eq!(p.len(), 64);
        assert_eq!(p[3], 0x80);
        assert_eq!(&p[56..], &(24u64).to_be_bytes());
        assert_eq!(sha256_pad(&[0u8; 64]).len(), 128);
        assert_eq!(sha256_pad(&[0u8; 55]).len(), 64);
        assert_eq!(sha256_pad(&[0u8; 56]).len(), 128);
    }

    #[test]
    fn device_digest_matches_host_abc() {
        assert_eq!(device_sha256(b"abc"), sha256(b"abc"));
    }

    #[test]
    fn device_digest_matches_host_empty() {
        assert_eq!(device_sha256(b""), sha256(b""));
    }

    #[test]
    fn device_digest_matches_host_multi_block() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        assert_eq!(device_sha256(&msg), sha256(&msg));
    }
}
