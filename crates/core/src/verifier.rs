//! The enclave-resident verifier: challenges, replay, timing verdicts,
//! key establishment and external attestation.

use sage_crypto::DhGroup;
use sage_sgx_sim::{Enclave, Quote};
use sage_telemetry::{Counter, Histogram, Registry};
use sage_vf::{
    codegen::VfBuild, expected_checksum, BankConfig, BankCounters, ChallengeBank, Fingerprint,
    ReplayPool,
};

use crate::{
    agent::DeviceAgent,
    channel::{Role, SecureChannel},
    error::{Result, SageError},
    sake::{derive_challenges, SakeMessage, SakeVerifier},
    session::GpuSession,
    timing::{Calibration, VerificationStats},
};

/// Result of a successful attestation + key establishment.
#[derive(Clone, Debug)]
pub struct AttestationOutcome {
    /// The established symmetric session key.
    pub session_key: [u8; 16],
    /// Measured checksum exchange time (cycles).
    pub measured_cycles: u64,
    /// The threshold it was checked against.
    pub threshold_cycles: u64,
}

/// A hook for adversarial message interposition in tests and the attack
/// harness: called with the flow step index and the in-flight message.
pub type MessageTap<'a> = &'a mut dyn FnMut(usize, &mut SakeMessage);

/// A transport closure carrying one challenge set to the device and
/// returning its `(checksum, measured_cycles)` answer — the seam that
/// lets [`Verifier::calibrate_with`] run over in-process sessions and
/// real sockets alike.
pub type ChecksumRun<'a> = &'a mut dyn FnMut(&[[u8; 16]]) -> Result<([u32; 8], u64)>;

/// Which verification path judged a response: the classic online-replay
/// path ([`Verifier::check_response`]) or the precomputed bank-hit fast
/// path ([`Verifier::check_response_precomputed`]). Telemetry labels
/// verdicts with this so the attack matrix can assert both paths reject.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VerdictPath {
    Classic,
    Precomputed,
}

impl VerdictPath {
    const ALL: [VerdictPath; 2] = [VerdictPath::Classic, VerdictPath::Precomputed];

    fn label(self) -> &'static str {
        match self {
            VerdictPath::Classic => "classic",
            VerdictPath::Precomputed => "precomputed",
        }
    }
}

/// Reject-cause labels, mirroring [`crate::error::SageError`]'s two
/// verdict failures.
const REJECT_CAUSES: [&str; 2] = ["wrong_value", "too_slow"];

/// Per-verifier telemetry instruments (cause × path labeled verdicts
/// plus the measured-cycles distribution).
struct VerifierTelemetry {
    /// Accepts by path.
    accepts: [Counter; 2],
    /// Rejects by `[cause][path]` (cause 0 = wrong_value, 1 = too_slow).
    rejects: [[Counter; 2]; 2],
    /// Every measured exchange time judged, accept or reject (cycles).
    measured: Histogram,
    /// Kept so a bank enabled *after* attachment still gets registered
    /// (see [`Verifier::enable_fast_path`]).
    registry: Registry,
    labels: Vec<(String, String)>,
}

impl VerifierTelemetry {
    fn new(reg: &Registry, labels: &[(&str, &str)]) -> VerifierTelemetry {
        let with = |extra: &[(&str, &str)]| -> Vec<(String, String)> {
            labels
                .iter()
                .chain(extra)
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        fn as_refs(owned: &[(String, String)]) -> Vec<(&str, &str)> {
            owned
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect()
        }
        let counter = |name: &str, extra: &[(&str, &str)]| {
            let owned = with(extra);
            reg.counter(name, &as_refs(&owned))
        };
        VerifierTelemetry {
            accepts: VerdictPath::ALL
                .map(|p| counter("verifier_accepts_total", &[("path", p.label())])),
            rejects: REJECT_CAUSES.map(|cause| {
                VerdictPath::ALL.map(|p| {
                    counter(
                        "verifier_rejects_total",
                        &[("cause", cause), ("path", p.label())],
                    )
                })
            }),
            measured: reg.histogram("verifier_measured_cycles", labels),
            registry: reg.clone(),
            labels: with(&[]),
        }
    }

    fn label_refs(&self) -> Vec<(&str, &str)> {
        self.labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect()
    }
}

/// The SAGE verifier, running inside the (simulated) enclave.
pub struct Verifier {
    /// The hosting enclave (nonce source, sealing, quotes).
    pub enclave: Enclave,
    build: VfBuild,
    fingerprint: Fingerprint,
    group: DhGroup,
    calibration: Option<Calibration>,
    stats: VerificationStats,
    bank: Option<ChallengeBank>,
    telemetry: Option<VerifierTelemetry>,
}

impl Verifier {
    /// Creates a verifier for an installed VF build.
    pub fn new(enclave: Enclave, build: VfBuild, group: DhGroup) -> Verifier {
        let fingerprint = build.fingerprint();
        Verifier {
            enclave,
            build,
            fingerprint,
            group,
            calibration: None,
            stats: VerificationStats::default(),
            bank: None,
            telemetry: None,
        }
    }

    /// Attaches this verifier to a telemetry registry: verdicts are
    /// exported as `verifier_accepts_total{path}` /
    /// `verifier_rejects_total{cause, path}` counters (cause ∈
    /// `wrong_value` | `too_slow`, path ∈ `classic` | `precomputed`)
    /// plus a `verifier_measured_cycles` histogram over every judged
    /// exchange time. When the fast path is enabled, the bank's
    /// counters are registered under the same labels too.
    pub fn attach_telemetry(&mut self, reg: &Registry, labels: &[(&str, &str)]) {
        self.telemetry = Some(VerifierTelemetry::new(reg, labels));
        if let Some(bank) = &self.bank {
            bank.register_telemetry(reg, labels);
        }
    }

    /// Fresh random per-block challenges from the enclave DRBG.
    pub fn generate_challenges(&mut self) -> Vec<[u8; 16]> {
        (0..self.build.params.grid_blocks)
            .map(|_| self.enclave.nonce16())
            .collect()
    }

    /// Turns on the precomputed-round fast path: a [`ChallengeBank`]
    /// stocked by `cfg.workers` background threads (or synchronously when
    /// `cfg.workers == 0` — the deterministic mode). Challenge bytes come
    /// from an AES-CTR generator seeded once from the enclave DRBG, so
    /// randomness still originates inside the enclave.
    ///
    /// After this, [`Verifier::prepare_round`] serves `(challenges,
    /// expected)` pairs whose replay already happened off the critical
    /// path; rounds that hit the bank skip replay entirely.
    pub fn enable_fast_path(&mut self, cfg: BankConfig) {
        let seed = self.enclave.random(32);
        let key: [u8; 16] = seed[..16].try_into().expect("16 bytes");
        let iv: [u8; 16] = seed[16..].try_into().expect("16 bytes");
        let mut ctr = sage_crypto::AesCtr::new(&key, &iv);
        let gen = Box::new(move |c: &mut [u8; 16]| ctr.keystream_into(c));
        let bank = ChallengeBank::new(self.build.clone(), cfg, gen);
        if let Some(t) = &self.telemetry {
            bank.register_telemetry(&t.registry, &t.label_refs());
        }
        self.bank = Some(bank);
    }

    /// Whether the precomputed fast path is active.
    pub fn fast_path_enabled(&self) -> bool {
        self.bank.is_some()
    }

    /// Bank hit/miss/refill counters, when the fast path is enabled.
    pub fn bank_counters(&self) -> Option<BankCounters> {
        self.bank.as_ref().map(|b| b.counters())
    }

    /// Synchronously precomputes up to `n` rounds into the bank (no-op
    /// without the fast path). With `workers == 0` this is the only way
    /// stock appears — deterministic tests and the offline phase of
    /// benchmarks use it.
    ///
    /// Every `(round, block)` replay is scheduled on the shared
    /// [`ReplayPool`] as one flat job list ([`ChallengeBank::fill_parallel`]),
    /// so prefill saturates the verifier host's cores instead of
    /// parallelizing only within one round at a time. The stocked
    /// sequence is identical to the round-serial fill.
    pub fn prefill_rounds(&mut self, n: usize) {
        if let Some(bank) = &self.bank {
            bank.fill_parallel(n, ReplayPool::global());
        }
    }

    /// Chaos hook: corrupts the stocked bank pair at `index` the way a
    /// host-memory fault would (payload changes, integrity tag doesn't).
    /// The bank detects the mismatch at take time and the round falls
    /// back to online replay — this hook exists so tests and the chaos
    /// soak can prove that. Returns `false` without the fast path or
    /// when no pair sits at `index`.
    pub fn corrupt_bank_stock(&self, index: usize) -> bool {
        self.bank
            .as_ref()
            .map(|b| b.corrupt_stock(index))
            .unwrap_or(false)
    }

    /// The fingerprint of this verifier's VF build.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Challenges for the next round, with the expected checksum attached
    /// when the bank had stock (`None` means the caller verifies via the
    /// replay path). Without the fast path — or when the bank is
    /// momentarily empty — this transparently degrades to
    /// [`Verifier::generate_challenges`]; no round is ever delayed.
    pub fn prepare_round(&mut self) -> (Vec<[u8; 16]>, Option<[u32; 8]>) {
        if let Some(bank) = &self.bank {
            if let Ok(Some(round)) = bank.take(&self.fingerprint) {
                return (round.challenges, Some(round.expected));
            }
        }
        (self.generate_challenges(), None)
    }

    /// Like [`Verifier::prepare_round`], but waits for (or synchronously
    /// computes) bank stock instead of falling back, so the expected
    /// checksum is always attached when the fast path is enabled. This
    /// keeps the consumed challenge sequence deterministic regardless of
    /// refill-worker timing — the property the service layer and
    /// calibration rely on for reproducible runs.
    pub fn prepare_round_blocking(&mut self) -> (Vec<[u8; 16]>, Option<[u32; 8]>) {
        if let Some(bank) = &self.bank {
            if let Ok(round) = bank.take_blocking(&self.fingerprint) {
                return (round.challenges, Some(round.expected));
            }
        }
        (self.generate_challenges(), None)
    }

    /// The expected checksum for a challenge set (bit-exact replay).
    pub fn expected(&self, challenges: &[[u8; 16]]) -> [u32; 8] {
        expected_checksum(&self.build, challenges)
    }

    /// Calibrates the timing threshold over `runs` checksum exchanges on
    /// a known-good device (paper §7.2: 100 runs, threshold
    /// `T_avg + 2.5σ`). Each run's checksum is also verified. With the
    /// fast path enabled, expected checksums are drawn from the bank
    /// (replay overlaps the device runs instead of serializing with
    /// them).
    pub fn calibrate(&mut self, session: &mut GpuSession, runs: usize) -> Result<Calibration> {
        self.calibrate_with(runs, &mut |ch| session.run_checksum(ch))
    }

    /// Transport-agnostic calibration: the `run` closure carries each
    /// challenge set to wherever the device lives (an in-process
    /// [`GpuSession`], or a socket) and returns the `(checksum,
    /// measured_cycles)` pair it produced. Verdict logic is identical to
    /// [`Verifier::calibrate`], which is a thin wrapper over this.
    pub fn calibrate_with(&mut self, runs: usize, run: ChecksumRun<'_>) -> Result<Calibration> {
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let (ch, precomputed) = self.prepare_round_blocking();
            let (got, measured) = run(&ch)?;
            let expected = precomputed.unwrap_or_else(|| self.expected(&ch));
            if got != expected {
                return Err(SageError::ChecksumMismatch { got, expected });
            }
            samples.push(measured);
        }
        let calibration = Calibration::try_from_samples(&samples)?;
        self.calibration = Some(calibration);
        Ok(calibration)
    }

    /// The current calibration, if any.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Installs an externally obtained calibration (e.g. from a golden
    /// reference of the same hardware configuration).
    pub fn set_calibration(&mut self, c: Calibration) {
        self.calibration = Some(c);
    }

    /// Seals the current calibration into the enclave's protected store,
    /// so a restarted verifier on the same platform can resume without
    /// re-measuring (sealing is bound to the enclave measurement).
    ///
    /// Returns `false` when no calibration exists yet.
    pub fn seal_calibration(&mut self) -> bool {
        let Some(c) = self.calibration else {
            return false;
        };
        let mut blob = Vec::with_capacity(8 * 3 + 8);
        blob.extend_from_slice(&c.t_avg.to_le_bytes());
        blob.extend_from_slice(&c.sigma.to_le_bytes());
        blob.extend_from_slice(&c.k_sigma.to_le_bytes());
        blob.extend_from_slice(&(c.runs as u64).to_le_bytes());
        self.enclave.seal("calibration", &blob);
        true
    }

    /// Restores a previously sealed calibration. Returns `false` if no
    /// valid sealed blob exists (missing or tampered).
    pub fn unseal_calibration(&mut self) -> bool {
        let Some(blob) = self.enclave.unseal("calibration") else {
            return false;
        };
        if blob.len() != 32 {
            return false;
        }
        let f =
            |r: core::ops::Range<usize>| f64::from_le_bytes(blob[r].try_into().expect("8 bytes"));
        let runs = u64::from_le_bytes(blob[24..32].try_into().expect("8 bytes"));
        self.calibration = Some(Calibration {
            t_avg: f(0..8),
            sigma: f(8..16),
            k_sigma: f(16..24),
            runs: runs as usize,
        });
        true
    }

    fn check_timing(&mut self, measured: u64, path: VerdictPath) -> Result<u64> {
        let calibration = self
            .calibration
            .ok_or_else(|| SageError::Protocol("verifier not calibrated".into()))?;
        if !calibration.accepts(measured) {
            self.stats.timing_rejects += 1;
            if let Some(t) = &self.telemetry {
                t.rejects[1][path as usize].inc();
            }
            return Err(SageError::TimingExceeded {
                measured,
                threshold: calibration.threshold(),
            });
        }
        Ok(calibration.threshold())
    }

    /// The calibrated detection threshold (`T_avg + k·σ`), if calibrated.
    pub fn threshold(&self) -> Option<u64> {
        self.calibration.map(|c| c.threshold())
    }

    /// Judges a checksum response that was produced elsewhere (e.g.
    /// received over a transport): replays the expected value for
    /// `challenges`, then applies the value and timing verdicts. Returns
    /// the threshold the measurement was checked against.
    ///
    /// This is the remote-verification hook the attestation service layer
    /// uses — [`Verifier::verify_once`] is the local, session-driving
    /// equivalent.
    pub fn check_response(
        &mut self,
        challenges: &[[u8; 16]],
        got: [u32; 8],
        measured: u64,
    ) -> Result<u64> {
        let expected = self.expected(challenges);
        self.judge(expected, got, measured, VerdictPath::Classic)
    }

    /// Judges a response against an already-known expected checksum (a
    /// bank hit): compare and timing check only, zero replay on the
    /// online critical path. This is the fast-path counterpart of
    /// [`Verifier::check_response`]; the verdicts are identical.
    pub fn check_response_precomputed(
        &mut self,
        expected: [u32; 8],
        got: [u32; 8],
        measured: u64,
    ) -> Result<u64> {
        self.judge(expected, got, measured, VerdictPath::Precomputed)
    }

    /// The shared verdict core: value compare, then timing check. Both
    /// public entry points funnel here so classic and precomputed
    /// verdicts are identical by construction — only the telemetry
    /// `path` label differs.
    fn judge(
        &mut self,
        expected: [u32; 8],
        got: [u32; 8],
        measured: u64,
        path: VerdictPath,
    ) -> Result<u64> {
        if let Some(t) = &self.telemetry {
            t.measured.record(measured);
        }
        if got != expected {
            self.stats.value_rejects += 1;
            if let Some(t) = &self.telemetry {
                t.rejects[0][path as usize].inc();
            }
            return Err(SageError::ChecksumMismatch { got, expected });
        }
        let threshold = self.check_timing(measured, path)?;
        self.stats.accepted += 1;
        if let Some(t) = &self.telemetry {
            t.accepts[path as usize].inc();
        }
        Ok(threshold)
    }

    /// One challenge–response verification round: fresh challenges, timed
    /// run, value and timing verdicts (the repeated invocation of Fig. 3,
    /// step 4). Uses a precomputed bank round when one is in stock,
    /// falling back to online replay transparently.
    pub fn verify_once(&mut self, session: &mut GpuSession) -> Result<u64> {
        let (ch, precomputed) = self.prepare_round();
        let (got, measured) = session.run_checksum(&ch)?;
        match precomputed {
            Some(expected) => self.check_response_precomputed(expected, got, measured)?,
            None => self.check_response(&ch, got, measured)?,
        };
        Ok(measured)
    }

    /// Verification outcome counters.
    pub fn stats(&self) -> VerificationStats {
        self.stats
    }

    /// Runs the full modified-SAKE key establishment against the device
    /// agent (paper §5.2.3), with an optional message tap for adversarial
    /// interposition.
    pub fn establish_key(
        &mut self,
        session: &mut GpuSession,
        agent: &mut DeviceAgent,
        mut tap: Option<MessageTap<'_>>,
    ) -> Result<AttestationOutcome> {
        let group = self.group.clone();
        self.establish_key_with(&mut |step, mut msg| {
            let mut touch = |step: usize, msg: &mut SakeMessage| {
                if let Some(t) = tap.as_mut() {
                    t(step, msg);
                }
            };
            // Tap numbering is unchanged from the monolithic flow: even
            // steps are verifier→device, odd steps device→verifier.
            touch(step * 2, &mut msg);
            let (mut reply, measured) = match (step, msg) {
                (0, SakeMessage::Challenge { v2 }) => {
                    let (commit, measured) = agent.handle_challenge(session, group.clone(), v2)?;
                    (commit, Some(measured))
                }
                (1, SakeMessage::RevealV1 { v1 }) => (agent.handle_reveal_v1(v1)?, None),
                (2, SakeMessage::RevealV0 { v0 }) => (agent.handle_reveal_v0(v0)?, None),
                _ => return Err(SageError::Protocol("bad flow: unexpected step".into())),
            };
            touch(step * 2 + 1, &mut reply);
            Ok((reply, measured))
        })
    }

    /// Transport-agnostic modified-SAKE key establishment: the enclave
    /// side of the flow runs here, while the `exchange` closure carries
    /// each verifier message to the device and returns its reply. Step 0
    /// sends the challenge and must come back as a commit together with
    /// the device's measured exchange time (`Some(cycles)` — over a real
    /// link the device reports it in the commit frame); steps 1 and 2
    /// carry the v1/v0 reveals. Timing and checksum verdicts, and their
    /// ordering relative to the reveals, are identical to the in-process
    /// [`Verifier::establish_key`], which is a thin wrapper over this.
    pub fn establish_key_with(
        &mut self,
        exchange: &mut dyn FnMut(usize, SakeMessage) -> Result<(SakeMessage, Option<u64>)>,
    ) -> Result<AttestationOutcome> {
        let mut entropy = {
            // The enclave DRBG provides the verifier's randomness.
            let seed = self.enclave.random(32);
            let key: [u8; 16] = seed[..16].try_into().expect("16 bytes");
            let iv: [u8; 16] = seed[16..].try_into().expect("16 bytes");
            sage_crypto::AesCtr::new(&key, &iv)
        };
        let (mut sake, msg) = SakeVerifier::start(self.group.clone(), &mut entropy);
        let SakeMessage::Challenge { v2 } = msg else {
            return Err(SageError::Protocol("bad flow: challenge".into()));
        };

        // The device computes the checksum under the v2-derived
        // challenges; the verifier replays the same derivation.
        let (commit, measured) = exchange(0, SakeMessage::Challenge { v2 })?;
        let measured =
            measured.ok_or_else(|| SageError::Protocol("commit carried no timing".into()))?;
        let challenges = derive_challenges(&v2, self.build.params.grid_blocks);
        sake.set_expected_checksum(self.expected(&challenges));
        let threshold = self.check_timing(measured, VerdictPath::Classic)?;

        let SakeMessage::Commit { w2, mac } = commit else {
            return Err(SageError::Protocol("bad flow: commit".into()));
        };
        let reveal1 = sake.on_commit(w2, mac)?;
        let (dev1, _) = exchange(1, reveal1)?;
        let SakeMessage::DeviceReveal1 { w1, k, mac_k } = dev1 else {
            return Err(SageError::Protocol("bad flow: device reveal 1".into()));
        };
        let reveal0 = sake.on_device_reveal1(w1, k, mac_k)?;
        let (dev0, _) = exchange(2, reveal0)?;
        let SakeMessage::DeviceReveal0 { w0 } = dev0 else {
            return Err(SageError::Protocol("bad flow: device reveal 0".into()));
        };
        sake.on_device_reveal0(w0)?;

        let session_key = sake
            .session_key()
            .ok_or_else(|| SageError::Protocol("no session key".into()))?;
        self.stats.accepted += 1;
        Ok(AttestationOutcome {
            session_key,
            measured_cycles: measured,
            threshold_cycles: threshold,
        })
    }

    /// Opens the verifier's end of the secure channel.
    pub fn open_channel(&self, outcome: &AttestationOutcome) -> SecureChannel {
        SecureChannel::new(outcome.session_key, Role::Host)
    }

    /// Checks a user kernel's authenticity: sends a fresh `r`, has the
    /// device measure `H(r ‖ code)` with the SHA-256 kernel, and compares
    /// against the locally computed expectation (paper §5.2.3, Eq. 9).
    pub fn verify_user_kernel(
        &mut self,
        session: &mut GpuSession,
        agent: &mut DeviceAgent,
        code: &[u8],
    ) -> Result<()> {
        self.verify_user_kernel_hash(session, agent, code)
            .map(|_| ())
    }

    /// Like [`Verifier::verify_user_kernel`], but returns the verified
    /// measurement `H(r ‖ code)` so callers (the evidence layer) can
    /// record what was checked, not just that it passed.
    pub fn verify_user_kernel_hash(
        &mut self,
        session: &mut GpuSession,
        agent: &mut DeviceAgent,
        code: &[u8],
    ) -> Result<[u8; 32]> {
        let r = self.enclave.nonce32();
        let device_hash = agent.measure_kernel(session, &r, code)?;
        let expected = sage_crypto::sha256::sha256_concat(&r, code);
        if !sage_crypto::ct_eq(&device_hash, &expected) {
            return Err(SageError::KernelHashMismatch);
        }
        Ok(expected)
    }

    /// Produces an enclave quote binding the attestation transcript for
    /// an external challenger (Fig. 2's challenger role).
    pub fn quote_attestation(&self, outcome: &AttestationOutcome) -> Quote {
        let mut h = sage_crypto::Sha256::new();
        h.update(b"sage-attestation:");
        h.update(&outcome.session_key);
        h.update(&outcome.measured_cycles.to_le_bytes());
        self.enclave.quote(h.finalize())
    }
}
