//! The GPU-side attestation session: VF installation and timed checksum
//! runs.

use sage_gpu_sim::{ContextId, Device, LaunchParams};
use sage_vf::{codegen::VfBuild, replay_block_batched, StepTrace, VfParams};

use crate::error::Result;

/// Host-side model of a checksum run, for fleet-scale benchmarks where
/// cycle-accurate simulation of every device would dominate the very
/// control-plane cost being measured. The checksum is computed with the
/// verifier's own batched replay engine against a cached step trace
/// (bit-exact by construction, so rounds pass), and the exchange time is
/// synthesized deterministically from the run counter.
struct ModeledGpu {
    /// Per-step trace shared by every run (depends only on the build).
    trace: StepTrace,
    /// Baseline exchange time in device cycles.
    base_cycles: u64,
}

/// A device with an installed verification function.
///
/// The session models what the *untrusted* host runtime does on behalf of
/// the verifier: allocate the buffer, DMA the VF image, write challenges,
/// launch, and read back the checksum. Every one of these steps crosses
/// the tappable bus, which is exactly the attack surface the protocol is
/// designed to survive.
pub struct GpuSession {
    /// The device (public: the adversary harness manipulates it
    /// directly, as the threat model allows).
    pub dev: Device,
    /// The driver context used for VF launches.
    pub ctx: ContextId,
    build: VfBuild,
    run_counter: u64,
    modeled: Option<ModeledGpu>,
}

impl GpuSession {
    /// Builds the VF for `params`, allocates device memory and uploads
    /// the image.
    pub fn install(dev: Device, params: &VfParams, fill_seed: u32) -> Result<GpuSession> {
        GpuSession::install_inline(dev, params, fill_seed, None)
    }

    /// Like [`GpuSession::install`], but inlines a user kernel into the
    /// VF: the epilog `CAL`s it directly after aggregation (the paper's
    /// §8 TOCTOU defence), and the kernel bytes are covered by the
    /// checksum traversal.
    pub fn install_inline(
        mut dev: Device,
        params: &VfParams,
        fill_seed: u32,
        user_kernel: Option<&sage_isa::Program>,
    ) -> Result<GpuSession> {
        let ctx = dev.create_context();
        // Two-step: sizes depend only on params, so probe-build at 0.
        let probe = sage_vf::build_vf_inline(params, 0, fill_seed, user_kernel)
            .map_err(crate::error::SageError::Protocol)?;
        let base = dev.alloc(probe.layout.total_bytes)?;
        let build = sage_vf::build_vf_inline(params, base, fill_seed, user_kernel)
            .map_err(crate::error::SageError::Protocol)?;
        dev.memcpy_h2d(base, &build.image)?;
        Ok(GpuSession {
            dev,
            ctx,
            build,
            run_counter: 0,
            modeled: None,
        })
    }

    /// Like [`GpuSession::install`], but every subsequent checksum run is
    /// *modeled* instead of simulated: the checksum comes from the host
    /// replay engine and the measured exchange time is synthesized as
    /// `base_cycles` plus a small deterministic run-to-run spread (five
    /// distinct offsets, so calibration sees real variance yet the
    /// derived threshold always clears the maximum — a modeled honest
    /// device never trips the timing check).
    ///
    /// The VF image is still built and uploaded, so the device remains
    /// inspectable (`peek`/`poke`, power score) — only `run_checksum`
    /// short-circuits. Intended for fleet-scale control-plane
    /// benchmarks; attack harnesses use the simulated path.
    pub fn install_modeled(
        dev: Device,
        params: &VfParams,
        fill_seed: u32,
        base_cycles: u64,
    ) -> Result<GpuSession> {
        let mut s = GpuSession::install(dev, params, fill_seed)?;
        s.modeled = Some(ModeledGpu {
            trace: StepTrace::new(&s.build),
            base_cycles,
        });
        Ok(s)
    }

    /// The installed VF build (layout, params, image).
    pub fn build(&self) -> &VfBuild {
        &self.build
    }

    /// Runs the checksum function once with the given per-block
    /// challenges. Returns the 8-word checksum and the measured exchange
    /// time in device cycles (challenge upload + execution + readback, as
    /// the verifier would measure `t₁ − t₀`).
    pub fn run_checksum(&mut self, challenges: &[[u8; 16]]) -> Result<([u32; 8], u64)> {
        self.run_checksum_with_params(challenges, Vec::new())
    }

    /// Like [`GpuSession::run_checksum`], passing a launch parameter
    /// block — the ABI surface of an *inlined* user kernel (`R0` points
    /// at these words when the epilog calls it).
    pub fn run_checksum_with_params(
        &mut self,
        challenges: &[[u8; 16]],
        kernel_params: Vec<u32>,
    ) -> Result<([u32; 8], u64)> {
        if let Some(m) = &self.modeled {
            // Modeled run: bit-exact checksum from the batched replay
            // engine, no device traffic. `kernel_params` would only
            // reach an inlined user kernel, which the modeled path does
            // not support.
            self.run_counter += 1;
            let mut cells = [0u32; 8];
            for (b, ch) in challenges.iter().enumerate() {
                let sums = replay_block_batched(&self.build, &m.trace, ch, b as u32);
                for (cell, s) in cells.iter_mut().zip(&sums) {
                    *cell = cell.wrapping_add(*s);
                }
            }
            let measured = m.base_cycles + (self.run_counter % 5) * 2;
            return Ok((cells, measured));
        }
        let layout = self.build.layout;
        // Each run sees fresh environmental timing conditions.
        self.run_counter += 1;
        let seed = 0x00C0_FFEE ^ self.run_counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.dev.set_timing_seed(seed);
        self.dev.take_bus_cycles();

        // Restore the executable loop copies (self-modifying code from a
        // previous run must not leak into this one) and zero the result
        // cells. This repair is part of the verifier's re-invocation
        // procedure and is done before t0.
        let exec_off = layout.exec_loops_off as usize;
        let exec_len = (layout.loop_bytes * layout.num_blocks) as usize;
        let exec_img = self.build.image[exec_off..exec_off + exec_len].to_vec();
        self.dev
            .memcpy_h2d(layout.base + layout.exec_loops_off, &exec_img)?;
        self.dev.memcpy_h2d(layout.result_addr(), &[0u8; 32])?;
        self.dev.take_bus_cycles(); // repair is not part of the measurement

        // t0: challenge upload.
        for (b, ch) in challenges.iter().enumerate() {
            self.dev.memcpy_h2d(layout.challenge_addr(b as u32), ch)?;
        }
        let (report, _stats) = self.dev.run_single(LaunchParams {
            ctx: self.ctx,
            entry_pc: layout.entry_addr(),
            grid_dim: self.build.params.grid_blocks,
            block_dim: self.build.params.block_threads,
            regs_per_thread: self.build.regs_per_thread(),
            smem_bytes: self.build.smem_bytes(),
            params: kernel_params,
        })?;
        let raw = self.dev.memcpy_d2h(layout.result_addr(), 32)?;
        // t1: measured time = bus transfers + kernel completion.
        let measured = self.dev.take_bus_cycles() + report.completion_cycle;

        let mut cells = [0u32; 8];
        for (j, cell) in cells.iter_mut().enumerate() {
            *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().expect("4 bytes"));
        }
        Ok((cells, measured))
    }

    /// Number of checksum runs performed.
    pub fn runs(&self) -> u64 {
        self.run_counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_gpu_sim::DeviceConfig;
    use sage_vf::expected_checksum;

    fn session() -> GpuSession {
        let dev = Device::new(DeviceConfig::sim_tiny());
        GpuSession::install(dev, &VfParams::test_tiny(), 0xAA55).unwrap()
    }

    fn chs(seed: u8, n: u32) -> Vec<[u8; 16]> {
        (0..n).map(|b| [seed.wrapping_add(b as u8); 16]).collect()
    }

    #[test]
    fn install_and_run() {
        let mut s = session();
        let ch = chs(1, s.build().params.grid_blocks);
        let (got, measured) = s.run_checksum(&ch).unwrap();
        assert_eq!(got, expected_checksum(s.build(), &ch));
        assert!(measured > 0);
        assert_eq!(s.runs(), 1);
    }

    #[test]
    fn repeated_runs_stay_correct() {
        // Re-invocation must repair state (result cells, SMC immediates)
        // so each run independently matches the replay.
        let dev = Device::new(DeviceConfig::sim_tiny());
        let mut params = VfParams::test_tiny();
        params.smc = sage_vf::SmcMode::Cctl;
        let mut s = GpuSession::install(dev, &params, 0xAA55).unwrap();
        for seed in 1..=3u8 {
            let ch = chs(seed, params.grid_blocks);
            let (got, _) = s.run_checksum(&ch).unwrap();
            assert_eq!(got, expected_checksum(s.build(), &ch), "run {seed}");
        }
    }

    #[test]
    fn modeled_runs_match_replay_and_synthesize_timing() {
        let dev = Device::new(DeviceConfig::sim_nano());
        let params = VfParams::fleet_tiny();
        let mut s = GpuSession::install_modeled(dev, &params, 0xF1EE7, 10_000).unwrap();
        let ch = chs(1, params.grid_blocks);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5 {
            let (got, measured) = s.run_checksum(&ch).unwrap();
            assert_eq!(got, expected_checksum(s.build(), &ch));
            assert!((10_000..=10_008).contains(&measured));
            seen.insert(measured);
        }
        assert_eq!(seen.len(), 5, "five distinct deterministic offsets");
        // The same session replays the same sequence: a second modeled
        // session is cycle-identical run for run.
        let mut t = GpuSession::install_modeled(
            Device::new(DeviceConfig::sim_nano()),
            &params,
            0xF1EE7,
            10_000,
        )
        .unwrap();
        let (_, m1) = t.run_checksum(&ch).unwrap();
        assert_eq!(m1, 10_002);
    }

    #[test]
    fn timing_varies_run_to_run() {
        let mut s = session();
        let ch = chs(1, s.build().params.grid_blocks);
        let (_, t1) = s.run_checksum(&ch).unwrap();
        let (_, t2) = s.run_checksum(&ch).unwrap();
        // Different timing seeds: almost surely different cycle counts.
        assert_ne!(t1, t2);
    }
}
