//! The verifier's timing policy (paper §7.2).
//!
//! The verifier measures the wall time of every checksum exchange and
//! accepts only responses arriving before `T_avg + 2.5σ`, calibrated over
//! repeated runs on the known-good configuration. With normally
//! distributed runtimes the false-positive probability is ≈ 0.5%, "in
//! which case the verification process is restarted".

/// Calibration statistics of the checksum runtime, in device cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// Mean runtime.
    pub t_avg: f64,
    /// Standard deviation.
    pub sigma: f64,
    /// Number of calibration runs.
    pub runs: usize,
    /// Threshold multiplier (2.5 in the paper).
    pub k_sigma: f64,
}

impl Calibration {
    /// Computes statistics from a series of measured runtimes.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[u64]) -> Calibration {
        Calibration::from_samples_k(samples, 2.5)
    }

    /// Same as [`Calibration::from_samples`] with a custom `k·σ`
    /// multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples_k(samples: &[u64], k_sigma: f64) -> Calibration {
        Calibration::try_from_samples_k(samples, k_sigma).expect("calibration requires samples")
    }

    /// Fallible variant of [`Calibration::from_samples`]: returns
    /// [`SageError::Protocol`] on empty input instead of panicking, so
    /// long-running layers (the attestation service) can degrade
    /// gracefully when a device yields no usable samples.
    pub fn try_from_samples(samples: &[u64]) -> crate::error::Result<Calibration> {
        Calibration::try_from_samples_k(samples, 2.5)
    }

    /// Fallible variant of [`Calibration::from_samples_k`].
    pub fn try_from_samples_k(samples: &[u64], k_sigma: f64) -> crate::error::Result<Calibration> {
        if samples.is_empty() {
            return Err(crate::error::SageError::Protocol(
                "calibration requires samples".into(),
            ));
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Ok(Calibration {
            t_avg: mean,
            sigma: var.sqrt(),
            runs: samples.len(),
            k_sigma,
        })
    }

    /// The detection threshold `T_avg + k·σ`, in cycles (rounded up).
    ///
    /// A floor of `t_avg + 1` is applied so a zero-variance calibration
    /// (possible in the deterministic simulator with a fixed seed) still
    /// yields a usable threshold.
    pub fn threshold(&self) -> u64 {
        let t = self.t_avg + self.k_sigma * self.sigma;
        (t.ceil() as u64).max(self.t_avg as u64 + 1)
    }

    /// Whether a measured runtime passes.
    pub fn accepts(&self, measured: u64) -> bool {
        measured <= self.threshold()
    }
}

/// Outcome statistics over repeated verifications (for the robustness
/// analysis: false-positive rate ≈ 0.5% at 2.5σ).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerificationStats {
    /// Runs accepted.
    pub accepted: u64,
    /// Runs rejected on timing.
    pub timing_rejects: u64,
    /// Runs rejected on checksum value.
    pub value_rejects: u64,
}

impl VerificationStats {
    /// Fraction of runs rejected on timing alone.
    pub fn timing_reject_rate(&self) -> f64 {
        let total = self.accepted + self.timing_rejects + self.value_rejects;
        if total == 0 {
            0.0
        } else {
            self.timing_rejects as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_match_hand_computation() {
        let c = Calibration::from_samples(&[100, 102, 98, 100]);
        assert!((c.t_avg - 100.0).abs() < 1e-9);
        assert!((c.sigma - 2.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(c.runs, 4);
        // threshold = 100 + 2.5·√2 ≈ 103.54 → 104.
        assert_eq!(c.threshold(), 104);
        assert!(c.accepts(104));
        assert!(!c.accepts(105));
    }

    #[test]
    fn zero_variance_gets_floor() {
        let c = Calibration::from_samples(&[500, 500, 500]);
        assert_eq!(c.threshold(), 501);
        assert!(c.accepts(500));
        assert!(!c.accepts(502));
    }

    #[test]
    fn custom_multiplier() {
        let c = Calibration::from_samples_k(&[100, 104], 1.0);
        // mean 102, sigma 2 → threshold 104.
        assert_eq!(c.threshold(), 104);
    }

    #[test]
    fn false_positive_rate_near_half_percent_for_gaussian() {
        // Draw pseudo-normal samples (sum of 12 uniforms), calibrate, and
        // check the 2.5σ one-sided tail is near 0.6% (Φ(2.5) ≈ 0.9938).
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next_uniform = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut draw = || {
            let s: f64 = (0..12).map(|_| next_uniform()).sum::<f64>() - 6.0;
            (100_000.0 + 300.0 * s) as u64
        };
        let calib_samples: Vec<u64> = (0..2000).map(|_| draw()).collect();
        let c = Calibration::from_samples(&calib_samples);
        let mut rejects = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if !c.accepts(draw()) {
                rejects += 1;
            }
        }
        let rate = rejects as f64 / trials as f64;
        assert!(rate > 0.001 && rate < 0.02, "rate = {rate}");
    }

    #[test]
    fn verification_stats() {
        let s = VerificationStats {
            accepted: 99,
            timing_rejects: 1,
            ..Default::default()
        };
        assert!((s.timing_reject_rate() - 0.01).abs() < 1e-9);
        assert_eq!(VerificationStats::default().timing_reject_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "requires samples")]
    fn empty_samples_panic() {
        let _ = Calibration::from_samples(&[]);
    }

    #[test]
    fn try_from_samples_reports_empty_input() {
        assert!(matches!(
            Calibration::try_from_samples(&[]),
            Err(crate::error::SageError::Protocol(_))
        ));
        let c = Calibration::try_from_samples(&[100, 102, 98, 100]).unwrap();
        assert_eq!(c, Calibration::from_samples(&[100, 102, 98, 100]));
    }
}
