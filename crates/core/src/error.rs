//! Protocol-level errors.

use core::fmt;

use sage_gpu_sim::SimError;

/// Errors raised by the SAGE protocol layers.
#[derive(Clone, PartialEq, Debug)]
pub enum SageError {
    /// The device simulator faulted.
    Sim(SimError),
    /// The returned checksum does not match the verifier's replay.
    ChecksumMismatch {
        /// What the device returned.
        got: [u32; 8],
        /// What the replay expected.
        expected: [u32; 8],
    },
    /// The checksum arrived after the detection threshold.
    TimingExceeded {
        /// Measured cycles.
        measured: u64,
        /// Threshold cycles (`T_avg + 2.5σ`).
        threshold: u64,
    },
    /// A message authentication code failed to verify.
    MacFailure(&'static str),
    /// A hash-chain link failed to verify.
    ChainFailure(&'static str),
    /// A Diffie-Hellman public value was invalid.
    BadPublicKey,
    /// The user-kernel measurement did not match.
    KernelHashMismatch,
    /// A secure-channel message failed authentication or ordering.
    ChannelTamper(&'static str),
    /// Generic protocol violation.
    Protocol(String),
}

impl fmt::Display for SageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SageError::Sim(e) => write!(f, "device error: {e}"),
            SageError::ChecksumMismatch { got, expected } => write!(
                f,
                "checksum mismatch: device {got:08x?} vs expected {expected:08x?}"
            ),
            SageError::TimingExceeded {
                measured,
                threshold,
            } => write!(
                f,
                "timing threshold exceeded: {measured} cycles > {threshold} cycles"
            ),
            SageError::MacFailure(what) => write!(f, "MAC verification failed: {what}"),
            SageError::ChainFailure(what) => write!(f, "hash-chain verification failed: {what}"),
            SageError::BadPublicKey => write!(f, "invalid Diffie-Hellman public value"),
            SageError::KernelHashMismatch => write!(f, "user-kernel measurement mismatch"),
            SageError::ChannelTamper(what) => write!(f, "secure-channel tampering: {what}"),
            SageError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for SageError {}

impl From<SimError> for SageError {
    fn from(e: SimError) -> SageError {
        SageError::Sim(e)
    }
}

/// Result alias for protocol operations.
pub type Result<T> = std::result::Result<T, SageError>;
