//! The external challenger (paper Fig. 2): a remote party that attests
//! the *verifier enclave* before trusting anything it says about the GPU.
//!
//! Flow: the challenger sends a fresh nonce; the enclave returns a quote
//! binding (nonce, measurement, a commitment to the GPU session key); the
//! challenger checks the platform MAC, the expected enclave measurement
//! and the nonce binding. From then on the challenger trusts statements
//! signed under that session context.

use sage_crypto::{sha256, EntropySource, Sha256};
use sage_sgx_sim::{verify_quote, Quote};

use crate::verifier::{AttestationOutcome, Verifier};

/// A remote-attestation report: the enclave quote plus the public key
/// commitment the quote binds.
#[derive(Clone, Debug, PartialEq)]
pub struct AttestationReport {
    /// The enclave quote (platform-MAC'd).
    pub quote: Quote,
    /// `H(session_key)` — lets later messages be tied to this session
    /// without disclosing the key.
    pub key_commitment: [u8; 32],
}

/// Computes the report data the quote must carry for (`nonce`,
/// `key_commitment`).
pub fn report_data(nonce: &[u8; 32], key_commitment: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"sage-challenger:");
    h.update(nonce);
    h.update(key_commitment);
    h.finalize()
}

impl Verifier {
    /// Produces an attestation report for an external challenger's
    /// `nonce` (paper Fig. 2, steps 1–2).
    pub fn report_for_challenger(
        &self,
        outcome: &AttestationOutcome,
        nonce: &[u8; 32],
    ) -> AttestationReport {
        let key_commitment = sha256(&outcome.session_key);
        let quote = self.enclave.quote(report_data(nonce, &key_commitment));
        AttestationReport {
            quote,
            key_commitment,
        }
    }
}

/// The challenger role.
pub struct Challenger {
    verification_key: [u8; 16],
    expected_measurement: [u8; 32],
    nonce: Option<[u8; 32]>,
}

impl Challenger {
    /// Creates a challenger that trusts enclaves measuring
    /// `expected_measurement` on the platform with `verification_key`.
    pub fn new(verification_key: [u8; 16], expected_measurement: [u8; 32]) -> Challenger {
        Challenger {
            verification_key,
            expected_measurement,
            nonce: None,
        }
    }

    /// Issues a fresh nonce.
    pub fn challenge(&mut self, entropy: &mut dyn EntropySource) -> [u8; 32] {
        let mut n = [0u8; 32];
        entropy.fill(&mut n);
        self.nonce = Some(n);
        n
    }

    /// Verifies a report against the outstanding nonce. Consumes the
    /// nonce (reports cannot be replayed against the same challenge
    /// twice).
    pub fn verify(&mut self, report: &AttestationReport) -> bool {
        let Some(nonce) = self.nonce.take() else {
            return false;
        };
        if !verify_quote(&self.verification_key, &report.quote) {
            return false;
        }
        if report.quote.measurement != self.expected_measurement {
            return false;
        }
        report.quote.user_data == report_data(&nonce, &report.key_commitment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agent::DeviceAgent, GpuSession};
    use sage_crypto::DhGroup;
    use sage_gpu_sim::{Device, DeviceConfig};
    use sage_sgx_sim::SgxPlatform;
    use sage_vf::VfParams;

    fn entropy(seed: u8) -> impl EntropySource {
        let mut state = seed;
        move |buf: &mut [u8]| {
            for b in buf {
                state = state.wrapping_mul(181).wrapping_add(101);
                *b = state;
            }
        }
    }

    fn attested() -> (Verifier, AttestationOutcome, SgxPlatform) {
        let mut params = VfParams::test_tiny();
        params.iterations = 4;
        let dev = Device::new(DeviceConfig::sim_tiny());
        let mut session = GpuSession::install(dev, &params, 0xC4A1).unwrap();
        let platform = SgxPlatform::new([3u8; 16]);
        let enclave = platform.launch(b"sage-verifier-v1", &mut entropy(2));
        let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
        verifier.calibrate(&mut session, 5).unwrap();
        let mut agent = DeviceAgent::new(Box::new(entropy(6)));
        let outcome = verifier
            .establish_key(&mut session, &mut agent, None)
            .unwrap();
        (verifier, outcome, platform)
    }

    #[test]
    fn challenger_accepts_fresh_report() {
        let (verifier, outcome, platform) = attested();
        let mut challenger = Challenger::new(
            platform.quote_verification_key(),
            sage_crypto::sha256(b"sage-verifier-v1"),
        );
        let nonce = challenger.challenge(&mut entropy(9));
        let report = verifier.report_for_challenger(&outcome, &nonce);
        assert!(challenger.verify(&report));
        // The nonce is consumed: the same report cannot be shown twice.
        assert!(!challenger.verify(&report));
    }

    #[test]
    fn challenger_rejects_wrong_nonce() {
        let (verifier, outcome, platform) = attested();
        let mut challenger = Challenger::new(
            platform.quote_verification_key(),
            sage_crypto::sha256(b"sage-verifier-v1"),
        );
        let _nonce = challenger.challenge(&mut entropy(9));
        let stale = [0u8; 32];
        let report = verifier.report_for_challenger(&outcome, &stale);
        assert!(!challenger.verify(&report));
    }

    #[test]
    fn challenger_rejects_wrong_measurement() {
        let (verifier, outcome, platform) = attested();
        let mut challenger = Challenger::new(
            platform.quote_verification_key(),
            sage_crypto::sha256(b"some-other-enclave"),
        );
        let nonce = challenger.challenge(&mut entropy(9));
        let report = verifier.report_for_challenger(&outcome, &nonce);
        assert!(!challenger.verify(&report));
    }

    #[test]
    fn challenger_rejects_forged_platform() {
        let (verifier, outcome, _) = attested();
        let mut challenger = Challenger::new(
            [0xEE; 16], // wrong platform key
            sage_crypto::sha256(b"sage-verifier-v1"),
        );
        let nonce = challenger.challenge(&mut entropy(9));
        let report = verifier.report_for_challenger(&outcome, &nonce);
        assert!(!challenger.verify(&report));
    }

    #[test]
    fn tampered_key_commitment_rejected() {
        let (verifier, outcome, platform) = attested();
        let mut challenger = Challenger::new(
            platform.quote_verification_key(),
            sage_crypto::sha256(b"sage-verifier-v1"),
        );
        let nonce = challenger.challenge(&mut entropy(9));
        let mut report = verifier.report_for_challenger(&outcome, &nonce);
        report.key_commitment[0] ^= 1;
        assert!(!challenger.verify(&report));
    }
}
