//! SAGE: software-based attestation for GPU execution — the protocol
//! core (paper §4–§5).
//!
//! This crate glues the substrates together into the system the paper
//! describes:
//!
//! - [`timing`] — the verifier's timing policy: calibration over repeated
//!   runs, the `T_avg + 2.5σ` detection threshold, false-positive retry
//!   (paper §7.2);
//! - [`session`] — the GPU-side session: loading the VF image, issuing
//!   challenges, timed checksum runs over the (tappable) bus;
//! - [`verifier`] — the enclave-resident verifier: challenge generation,
//!   replay, verdicts, and external attestation quotes;
//! - [`sake`] — the modified SAKE key-establishment protocol (hash
//!   chains + DH, checksum as a short-lived secret, Eqs. 1–8);
//! - [`channel`] — the authenticated/encrypted data channel keyed by the
//!   SAKE secret (§5.2.4);
//! - [`agent`] — the device-resident trusted code model that exists after
//!   root-of-trust establishment (TRNG, SAKE device side, inbound
//!   decryption);
//! - [`challenger`] — the external challenger of Fig. 2, remote-attesting
//!   the verifier enclave with fresh nonces;
//! - [`multi`] — sequential multi-GPU root-of-trust establishment
//!   (§3.2);
//! - [`kernels`] — user kernels as native microcode: vector add, matrix
//!   multiply (the §7.4 benchmark), and a full SHA-256 used for the
//!   user-kernel authenticity check `h = H(r ‖ code)` *on the device*
//!   (§5.2.3, Eq. 9).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` at the workspace root for the end-to-end
//! flow: attest → key establishment → kernel integrity check → protected
//! data transfer → execution.

pub mod agent;
pub mod challenger;
pub mod channel;
pub mod error;
pub mod kernels;
pub mod multi;
pub mod sake;
pub mod session;
pub mod timing;
pub mod verifier;

pub use channel::SecureChannel;
pub use error::SageError;
pub use session::GpuSession;
pub use timing::Calibration;
pub use verifier::{AttestationOutcome, Verifier};
