//! Seeded differential suite for the batched SoA replay engine.
//!
//! The batched engine (`replay_block_batched` and the pooled
//! `expected_checksum` built on it) must agree bit for bit with the
//! sequential scalar oracle (`replay_block` / `expected_checksum_unpooled`)
//! across both code-generator schedules (the optimized "sass-opt" one and
//! the compiler-style "ptx-naive" one), every SMC mode, inner loops, and
//! multiple batch counts — and with the device itself, including runs
//! where a [`FaultPlan`] perturbs the machine. Value-corrupting faults
//! must *diverge* the device from both replay paths equally (that
//! divergence is the detection signal); timing-only faults must leave
//! the checksum untouched.

use sage_gpu_sim::{Device, DeviceConfig, DeviceFault, FaultPlan, LaunchParams};
use sage_vf::{
    build_vf, expected_checksum, expected_checksum_unpooled, replay_block_batched, SmcMode,
    StepTrace, VfParams,
};

const BASE: u32 = 4096; // first Device::alloc result

/// The seeded parameter matrix: (label, schedule, SMC mode, inner loop).
#[allow(clippy::type_complexity)]
fn matrix() -> Vec<(&'static str, bool, SmcMode, Option<(usize, u32)>)> {
    vec![
        ("sass-opt/off", false, SmcMode::Off, None),
        ("ptx-naive/off", true, SmcMode::Off, None),
        ("sass-opt/evict", false, SmcMode::Evict, None),
        ("ptx-naive/evict", true, SmcMode::Evict, None),
        ("sass-opt/cctl+inner", false, SmcMode::Cctl, Some((2, 3))),
    ]
}

fn params(naive: bool, smc: SmcMode, inner: Option<(usize, u32)>, threads: u32) -> VfParams {
    VfParams {
        data_bytes: 16 * 1024,
        unroll: 3,
        pattern_pairs: 4,
        iterations: 3,
        smc,
        inner,
        grid_blocks: 2,
        block_threads: threads,
        naive_schedule: naive,
        injected_nops: 0,
    }
}

fn challenges(n: u32, seed: u32) -> Vec<[u8; 16]> {
    (0..n)
        .map(|b| {
            let mut c = [0u8; 16];
            for (i, byte) in c.iter_mut().enumerate() {
                *byte = (sage_vf::spec::splitmix32(seed ^ (b << 8 | i as u32))) as u8;
            }
            c
        })
        .collect()
}

/// Runs a build on a fresh device (optionally under a fault plan) and
/// returns the checksum cells it wrote.
fn run_on_device(
    build: &sage_vf::codegen::VfBuild,
    ch: &[[u8; 16]],
    plan: Option<FaultPlan>,
) -> [u32; 8] {
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    dev.set_hazard_check(true);
    let ctx = dev.create_context();
    let base = dev.alloc(build.layout.total_bytes).unwrap();
    assert_eq!(base, build.layout.base);
    dev.memcpy_h2d(base, &build.image).unwrap();
    for (b, c) in ch.iter().enumerate() {
        dev.memcpy_h2d(build.layout.challenge_addr(b as u32), c)
            .unwrap();
    }
    if let Some(plan) = plan {
        dev.install_fault_hook(Box::new(plan));
    }
    dev.run_single(LaunchParams {
        ctx,
        entry_pc: build.layout.entry_addr(),
        grid_dim: build.params.grid_blocks,
        block_dim: build.params.block_threads,
        regs_per_thread: build.regs_per_thread(),
        smem_bytes: build.smem_bytes(),
        params: vec![],
    })
    .unwrap();
    let raw = dev.memcpy_d2h(build.layout.result_addr(), 32).unwrap();
    let mut cells = [0u32; 8];
    for (j, cell) in cells.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().unwrap());
    }
    cells
}

/// Batched engine vs scalar oracle, whole-checksum and per-block, across
/// the schedule/SMC matrix, three build seeds, and three batch counts.
#[test]
fn batched_matches_scalar_oracle_across_matrix() {
    for (label, naive, smc, inner) in matrix() {
        for seed in [1u32, 0xBEEF, 0x00C0FFEE] {
            for threads in [32u32, 64, 96] {
                let p = params(naive, smc, inner, threads);
                let build = build_vf(&p, BASE, seed).unwrap();
                let ch = challenges(p.grid_blocks, seed.rotate_left(7));
                let oracle = expected_checksum_unpooled(&build, &ch);
                let batched = expected_checksum(&build, &ch);
                assert_eq!(
                    batched, oracle,
                    "{label}: batched != scalar oracle (seed {seed:#x}, {threads} threads)"
                );
                // Per-block too, so a failure localizes.
                let trace = StepTrace::new(&build);
                for (b, c) in ch.iter().enumerate() {
                    let got = replay_block_batched(&build, &trace, c, b as u32);
                    let want = sage_vf::replay::replay_block(&build, c, b as u32);
                    assert_eq!(got, want, "{label}: block {b} diverged (seed {seed:#x})");
                }
            }
        }
    }
}

/// The device, the batched engine and the scalar oracle all agree on a
/// fault-free run, for both schedules. Evict mode is excluded here: with
/// a cache-fitting loop the device *correctly* executes stale code and
/// diverges from any replay (see `smc_evict_requires_loop_larger_than_caches`
/// in `device_match.rs`) — the engine-vs-oracle matrix above still covers
/// Evict's replay semantics.
#[test]
fn device_matches_both_replay_paths_without_faults() {
    for (label, naive, smc, inner) in matrix() {
        if smc == SmcMode::Evict {
            continue;
        }
        let p = params(naive, smc, inner, 32);
        let build = build_vf(&p, BASE, 0xF00D).unwrap();
        let ch = challenges(p.grid_blocks, 0xA11CE);
        let device = run_on_device(&build, &ch, None);
        assert_eq!(
            device,
            expected_checksum(&build, &ch),
            "{label}: device vs batched"
        );
        assert_eq!(
            device,
            expected_checksum_unpooled(&build, &ch),
            "{label}: device vs oracle"
        );
    }
}

/// A fault plan that flips bits inside the checksummed fill must make
/// the device diverge from the batched replay — and the batched replay
/// must still equal the scalar oracle, so both paths would reject the
/// corrupted device identically. The traversal is pseudo-random (§7.3:
/// inclusion is probabilistic), so the plan spreads 16 flips across the
/// fill and the iteration count is raised until per-word inclusion is
/// high; for the fixed seeds below the detection is then deterministic.
#[test]
fn value_fault_diverges_device_but_not_the_engines() {
    for naive in [false, true] {
        let mut p = params(naive, SmcMode::Off, None, 32);
        p.iterations = 40;
        let build = build_vf(&p, BASE, 0x5EED).unwrap();
        let ch = challenges(p.grid_blocks, 0xD1FF);
        let fill_base = build.layout.base + build.layout.fill_off;
        let fill_bytes = p.data_bytes - build.layout.fill_off;
        let mut plan = FaultPlan::new();
        for k in 0..16u32 {
            // Inside the pseudo-random fill: checksummed, never executed.
            let flip = DeviceFault::FlipBit {
                addr: fill_base + k * (fill_bytes / 16),
                bit: 3,
            };
            plan = plan.at(0, flip);
        }
        let device = run_on_device(&build, &ch, Some(plan));
        let batched = expected_checksum(&build, &ch);
        let oracle = expected_checksum_unpooled(&build, &ch);
        assert_eq!(batched, oracle, "naive={naive}: engines must agree");
        assert_ne!(
            device, batched,
            "naive={naive}: flipped fill bit must change the device checksum"
        );
    }
}

/// Timing-only faults (SM stalls, clock skew) move the clock, not the
/// data: the device's checksum still matches the batched engine exactly.
#[test]
fn timing_faults_leave_the_checksum_bit_exact() {
    for naive in [false, true] {
        let p = params(naive, SmcMode::Off, None, 32);
        let build = build_vf(&p, BASE, 0x7A21).unwrap();
        let ch = challenges(p.grid_blocks, 0x5107);
        let plan = FaultPlan::new()
            .at(
                0,
                DeviceFault::StallSm {
                    sm_id: 0,
                    cycles: 500,
                },
            )
            .at(0, DeviceFault::ClockSkew { cycles: 1000 });
        let device = run_on_device(&build, &ch, Some(plan));
        assert_eq!(
            device,
            expected_checksum(&build, &ch),
            "naive={naive}: timing faults must not perturb values"
        );
    }
}

/// Property-based twin of the seeded sweep. Gated like the rest of the
/// proptest suites: build with `--features proptest` after re-adding the
/// dev-dependency locally.
#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_params() -> impl Strategy<Value = VfParams> {
        (
            1usize..5, // unroll
            0usize..6, // pattern pairs
            1u32..4,   // iterations
            1u32..3,   // blocks
            prop::sample::select(vec![32u32, 64, 96]),
            prop::sample::select(vec![SmcMode::Off, SmcMode::Cctl, SmcMode::Evict]),
            prop::option::of((1usize..3, 1u32..3)),
            any::<bool>(),
        )
            .prop_map(
                |(unroll, pattern_pairs, iterations, grid_blocks, threads, smc, inner, naive)| {
                    VfParams {
                        data_bytes: 16 * 1024,
                        unroll,
                        pattern_pairs,
                        iterations,
                        smc,
                        inner,
                        grid_blocks,
                        block_threads: threads,
                        naive_schedule: naive,
                        injected_nops: 0,
                    }
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn batched_equals_scalar_oracle(params in arb_params(), seed in any::<u32>()) {
            let build = build_vf(&params, BASE, seed).unwrap();
            let ch = challenges(params.grid_blocks, seed.wrapping_mul(0x9E3779B9));
            prop_assert_eq!(
                expected_checksum(&build, &ch),
                expected_checksum_unpooled(&build, &ch),
                "params {:?}", params
            );
        }
    }
}
