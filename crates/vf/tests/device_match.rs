//! The keystone property of SAGE: the checksum computed by the VF
//! microcode *on the device* equals the verifier's replay, bit for bit —
//! and diverges whenever the device-side code or data is tampered with.

use sage_gpu_sim::{Device, DeviceConfig, LaunchParams};
use sage_vf::{build_vf, expected_checksum, SmcMode, VfParams};

/// Runs a VF build on a fresh device and returns (checksum cells, cycles,
/// utilization).
fn run_on_device(
    build: &sage_vf::codegen::VfBuild,
    challenges: &[[u8; 16]],
    cfg: DeviceConfig,
) -> ([u32; 8], u64, f64) {
    let mut dev = Device::new(cfg);
    dev.set_hazard_check(true);
    let ctx = dev.create_context();
    let base = dev.alloc(build.layout.total_bytes).unwrap();
    assert_eq!(base, build.layout.base, "build must target the alloc base");
    dev.memcpy_h2d(base, &build.image).unwrap();
    for (b, ch) in challenges.iter().enumerate() {
        dev.memcpy_h2d(build.layout.challenge_addr(b as u32), ch)
            .unwrap();
    }
    let (report, stats) = dev
        .run_single(LaunchParams {
            ctx,
            entry_pc: build.layout.entry_addr(),
            grid_dim: build.params.grid_blocks,
            block_dim: build.params.block_threads,
            regs_per_thread: build.regs_per_thread(),
            smem_bytes: build.smem_bytes(),
            params: vec![],
        })
        .unwrap();
    assert_eq!(
        stats.hazard_violations, 0,
        "generated code must be hazard-free"
    );
    let raw = dev.memcpy_d2h(build.layout.result_addr(), 32).unwrap();
    let mut cells = [0u32; 8];
    for (j, cell) in cells.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().unwrap());
    }
    (cells, report.completion_cycle, stats.utilization())
}

fn challenges(n: u32, seed: u8) -> Vec<[u8; 16]> {
    (0..n)
        .map(|b| {
            let mut c = [0u8; 16];
            for (i, byte) in c.iter_mut().enumerate() {
                *byte = seed
                    .wrapping_mul(47)
                    .wrapping_add(b as u8 * 29)
                    .wrapping_add(i as u8 * 3);
            }
            c
        })
        .collect()
}

const BASE: u32 = 4096; // first Device::alloc result

#[test]
fn device_checksum_matches_replay() {
    let params = VfParams::test_tiny();
    let build = build_vf(&params, BASE, 0xF00D).unwrap();
    let ch = challenges(params.grid_blocks, 1);
    let (device, cycles, util) = run_on_device(&build, &ch, DeviceConfig::sim_tiny());
    let expected = expected_checksum(&build, &ch);
    assert_eq!(device, expected, "device vs replay mismatch");
    assert!(cycles > 0);
    assert!(util > 0.0);
}

#[test]
fn device_checksum_matches_replay_with_smc_cctl() {
    // CCTL mode: explicit i-cache invalidation makes the patched
    // immediate visible regardless of loop size (the paper's §6.4
    // vendor-extension proposal).
    let mut params = VfParams::test_tiny();
    params.smc = SmcMode::Cctl;
    let build = build_vf(&params, BASE, 0xF00D).unwrap();
    let ch = challenges(params.grid_blocks, 2);
    let (device, _, _) = run_on_device(&build, &ch, DeviceConfig::sim_tiny());
    assert_eq!(device, expected_checksum(&build, &ch));
}

#[test]
fn smc_evict_requires_loop_larger_than_caches() {
    // Evict mode with a loop that FITS in the caches: the patched
    // immediate is never re-fetched, the device keeps executing the stale
    // shift, and the checksum must NOT match the replay (which assumes
    // fresh patches). This is the paper's central implementation
    // constraint (§6.4, §7.5).
    let mut params = VfParams::test_tiny();
    params.smc = SmcMode::Evict;
    params.unroll = 2;
    params.pattern_pairs = 2;
    params.iterations = 8;
    let build = build_vf(&params, BASE, 0xF00D).unwrap();
    assert!(
        build.layout.loop_bytes < DeviceConfig::sim_tiny().l0i_bytes,
        "precondition: loop must fit in L0i for this test"
    );
    let ch = challenges(params.grid_blocks, 3);
    let (device, _, _) = run_on_device(&build, &ch, DeviceConfig::sim_tiny());
    assert_ne!(
        device,
        expected_checksum(&build, &ch),
        "stale self-modifying code must be detectable"
    );
}

#[test]
fn smc_evict_works_when_loop_overflows_caches() {
    // Evict mode with a loop bigger than every i-cache level of the tiny
    // device (L0 1 KiB / L1 2 KiB / L2 4 KiB): every line is re-fetched
    // each iteration, so patches are observed — checksum matches.
    let mut params = VfParams::test_tiny();
    params.smc = SmcMode::Evict;
    params.unroll = 16; // 16 steps × ~15 insns × 16 B ≈ 3.8 KiB…
    params.pattern_pairs = 6;
    params.iterations = 4;
    params.data_bytes = 32 * 1024;
    let build = build_vf(&params, BASE, 0xF00D).unwrap();
    let cfg = DeviceConfig::sim_tiny();
    assert!(
        build.layout.loop_bytes > cfg.l2i_bytes,
        "precondition: loop ({} B) must exceed L2i ({} B)",
        build.layout.loop_bytes,
        cfg.l2i_bytes
    );
    let ch = challenges(params.grid_blocks, 4);
    let (device, _, _) = run_on_device(&build, &ch, cfg);
    assert_eq!(device, expected_checksum(&build, &ch));
}

#[test]
fn naive_schedule_matches_replay_but_is_slower() {
    // Needs enough resident warps that memory latency is hidden and the
    // schedule quality (dual-issue interleave, stall fields, occupancy)
    // dominates — at single-warp occupancy both schedules are
    // latency-bound and the gap shrinks.
    let mut params = VfParams::test_tiny();
    params.grid_blocks = 8;
    params.block_threads = 128;
    params.iterations = 6;
    let optimized = build_vf(&params, BASE, 0xBEEF).unwrap();
    let mut pn = params;
    pn.naive_schedule = true;
    let naive = build_vf(&pn, BASE, 0xBEEF).unwrap();
    let ch = challenges(params.grid_blocks, 5);

    let (dev_opt, cycles_opt, _) = run_on_device(&optimized, &ch, DeviceConfig::sim_small());
    let (dev_naive, cycles_naive, _) = run_on_device(&naive, &ch, DeviceConfig::sim_small());

    // Each schedule matches its own replay (the checksums themselves
    // differ because the code image — which is part of the checksummed
    // region — differs between the two builds).
    assert_eq!(dev_opt, expected_checksum(&optimized, &ch));
    assert_eq!(dev_naive, expected_checksum(&naive, &ch));
    // …but the compiler-style schedule is substantially slower (§7.1).
    assert!(
        cycles_naive as f64 > cycles_opt as f64 * 1.5,
        "naive {cycles_naive} vs optimized {cycles_opt}"
    );
}

#[test]
fn inner_loop_matches_replay() {
    let mut params = VfParams::test_tiny();
    params.inner = Some((2, 3));
    params.iterations = 3;
    let build = build_vf(&params, BASE, 0xABCD).unwrap();
    let ch = challenges(params.grid_blocks, 6);
    let (device, _, _) = run_on_device(&build, &ch, DeviceConfig::sim_tiny());
    assert_eq!(device, expected_checksum(&build, &ch));
}

#[test]
fn tampered_code_changes_checksum() {
    // Flip one immediate in the static region (the reference loop image):
    // a data-substitution-free direct modification. The device checksum
    // diverges from the verifier's expectation.
    let params = VfParams::test_tiny();
    let build = build_vf(&params, BASE, 0xF00D).unwrap();
    let ch = challenges(params.grid_blocks, 7);
    let expected = expected_checksum(&build, &ch);

    let mut dev = Device::new(DeviceConfig::sim_tiny());
    let ctx = dev.create_context();
    let base = dev.alloc(build.layout.total_bytes).unwrap();
    let mut image = build.image.clone();
    // Tamper a word in the fill area (guaranteed not to break execution).
    let off = build.layout.fill_off as usize + 64;
    image[off] ^= 0x80;
    dev.memcpy_h2d(base, &image).unwrap();
    for (b, c) in ch.iter().enumerate() {
        dev.memcpy_h2d(build.layout.challenge_addr(b as u32), c)
            .unwrap();
    }
    dev.run_single(LaunchParams {
        ctx,
        entry_pc: build.layout.entry_addr(),
        grid_dim: params.grid_blocks,
        block_dim: params.block_threads,
        regs_per_thread: build.regs_per_thread(),
        smem_bytes: build.smem_bytes(),
        params: vec![],
    })
    .unwrap();
    let raw = dev.memcpy_d2h(build.layout.result_addr(), 32).unwrap();
    let mut device = [0u32; 8];
    for (j, cell) in device.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().unwrap());
    }
    assert_ne!(device, expected, "tampering must change the checksum");
}

#[test]
fn utilization_reported() {
    // Smoke-check the stats plumbing: a VF run reports non-trivial
    // utilization and instruction-cache hits.
    let params = VfParams::test_tiny();
    let build = build_vf(&params, BASE, 0x1234).unwrap();
    let ch = challenges(params.grid_blocks, 8);
    let (_, _, util) = run_on_device(&build, &ch, DeviceConfig::sim_tiny());
    assert!(util > 0.01 && util <= 1.0, "utilization {util}");
}
