//! Property-based device-vs-replay equivalence: for random small VF
//! configurations and random challenges, the microcode running on the
//! simulator must agree with the verifier's pure-Rust replay bit for bit.
//! This is the strongest correctness property in the workspace — it ties
//! the code generator, the ISA encoding, the simulator semantics and the
//! replay together.

// Entire suite gated: `proptest` is not vendored in this dependency-free
// tree. Build with `--features proptest` after re-adding the dev-dependency
// locally to run it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use sage_gpu_sim::{Device, DeviceConfig, LaunchParams};
use sage_vf::{build_vf, expected_checksum, SmcMode, VfParams};

fn run_on_device(build: &sage_vf::codegen::VfBuild, challenges: &[[u8; 16]]) -> [u32; 8] {
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    dev.set_hazard_check(true);
    let ctx = dev.create_context();
    let base = dev.alloc(build.layout.total_bytes).unwrap();
    assert_eq!(base, build.layout.base);
    dev.memcpy_h2d(base, &build.image).unwrap();
    for (b, ch) in challenges.iter().enumerate() {
        dev.memcpy_h2d(build.layout.challenge_addr(b as u32), ch)
            .unwrap();
    }
    let (_, stats) = dev
        .run_single(LaunchParams {
            ctx,
            entry_pc: build.layout.entry_addr(),
            grid_dim: build.params.grid_blocks,
            block_dim: build.params.block_threads,
            regs_per_thread: build.regs_per_thread(),
            smem_bytes: build.smem_bytes(),
            params: vec![],
        })
        .unwrap();
    assert_eq!(stats.hazard_violations, 0);
    let raw = dev.memcpy_d2h(build.layout.result_addr(), 32).unwrap();
    let mut cells = [0u32; 8];
    for (j, cell) in cells.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().unwrap());
    }
    cells
}

fn arb_params() -> impl Strategy<Value = VfParams> {
    (
        1usize..6, // unroll
        0usize..6, // pattern pairs
        1u32..5,   // iterations
        1u32..3,   // blocks
        prop::sample::select(vec![32u32, 64, 96]),
        prop::sample::select(vec![SmcMode::Off, SmcMode::Cctl]),
        prop::option::of((1usize..3, 1u32..3)),
        any::<bool>(),
    )
        .prop_map(
            |(unroll, pattern_pairs, iterations, grid_blocks, threads, smc, inner, naive)| {
                VfParams {
                    data_bytes: 16 * 1024,
                    unroll,
                    pattern_pairs,
                    iterations,
                    smc,
                    inner,
                    grid_blocks,
                    block_threads: threads,
                    naive_schedule: naive,
                    injected_nops: 0,
                }
            },
        )
}

fn arb_challenges(blocks: u32) -> impl Strategy<Value = Vec<[u8; 16]>> {
    prop::collection::vec(any::<[u8; 16]>(), blocks as usize..=blocks as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn device_equals_replay_for_random_configs(
        params in arb_params(),
        seed in any::<u32>(),
    ) {
        let challenges: Vec<[u8; 16]> = (0..params.grid_blocks)
            .map(|b| {
                let mut c = [0u8; 16];
                for (i, byte) in c.iter_mut().enumerate() {
                    *byte = (seed.rotate_left(b * 8 + i as u32) & 0xFF) as u8;
                }
                c
            })
            .collect();
        let build = build_vf(&params, 4096, seed).unwrap();
        let device = run_on_device(&build, &challenges);
        let replay = expected_checksum(&build, &challenges);
        prop_assert_eq!(device, replay, "params {:?}", params);
    }

    #[test]
    fn replay_is_pure(params in arb_params(), challenges in arb_challenges(2)) {
        let mut p = params;
        p.grid_blocks = 2;
        p.iterations = 2;
        let build = build_vf(&p, 4096, 1).unwrap();
        let a = expected_checksum(&build, &challenges);
        let b = expected_checksum(&build, &challenges);
        prop_assert_eq!(a, b);
    }
}
