//! The arithmetic specification of the checksum function — one source of
//! truth shared by the code generator (which emits instructions with
//! these exact semantics) and the verifier replay (which calls these
//! functions directly).
//!
//! Everything here is `u32` wrapping arithmetic, mirroring the simulated
//! ISA's `IMAD`/`LEA.HI`/`SHF`/`LOP3`/`IADD3` semantics.

/// Number of running checksum registers per thread (`C0..C7`, held in
/// `R8..R15`).
pub const NUM_C: usize = 8;

/// Golden-ratio multiplier used in state initialization.
pub const GOLD: u32 = 0x9E37_79B9;

/// Second initialization multiplier (from MurmurHash3's finalizer).
pub const INIT_MIX: u32 = 0x85EB_CA6B;

/// Initial immediate of the self-modifying `SHF.R` instruction.
pub const SMC_INIT: u32 = 7;

/// splitmix32 — used for per-step constants and for the fill pattern.
pub fn splitmix32(x: u32) -> u32 {
    let mut z = x.wrapping_add(0x9E37_79B9);
    z = (z ^ (z >> 16)).wrapping_mul(0x85EB_CA6B);
    z = (z ^ (z >> 13)).wrapping_mul(0xC2B2_AE35);
    z ^ (z >> 16)
}

/// Odd multiplier for the busy-wait `IMAD`s of step `k`.
pub fn step_kmul(k: usize) -> u32 {
    splitmix32(k as u32).wrapping_mul(2).wrapping_add(1)
}

/// Shift amount of the busy-wait `LEA.HI`s of step `k` (1..=31).
pub fn step_s1(k: usize) -> u8 {
    (1 + (k as u32 * 7) % 31) as u8
}

/// Rotation amount of the fold of step `k` (1..=31).
pub fn step_s2(k: usize) -> u8 {
    (1 + (k as u32 * 13) % 31) as u8
}

/// Per-thread checksum state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ThreadState {
    /// Running checksum registers `C0..C7`.
    pub c: [u32; NUM_C],
}

/// Initializes the per-thread state from the block challenge and the
/// global thread id (paper §5.2.2 "checksum initialization").
pub fn init_state(challenge: &[u32; 4], gtid: u32) -> ThreadState {
    let mut c = [0u32; NUM_C];
    for (i, slot) in c.iter_mut().enumerate() {
        let t = gtid.wrapping_mul(8).wrapping_add(i as u32 + 1);
        let mut v = challenge[i & 3] ^ t.wrapping_mul(GOLD);
        v = v.wrapping_mul(INIT_MIX).wrapping_add(i as u32 + 1);
        *slot = v;
    }
    ThreadState { c }
}

/// Executes checksum step `k` of iteration `iter` with `pattern_pairs`
/// busy-wait pairs against the static region (`region` is the
/// `data_bytes`-sized checksummed image located at device address
/// `region_base`; its length in words must be a power of two).
///
/// Mirrors, in order, the exact instruction sequence the code generator
/// emits: pseudo-random load, the interleaved busy-wait pattern, and the
/// fold (paper §6.5 steps 2–4). The fold includes the *absolute* data
/// pointer, not the relative index — redirecting the traversal to a
/// pristine copy of the region at a different address therefore changes
/// the checksum (the memory-copy defence, §5.2.2 step 3 and §8).
pub fn step_with_pattern(
    state: &mut ThreadState,
    region: &[u8],
    region_base: u32,
    k: usize,
    iter: u32,
    pattern_pairs: usize,
) {
    let words = (region.len() / 4) as u32;
    debug_assert!(words.is_power_of_two());
    let mask = words - 1;
    let j = k % NUM_C;
    let jprev = (k + NUM_C - 1) % NUM_C;
    let jnext = (k + 1) % NUM_C;

    // Pseudo-random memory access.
    let idx = state.c[j] & mask;
    let off = idx as usize * 4;
    // A malformed region (too short for the drawn index) contributes a
    // zero word instead of panicking the verifier: the checksum comes out
    // wrong and the round is rejected — fail closed, never fall over.
    let d = region
        .get(off..off + 4)
        .map_or(0, |b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]));

    // Busy-wait pattern. The pattern walks the six checksum registers
    // that are not `j`/`jnext`, so its writes never sit closer than the
    // 4-cycle register latency to the fold's reads (scheduling
    // constraint; see the code generator).
    let kmul = step_kmul(k);
    let s1 = step_s1(k);
    for p in 0..pattern_pairs {
        let a = (k + 2 + (p % 6)) % NUM_C;
        state.c[a] = state.c[a].wrapping_mul(kmul).wrapping_add(state.c[a]);
        let b = (k + 2 + ((p + 3) % 6)) % NUM_C;
        state.c[b] = (state.c[b] >> s1).wrapping_add(state.c[b]);
    }

    // Fold: strongly ordered mix of the loaded word and the data
    // pointer (absolute address). Implemented with IMAD-form adds on the
    // device so the FMA and ALU pipes stay balanced (the iteration
    // counter is folded once per pass, see [`iter_fold`]).
    let s2 = step_s2(k);
    let addr = region_base.wrapping_add(idx.wrapping_mul(4));
    let t0 = state.c[j].rotate_left(s2 as u32);
    let t1 = d ^ state.c[jprev];
    state.c[jnext] = state.c[jnext].wrapping_add(addr);
    state.c[j] = t0.wrapping_add(t1);
    let _ = iter;
}

/// Folds the iteration counter into the state once per outer loop pass
/// (paper §6.5 step 4: "the current iteration index … incorporated into
/// the checksum").
pub fn iter_fold(state: &mut ThreadState, iter: u32) {
    state.c[2] = state.c[2].wrapping_add(iter);
}

/// Applies the self-modifying-code pair `C0 += C0 >> (n & 31)` (paper
/// §6.5 step 5).
pub fn smc_update(state: &mut ThreadState, n: u32) {
    let t = state.c[0] >> (n & 31);
    state.c[0] = state.c[0].wrapping_add(t);
}

/// Deterministic fill byte stream for the region tail (verifier-chosen).
pub fn fill_bytes(seed: u32, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut i = 0u32;
    while out.len() < len {
        let w = splitmix32(seed ^ i.wrapping_mul(0x01F3_51D7));
        out.extend_from_slice(&w.to_le_bytes());
        i = i.wrapping_add(1);
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_state_depends_on_challenge_and_gtid() {
        let a = init_state(&[1, 2, 3, 4], 0);
        let b = init_state(&[1, 2, 3, 4], 1);
        let c = init_state(&[9, 2, 3, 4], 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // All 8 registers initialized distinctly.
        let mut regs = a.c.to_vec();
        regs.dedup();
        assert_eq!(regs.len(), NUM_C);
    }

    #[test]
    fn step_is_deterministic_and_sensitive() {
        let region = fill_bytes(7, 4096);
        let ch = [10, 20, 30, 40];
        let mut s1 = init_state(&ch, 3);
        let mut s2 = init_state(&ch, 3);
        for k in 0..16 {
            step_with_pattern(&mut s1, &region, 0x4000, k, 0, 4);
            step_with_pattern(&mut s2, &region, 0x4000, k, 0, 4);
        }
        assert_eq!(s1, s2);

        // Tampering the region changes the checksum with high probability
        // once the traversal hits a modified word; flip a bit in every
        // 8th word so 64 iterations of 16 steps hit one almost surely.
        let mut tampered = region.clone();
        for w in (0..tampered.len()).step_by(32) {
            tampered[w] ^= 1;
        }
        let mut s3 = init_state(&ch, 3);
        for iter in 0..64 {
            for k in 0..16 {
                step_with_pattern(&mut s3, &tampered, 0x4000, k, iter, 4);
            }
        }
        let mut s4 = init_state(&ch, 3);
        for iter in 0..64 {
            for k in 0..16 {
                step_with_pattern(&mut s4, &region, 0x4000, k, iter, 4);
            }
        }
        assert_ne!(s3, s4);
    }

    #[test]
    fn step_order_matters() {
        // Strong ordering: swapping two steps changes the result.
        let region = fill_bytes(7, 4096);
        let ch = [1, 2, 3, 4];
        let mut a = init_state(&ch, 0);
        step_with_pattern(&mut a, &region, 0, 0, 0, 2);
        step_with_pattern(&mut a, &region, 0, 1, 0, 2);
        let mut b = init_state(&ch, 0);
        step_with_pattern(&mut b, &region, 0, 1, 0, 2);
        step_with_pattern(&mut b, &region, 0, 0, 0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn smc_update_semantics() {
        let mut s = ThreadState { c: [0x80; NUM_C] };
        smc_update(&mut s, 3);
        assert_eq!(s.c[0], 0x80 + (0x80 >> 3));
        // Shift is masked to 5 bits.
        let mut s2 = ThreadState { c: [0x80; NUM_C] };
        smc_update(&mut s2, 35);
        assert_eq!(s2.c[0], 0x80 + (0x80 >> 3));
    }

    #[test]
    fn fill_is_deterministic_per_seed() {
        assert_eq!(fill_bytes(1, 100), fill_bytes(1, 100));
        assert_ne!(fill_bytes(1, 100), fill_bytes(2, 100));
        assert_eq!(fill_bytes(1, 33).len(), 33);
    }

    #[test]
    fn step_constants_vary() {
        assert_ne!(step_kmul(0), step_kmul(1));
        assert_eq!(step_kmul(5) % 2, 1, "multiplier must be odd");
        assert!((1..=31).contains(&step_s1(17)));
        assert!((1..=31).contains(&step_s2(17)));
    }
}
