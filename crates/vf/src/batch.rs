//! Batched structure-of-arrays replay engine.
//!
//! The scalar replay in [`crate::replay`] walks one thread at a time and
//! re-derives every per-step constant (`step_kmul`, `step_s1`, shift and
//! register indices) once per thread per iteration, even though those
//! constants depend only on the step index. For a production-sized VF
//! (1024 threads × 60 iterations × ~300 steps) that is hundreds of
//! millions of redundant `splitmix32` evaluations — and the per-thread
//! walk defeats vectorization, because the compiler sees one dependent
//! scalar chain instead of 32 independent ones.
//!
//! This module fixes both structurally:
//!
//! 1. **Pre-traced steps.** The per-step constants are computed once per
//!    replay into a [`StepTrace`] — the flat op-stream the checksum
//!    actually executes — and shared by every thread and iteration.
//! 2. **SoA thread batches.** Threads are processed in batches of
//!    [`LANES`]; the checksum registers live as `c[reg][lane]` rows, so
//!    the busy-wait pattern and the fold become tight loops over
//!    independent lanes that the compiler auto-vectorizes, and the
//!    pseudo-random region gathers of a whole batch issue together
//!    (memory-level parallelism instead of one serialized miss per
//!    step).
//!
//! Everything is `u32` wrapping arithmetic on independent lanes, so the
//! result is bit-exact against the scalar spec by construction; the
//! differential suites in `replay.rs` and `tests/batch_exactness.rs`
//! enforce it.

use crate::{
    codegen::VfBuild,
    params::SmcMode,
    spec::{self, NUM_C},
};

/// Threads per SoA batch. Matches the warp width of the device the
/// checksum runs on — and 32 × 4-byte lanes is two AVX2 / one AVX-512
/// vector per row operation.
pub const LANES: usize = 32;

/// Constants of one checksum step, derived once from the step index.
#[derive(Clone, Debug)]
struct StepDesc {
    /// Checksum register indices: `k % 8`, its predecessor and successor.
    j: u8,
    jprev: u8,
    jnext: u8,
    /// Busy-wait multiplier (`step_kmul`).
    kmul: u32,
    /// Busy-wait shift (`step_s1`).
    s1: u8,
    /// Fold rotation (`step_s2`).
    s2: u8,
    /// Busy-wait pattern: the (mul-register, shift-register) index pair
    /// of each pattern step, pre-resolved.
    pairs: Vec<(u8, u8)>,
}

fn step_desc(k: usize, pattern_pairs: usize) -> StepDesc {
    StepDesc {
        j: (k % NUM_C) as u8,
        jprev: ((k + NUM_C - 1) % NUM_C) as u8,
        jnext: ((k + 1) % NUM_C) as u8,
        kmul: spec::step_kmul(k),
        s1: spec::step_s1(k),
        s2: spec::step_s2(k),
        pairs: (0..pattern_pairs)
            .map(|p| {
                let a = ((k + 2 + (p % 6)) % NUM_C) as u8;
                let b = ((k + 2 + ((p + 3) % 6)) % NUM_C) as u8;
                (a, b)
            })
            .collect(),
    }
}

/// The pre-traced step stream of one checksum iteration: the main
/// unrolled body plus the optional inner loop, exactly as
/// `replay::replay_block`'s `run_iteration` walks them — plus the
/// static region re-laid-out as whole `u32` words, so the per-step
/// gather is one indexed word load instead of a 4-byte slice decode.
pub struct StepTrace {
    main: Vec<StepDesc>,
    inner: Vec<StepDesc>,
    inner_iters: u32,
    /// The build's static region as little-endian words. A trailing
    /// partial word (impossible for power-of-two regions, but the scalar
    /// spec tolerates it) is dropped, which matches the scalar
    /// fail-closed read: an index past the last whole word yields 0.
    words: Vec<u32>,
}

impl StepTrace {
    /// Builds the trace for `build`'s parameters. Cost is one
    /// `splitmix32` per *step*, instead of one per step × thread ×
    /// iteration.
    pub fn new(build: &VfBuild) -> StepTrace {
        let p = &build.params;
        let (inner_steps, inner_iters) = p.inner.unwrap_or((0, 0));
        StepTrace {
            main: (0..p.unroll)
                .map(|k| step_desc(k, p.pattern_pairs))
                .collect(),
            inner: (0..inner_steps)
                .map(|s| step_desc(p.unroll + s, p.pattern_pairs))
                .collect(),
            inner_iters,
            words: build
                .static_region()
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        }
    }
}

/// One batch of exactly [`LANES`] threads in structure-of-arrays
/// layout: `c[reg][lane]`.
///
/// Partial batches cannot arise: `VfParams::validate` requires
/// `block_threads` to be a non-zero multiple of the warp width, so a
/// block always splits into whole batches. Keeping the lane count a
/// compile-time constant matters — every lane loop below has a fixed
/// trip count over a fixed-size array, which is what lets LLVM drop
/// the bounds checks and emit straight-line SIMD.
struct Batch {
    c: [[u32; LANES]; NUM_C],
}

impl Batch {
    fn init(challenge: &[u32; 4], first_gtid: u32) -> Batch {
        let mut b = Batch {
            c: [[0; LANES]; NUM_C],
        };
        for lane in 0..LANES {
            let st = spec::init_state(challenge, first_gtid + lane as u32);
            for r in 0..NUM_C {
                b.c[r][lane] = st.c[r];
            }
        }
        b
    }

    /// Executes one checksum step over the batch. Same per-lane
    /// operation order as `spec::step_with_pattern`: gather, busy-wait
    /// pattern, fold. Each phase is a whole-row loop over independent
    /// `u32` lanes, so regrouping the work by row cannot change any
    /// lane's value — the register indices `j`/`jprev`/`jnext` of one
    /// step are pairwise distinct (consecutive residues mod 8), so the
    /// split fold below touches disjoint rows.
    ///
    /// All row indices are masked with `& 7` (`NUM_C - 1`): they are
    /// already reduced mod 8 by construction, and the mask is what
    /// proves in-bounds access to the compiler so the row loops
    /// vectorize instead of carrying per-access panic branches.
    // Indexed fixed-trip loops (not iterators) are load-bearing here:
    // they are the shape LLVM's vectorizer recognises across the whole
    // function (see module docs), so the range-loop lint is off.
    #[allow(clippy::needless_range_loop)]
    #[inline(always)]
    fn step(&mut self, d: &StepDesc, words: &[u32], region_base: u32, mask: u32) {
        let (j, jprev, jnext) = (
            d.j as usize & (NUM_C - 1),
            d.jprev as usize & (NUM_C - 1),
            d.jnext as usize & (NUM_C - 1),
        );

        // Pseudo-random gather: the per-lane region word and its index.
        // All lane indices are computed before the loads, so the
        // out-of-order core overlaps the (likely cold) region misses.
        let mut idx = [0u32; LANES];
        let mut data = [0u32; LANES];
        for l in 0..LANES {
            idx[l] = self.c[j][l] & mask;
        }
        for l in 0..LANES {
            // Fail closed like the scalar spec: a region too short for
            // the drawn index contributes a zero word.
            data[l] = words.get(idx[l] as usize).copied().unwrap_or(0);
        }

        // Busy-wait pattern: each half-pair is one whole-row operation
        // with a shared constant — exactly the SIMD-friendly shape.
        let kmul = d.kmul;
        let s1 = d.s1 as u32;
        for &(a, b) in &d.pairs {
            let row = &mut self.c[a as usize & (NUM_C - 1)];
            for v in row.iter_mut() {
                *v = v.wrapping_mul(kmul).wrapping_add(*v);
            }
            let row = &mut self.c[b as usize & (NUM_C - 1)];
            for v in row.iter_mut() {
                *v = (*v >> s1).wrapping_add(*v);
            }
        }

        // Fold, row by row in scalar order: the address into `jnext`,
        // then the rotate-xor mix into `j` (reading `jprev` after the
        // pattern). The rows are distinct, so splitting the per-lane
        // fold into three whole-row loops is value-identical.
        let s2 = d.s2 as u32;
        {
            let row = &mut self.c[jnext];
            for l in 0..LANES {
                let addr = region_base.wrapping_add(idx[l].wrapping_mul(4));
                row[l] = row[l].wrapping_add(addr);
            }
        }
        for l in 0..LANES {
            data[l] ^= self.c[jprev][l];
        }
        {
            let row = &mut self.c[j];
            for l in 0..LANES {
                row[l] = row[l].rotate_left(s2).wrapping_add(data[l]);
            }
        }
    }

    /// Runs one full checksum iteration (main body, inner loop, iteration
    /// fold) over the batch.
    #[inline(always)]
    fn run_iteration(&mut self, trace: &StepTrace, region_base: u32, iter: u32) {
        let nwords = trace.words.len() as u32;
        debug_assert!(nwords.is_power_of_two());
        let mask = nwords - 1;
        for d in &trace.main {
            self.step(d, &trace.words, region_base, mask);
        }
        for _ in 0..trace.inner_iters {
            for d in &trace.inner {
                self.step(d, &trace.words, region_base, mask);
            }
        }
        // iter_fold: c[2] += iter, every lane.
        for l in 0..LANES {
            self.c[2][l] = self.c[2][l].wrapping_add(iter);
        }
    }

    /// Applies the self-modifying-code update `C0 += C0 >> (n & 31)`.
    #[inline(always)]
    fn smc_update(&mut self, n: u32) {
        let sh = n & 31;
        for l in 0..LANES {
            let t = self.c[0][l] >> sh;
            self.c[0][l] = self.c[0][l].wrapping_add(t);
        }
    }

    /// Accumulates every lane's final registers into `sums`.
    #[allow(clippy::needless_range_loop)]
    fn accumulate(&self, sums: &mut [u32; NUM_C]) {
        for r in 0..NUM_C {
            let mut s = 0u32;
            for l in 0..LANES {
                s = s.wrapping_add(self.c[r][l]);
            }
            sums[r] = sums[r].wrapping_add(s);
        }
    }
}

/// Batched-engine equivalent of [`crate::replay::replay_block`]: replays
/// one thread block and returns the per-register sums of all its
/// threads' final checksum states. Bit-exact against the scalar replay
/// (`replay_block` is retained as the oracle).
///
/// On x86-64 hosts with AVX2 the whole replay is dispatched to a
/// `#[target_feature(enable = "avx2")]` clone of the engine: the SoA
/// lane loops are plain safe code either way, but the baseline x86-64
/// target (SSE2) has no packed 32-bit multiply, so the busy-wait
/// pattern rows only vectorize in the AVX2 clone. Integer wrapping
/// arithmetic is value-identical across the two code paths, so the
/// dispatch cannot change the checksum.
pub fn replay_block_batched(
    build: &VfBuild,
    trace: &StepTrace,
    challenge: &[u8; 16],
    block: u32,
) -> [u32; NUM_C] {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { replay_block_batched_avx2(build, trace, challenge, block) };
    }
    replay_block_batched_impl(build, trace, challenge, block)
}

/// AVX2-enabled clone of [`replay_block_batched_impl`]. The attribute
/// lets LLVM use 256-bit integer ops for every lane loop inlined below.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn replay_block_batched_avx2(
    build: &VfBuild,
    trace: &StepTrace,
    challenge: &[u8; 16],
    block: u32,
) -> [u32; NUM_C] {
    replay_block_batched_impl(build, trace, challenge, block)
}

#[inline(always)]
fn replay_block_batched_impl(
    build: &VfBuild,
    trace: &StepTrace,
    challenge: &[u8; 16],
    block: u32,
) -> [u32; NUM_C] {
    let p = &build.params;
    let region_base = build.layout.base;
    let word = |i: usize| {
        u32::from_le_bytes([
            challenge[i],
            challenge[i + 1],
            challenge[i + 2],
            challenge[i + 3],
        ])
    };
    let ch = [word(0), word(4), word(8), word(12)];
    let threads = p.block_threads as usize;
    // Guaranteed by `VfParams::validate`; a partial batch would fold
    // garbage lanes into the sums.
    assert!(
        threads.is_multiple_of(LANES),
        "block_threads must be a multiple of the batch width"
    );
    let mut sums = [0u32; NUM_C];

    match p.smc {
        SmcMode::Off => {
            // Threads are independent: one batch at a time, all its
            // iterations back to back (best register-row locality).
            for t in (0..threads).step_by(LANES) {
                let mut batch = Batch::init(&ch, block * p.block_threads + t as u32);
                for iter in 0..p.iterations {
                    batch.run_iteration(trace, region_base, iter);
                }
                batch.accumulate(&mut sums);
            }
        }
        SmcMode::Evict | SmcMode::Cctl => {
            // The self-modifying immediate couples the block's threads:
            // every thread uses the same `n` within an iteration, and
            // thread 0's post-update C0 becomes the next `n`. All
            // batches therefore advance in iteration lockstep.
            let mut batches: Vec<Batch> = (0..threads)
                .step_by(LANES)
                .map(|t| Batch::init(&ch, block * p.block_threads + t as u32))
                .collect();
            let mut n = spec::SMC_INIT;
            for iter in 0..p.iterations {
                for batch in batches.iter_mut() {
                    batch.run_iteration(trace, region_base, iter);
                    batch.smc_update(n);
                }
                n = batches[0].c[0][0];
            }
            for batch in &batches {
                batch.accumulate(&mut sums);
            }
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_vf, replay::replay_block, SmcMode, VfParams};

    fn challenges(n: u32, seed: u8) -> Vec<[u8; 16]> {
        (0..n)
            .map(|b| {
                let mut c = [0u8; 16];
                for (i, byte) in c.iter_mut().enumerate() {
                    *byte = seed
                        .wrapping_mul(29)
                        .wrapping_add(b as u8 * 13)
                        .wrapping_add(i as u8 * 7);
                }
                c
            })
            .collect()
    }

    fn assert_batched_matches_scalar(p: &VfParams, seed: u8) {
        let build = build_vf(p, 0x1000, 7).unwrap();
        let trace = StepTrace::new(&build);
        for (b, ch) in challenges(p.grid_blocks, seed).iter().enumerate() {
            assert_eq!(
                replay_block_batched(&build, &trace, ch, b as u32),
                replay_block(&build, ch, b as u32),
                "block {b} diverged (smc {:?}, threads {})",
                p.smc,
                p.block_threads,
            );
        }
    }

    #[test]
    fn matches_scalar_smc_off() {
        let mut p = VfParams::test_tiny();
        p.smc = SmcMode::Off;
        assert_batched_matches_scalar(&p, 3);
    }

    #[test]
    fn matches_scalar_smc_evict() {
        let mut p = VfParams::test_tiny();
        p.smc = SmcMode::Evict;
        assert_batched_matches_scalar(&p, 5);
    }

    #[test]
    fn matches_scalar_across_batch_counts() {
        // One batch, and several batches advancing in SMC lockstep
        // (`block_threads` must be a multiple of the warp width, so a
        // partial batch cannot arise from a valid build).
        for threads in [32, 64, 96] {
            let mut p = VfParams::test_tiny();
            p.block_threads = threads;
            assert_batched_matches_scalar(&p, 9);
        }
    }

    #[test]
    fn matches_scalar_with_inner_loop() {
        let mut p = VfParams::test_tiny();
        p.inner = Some((3, 2));
        assert_batched_matches_scalar(&p, 11);
    }
}
