//! Microcode generation for the verification function.
//!
//! Two schedules are supported (paper §7.1): the *optimized* schedule —
//! interleaved IMAD/LEA.HI busy-wait pairs hiding the pseudo-random load
//! behind both dispatch pipes, minimal stall fields, scoreboarded loads —
//! and the *naive* ("PTXAS-style") schedule, which keeps identical
//! semantics but waits on loads immediately, stalls conservatively, and
//! models register spilling with shared-memory round trips plus a doubled
//! register allocation (halving occupancy).

use sage_isa::{
    op::lut, CmpOp, CtrlInfo, Operand, Pred, PredReg, Program, ProgramBuilder, Reg, SpecialReg,
};

use crate::{
    layout::VfLayout,
    params::{SmcMode, VfParams},
    spec,
};

// Register map (32 registers per thread, paper §6.3).
const R_ITER: Reg = Reg(2);
const R_IDX: Reg = Reg(3);
const R_D: Reg = Reg(4);
const R_INNER: Reg = Reg(5);
const R_T0: Reg = Reg(6);
const R_T1: Reg = Reg(7);
/// `C0..C7` live in `R8..R15`.
const R_C0: u8 = 8;
const R_LOOP: Reg = Reg(16);
const R_S17: Reg = Reg(17);
const R_WSLOT: Reg = Reg(18);
const R_SPILL: Reg = Reg(19);
const R_TID: Reg = Reg(20);
const R_CTA: Reg = Reg(21);
const R_NTID: Reg = Reg(22);
const R_GTID: Reg = Reg(23);
const R_CHADDR: Reg = Reg(24);
/// Challenge words live in `R25..R28`.
const R_CH0: u8 = 25;
const R_RESULT: Reg = Reg(29);
const R_ADDR: Reg = Reg(30);
const R_INNERTGT: Reg = Reg(31);
/// Region base register (set once in init; lets the address computation
/// run on the FMA pipe as an IMAD).
const R_BASE: Reg = Reg(1);

const P_LOOP: PredReg = PredReg(0);
const P_LEADER: PredReg = PredReg(1);
const P_LANE0: PredReg = PredReg(2);
const P_INNER: PredReg = PredReg(3);

fn rc(i: usize) -> Reg {
    Reg(R_C0 + (i % spec::NUM_C) as u8)
}

fn s4() -> CtrlInfo {
    CtrlInfo::stall(4).with_yield()
}

fn s2() -> CtrlInfo {
    CtrlInfo::stall(2)
}

fn s1() -> CtrlInfo {
    CtrlInfo::stall(1)
}

/// A complete VF build: device image, layout and launch geometry.
#[derive(Clone, Debug)]
pub struct VfBuild {
    /// Build parameters.
    pub params: VfParams,
    /// Memory layout.
    pub layout: VfLayout,
    /// Initial device image (length `layout.total_bytes`): code, fill,
    /// executable copies; challenge and result areas zeroed.
    pub image: Vec<u8>,
    /// Fill seed used for the region tail.
    pub fill_seed: u32,
    /// Instructions in one loop copy (the paper's "instructions" row of
    /// Table 1).
    pub loop_instructions: usize,
    /// Instruction index of the self-modifying `SHF.R` within the loop
    /// copy, if SMC is enabled.
    pub smc_insn_index: Option<usize>,
}

impl VfBuild {
    /// The checksummed static region (verifier-known).
    pub fn static_region(&self) -> &[u8] {
        &self.image[..self.layout.data_bytes as usize]
    }

    /// A stable identity for this exact build: SHA-256 over the
    /// parameters, base address, fill seed and full device image. Two
    /// builds agree on every expected checksum iff their fingerprints
    /// match, so precomputed challenge banks key their stock by it.
    pub fn fingerprint(&self) -> crate::bank::Fingerprint {
        let p = &self.params;
        let mut h = sage_crypto::Sha256::new();
        h.update(b"sage-vf-build:");
        h.update(&p.data_bytes.to_le_bytes());
        h.update(&(p.unroll as u64).to_le_bytes());
        h.update(&(p.pattern_pairs as u64).to_le_bytes());
        h.update(&p.iterations.to_le_bytes());
        h.update(&[match p.smc {
            SmcMode::Off => 0u8,
            SmcMode::Evict => 1,
            SmcMode::Cctl => 2,
        }]);
        let (inner_steps, inner_iters) = p.inner.unwrap_or((0, 0));
        h.update(&(inner_steps as u64).to_le_bytes());
        h.update(&inner_iters.to_le_bytes());
        h.update(&p.grid_blocks.to_le_bytes());
        h.update(&p.block_threads.to_le_bytes());
        h.update(&[p.naive_schedule as u8]);
        h.update(&(p.injected_nops as u64).to_le_bytes());
        h.update(&self.layout.base.to_le_bytes());
        h.update(&self.fill_seed.to_le_bytes());
        h.update(&self.image);
        crate::bank::Fingerprint(h.finalize())
    }

    /// Registers per thread to request at launch.
    pub fn regs_per_thread(&self) -> u32 {
        if self.params.naive_schedule {
            64 // spills + pressure halve occupancy
        } else {
            32
        }
    }

    /// Shared memory bytes per block (aggregation area + spill slots for
    /// the naive schedule).
    pub fn smem_bytes(&self) -> u32 {
        let warps = self.params.block_threads / 32;
        let agg = 32 * (warps + 1);
        if self.params.naive_schedule {
            agg + self.params.block_threads * 8
        } else {
            agg
        }
    }

    /// Offset of the spill area within shared memory (the aggregation
    /// slots come first).
    pub fn agg_bytes(&self) -> u32 {
        32 * (self.params.block_threads / 32 + 1)
    }

    /// Audits a dumped device image against this build: forensic
    /// comparison used after a failed attestation to localize tampering.
    /// Result cells and challenge slots are expected to differ (they are
    /// runtime state); executable copies are compared against the
    /// reference image with the self-modifying immediate slots skipped.
    ///
    /// Returns human-readable findings; empty means the image is
    /// byte-identical where it must be.
    pub fn audit_image(&self, dump: &[u8]) -> Vec<String> {
        let l = &self.layout;
        let mut findings = Vec::new();
        if dump.len() != self.image.len() {
            findings.push(format!(
                "dump length {} != expected {}",
                dump.len(),
                self.image.len()
            ));
            return findings;
        }
        // Static region must match exactly.
        for (off, (a, b)) in dump[..l.data_bytes as usize]
            .iter()
            .zip(&self.image[..l.data_bytes as usize])
            .enumerate()
        {
            if a != b {
                let section = if (off as u32) < l.epilog_off {
                    "init"
                } else if (off as u32) < l.ref_loop_off {
                    "epilog"
                } else if (off as u32) < l.user_off {
                    "reference loop"
                } else if (off as u32) < l.fill_off {
                    "inlined kernel"
                } else {
                    "fill"
                };
                findings.push(format!(
                    "static region tampered at offset {off:#x} ({section})"
                ));
                if findings.len() >= 16 {
                    findings.push("… (truncated)".to_string());
                    return findings;
                }
            }
        }
        // Executable copies: compare against the reference image, but
        // skip the patchable immediate of the SMC instruction.
        let smc_imm_range = self.smc_insn_index.map(|idx| {
            let start = idx * 16 + sage_isa::encode::IMM_BYTE_OFFSET;
            start..start + 4
        });
        for b in 0..l.num_blocks {
            let off = (l.exec_loops_off + b * l.loop_bytes) as usize;
            let copy = &dump[off..off + l.loop_bytes as usize];
            let reference =
                &self.image[l.ref_loop_off as usize..(l.ref_loop_off + l.loop_bytes) as usize];
            for (i, (x, y)) in copy.iter().zip(reference).enumerate() {
                if x != y {
                    if let Some(range) = &smc_imm_range {
                        if range.contains(&i) {
                            continue; // legitimate self-modification
                        }
                    }
                    findings.push(format!(
                        "executable copy {b} tampered at loop offset {i:#x}"
                    ));
                    break;
                }
            }
        }
        findings
    }

    /// Renders a human-readable section map of the device image — what a
    /// loader or auditor needs to navigate the buffer.
    pub fn describe(&self) -> String {
        use core::fmt::Write as _;
        let l = &self.layout;
        let mut out = String::new();
        let _ = writeln!(out, "VF image @ {:#010x} ({} bytes)", l.base, l.total_bytes);
        let mut row = |name: &str, off: u32, len: u32| {
            let _ = writeln!(
                out,
                "  {:#010x}..{:#010x}  {:<18} {:>8} B",
                l.base + off,
                l.base + off + len,
                name,
                len
            );
        };
        row("init", 0, l.epilog_off);
        row("epilog", l.epilog_off, l.ref_loop_off - l.epilog_off);
        row("reference loop", l.ref_loop_off, l.loop_bytes);
        if l.user_bytes > 0 {
            row("inlined kernel", l.user_off, l.user_bytes);
        }
        row("fill", l.fill_off, l.data_bytes - l.fill_off);
        row(
            "executable loops",
            l.exec_loops_off,
            l.loop_bytes * l.num_blocks,
        );
        row("challenges", l.challenge_off, 16 * l.num_blocks);
        row("result cells", l.result_off, 32);
        let _ = writeln!(
            out,
            "  loop: {} instructions, SMC index {:?}, {} blocks x {} threads",
            self.loop_instructions,
            self.smc_insn_index,
            self.params.grid_blocks,
            self.params.block_threads
        );
        out
    }
}

struct Addrs {
    region_base: u32,
    epilog_abs: u32,
    exec_loops_abs: u32,
    loop_bytes: u32,
    challenge_base: u32,
    result_base: u32,
}

impl Addrs {
    fn zero() -> Addrs {
        Addrs {
            region_base: 0,
            epilog_abs: 0,
            exec_loops_abs: 0,
            loop_bytes: 0,
            challenge_base: 0,
            result_base: 0,
        }
    }
}

/// Builds the VF for the given parameters at device address `base`.
///
/// Returns an error for inconsistent parameters or if the code image does
/// not fit in the requested static region.
pub fn build_vf(params: &VfParams, base: u32, fill_seed: u32) -> Result<VfBuild, String> {
    build_vf_inline(params, base, fill_seed, None)
}

/// Builds the VF with a user kernel *inlined into the checksummed
/// region*, called by the epilog right after aggregation — the paper's
/// TOCTOU defence (§8: "this is prevented by inlining the user kernel
/// into the VF such that the epilog of the VF can directly call the user
/// kernel using a function call").
///
/// Two properties come with inlining:
/// - **No scheduler gap**: the kernel starts via `CAL` inside the already
///   attested launch — an adversary kernel cannot be scheduled in
///   between, and the VF's full resource reservation carries over.
/// - **Code integrity for free**: the kernel bytes live inside the static
///   region, so the checksum traversal fingerprints them; tampering the
///   kernel changes the checksum.
///
/// The kernel must be compatible with the VF's launch geometry
/// (`grid_blocks × block_threads`, 32 registers, shared memory shared
/// with the aggregation area) and receives the launch parameter block via
/// `R0` as usual.
pub fn build_vf_inline(
    params: &VfParams,
    base: u32,
    fill_seed: u32,
    user_kernel: Option<&sage_isa::Program>,
) -> Result<VfBuild, String> {
    params.validate()?;
    let user_bytes = user_kernel.map(|k| k.byte_len() as u32).unwrap_or(0);
    if !user_bytes.is_multiple_of(16) {
        return Err("user kernel must be a whole number of instructions".into());
    }

    // Pass 1: lengths (immediates do not change instruction size).
    let probe = Addrs::zero();
    let (loop_p, smc_idx, inner_off) = emit_loop(params, &probe)?;
    let loop_bytes = loop_p.byte_len() as u32;
    let init_len = emit_init(params, &probe, 0)?.byte_len() as u32;
    let epilog_len = emit_epilog(params, &probe, user_kernel.map(|_| 0))?.byte_len() as u32;

    let epilog_off = init_len;
    let ref_loop_off = epilog_off + epilog_len;
    let user_off = ref_loop_off + loop_bytes;
    let fill_off = user_off + user_bytes;
    if fill_off > params.data_bytes {
        return Err(format!(
            "code image ({fill_off} B) exceeds the static region ({} B); \
             increase data_bytes or shrink the loop/kernel",
            params.data_bytes
        ));
    }
    let exec_loops_off = params.data_bytes;
    let challenge_off = exec_loops_off + params.grid_blocks * loop_bytes;
    let result_off = challenge_off + params.grid_blocks * 16;
    let total_bytes = result_off + 32;

    let layout = VfLayout {
        base,
        data_bytes: params.data_bytes,
        epilog_off,
        ref_loop_off,
        user_off,
        user_bytes,
        fill_off,
        exec_loops_off,
        loop_bytes,
        num_blocks: params.grid_blocks,
        challenge_off,
        result_off,
        total_bytes,
    };

    // Pass 2: real addresses.
    let addrs = Addrs {
        region_base: base,
        epilog_abs: layout.epilog_addr(),
        exec_loops_abs: layout.exec_loops_addr(),
        loop_bytes,
        challenge_base: base + challenge_off,
        result_base: base + result_off,
    };
    let (loop_p, smc_idx2, _) = emit_loop(params, &addrs)?;
    debug_assert_eq!(smc_idx, smc_idx2);
    let init_p = emit_init(params, &addrs, inner_off)?;
    let epilog_p = emit_epilog(params, &addrs, user_kernel.map(|_| base + user_off))?;
    debug_assert_eq!(init_p.byte_len() as u32, init_len);
    debug_assert_eq!(epilog_p.byte_len() as u32, epilog_len);
    debug_assert_eq!(loop_p.byte_len() as u32, loop_bytes);

    // Assemble the image.
    let mut image = vec![0u8; total_bytes as usize];
    image[..init_len as usize].copy_from_slice(&init_p.encode());
    image[epilog_off as usize..(epilog_off + epilog_len) as usize]
        .copy_from_slice(&epilog_p.encode());
    let loop_bytes_v = loop_p.encode();
    image[ref_loop_off as usize..user_off as usize].copy_from_slice(&loop_bytes_v);
    if let Some(kernel) = user_kernel {
        let mut k = kernel.clone();
        k.relocate(base + user_off);
        image[user_off as usize..fill_off as usize].copy_from_slice(&k.encode());
    }
    let fill = spec::fill_bytes(fill_seed, (params.data_bytes - fill_off) as usize);
    image[fill_off as usize..params.data_bytes as usize].copy_from_slice(&fill);
    for b in 0..params.grid_blocks {
        let off = (exec_loops_off + b * loop_bytes) as usize;
        image[off..off + loop_bytes_v.len()].copy_from_slice(&loop_bytes_v);
    }

    Ok(VfBuild {
        params: *params,
        layout,
        image,
        fill_seed,
        loop_instructions: loop_p.len(),
        smc_insn_index: smc_idx,
    })
}

/// Emits one checksum step `k` (see [`spec::step_with_pattern`]).
fn emit_step(
    b: &mut ProgramBuilder,
    k: usize,
    params: &VfParams,
    _addrs: &Addrs,
    agg_bytes: u32,
    last_in_pass: bool,
) {
    let naive = params.naive_schedule;
    let mask = params.data_bytes / 4 - 1;
    let j = rc(k);
    let jprev = rc(k + spec::NUM_C - 1);
    let jnext = rc(k + 1);

    // Pseudo-random access: idx = C[j] & mask; addr = base + 4*idx; load.
    // The address is computed with IMAD so the step's FMA/ALU pipe usage
    // stays balanced (paper §6.3: both dispatch ports must be saturated).
    b.ctrl(s4());
    b.lop3(R_IDX, j, Operand::Imm(mask), Reg::RZ, lut::AND_AB);
    b.ctrl(s4());
    b.imad(R_ADDR, R_IDX, Operand::Imm(4), R_BASE);
    b.ctrl(s1().with_write_bar(0));
    b.ldg(R_D, R_ADDR, 0);

    // Busy-wait pattern: IMAD (FMA pipe) / LEA.HI (ALU pipe) pairs.
    let kmul = spec::step_kmul(k);
    let sh1 = spec::step_s1(k);
    for p in 0..params.pattern_pairs {
        let ra = rc(k + 2 + (p % 6));
        let rb = rc(k + 2 + ((p + 3) % 6));
        let mut c_im = if naive { s4() } else { s1() };
        if naive && p == 0 {
            // Compiler-style: wait for the load immediately.
            c_im = c_im.with_wait(0);
        }
        b.ctrl(c_im);
        b.imad(ra, ra, Operand::Imm(kmul), ra);
        b.ctrl(if naive { s4() } else { s1() });
        b.lea_hi(rb, rb, rb.into(), sh1);
    }

    // Fold.
    let sh2 = spec::step_s2(k);
    b.ctrl(if naive { s4() } else { s2() });
    b.shf_l(R_T0, j, Operand::Imm(sh2 as u32), j); // rotate-left via funnel
    let mut c_x = if naive { s4() } else { s2() };
    if !naive || params.pattern_pairs == 0 {
        c_x = c_x.with_wait(0);
    }
    b.ctrl(c_x);
    b.lop3(R_T1, R_D, jprev.into(), Reg::RZ, lut::XOR_AB);
    b.ctrl(if naive { s4() } else { s2() });
    // Fold the absolute data pointer (memory-copy defence), IMAD-form.
    b.imad(jnext, jnext, Operand::Imm(1), R_ADDR);
    // The pass-level iteration fold follows the last step directly and
    // reads a checksum register; widen the final stall so the 4-cycle
    // register latency is always covered regardless of `unroll % 8`.
    b.ctrl(if naive || last_in_pass { s4() } else { s2() });
    b.imad(j, R_T0, Operand::Imm(1), R_T1);

    if naive {
        // Spill model: round-trip C[j] through shared memory (value
        // preserved; cost is real).
        b.ctrl(s4().with_read_bar(1));
        b.sts(R_SPILL, 0, j);
        b.ctrl(s1().with_write_bar(2).with_wait(1));
        b.lds(j, R_SPILL, 0);
        b.ctrl(s4().with_wait(2));
        b.nop();
    }
    let _ = agg_bytes;
}

/// Emits one loop copy. Returns `(program, smc instruction index,
/// inner-loop entry offset in bytes)`.
fn emit_loop(params: &VfParams, addrs: &Addrs) -> Result<(Program, Option<usize>, u32), String> {
    let mut b = ProgramBuilder::new();
    let agg = 32 * (params.block_threads / 32 + 1);
    for k in 0..params.unroll {
        let last = params.inner.is_none() && k + 1 == params.unroll;
        emit_step(&mut b, k, params, addrs, agg, last);
    }

    let mut inner_off = 0u32;
    if let Some((steps, inner_iters)) = params.inner {
        b.ctrl(s4());
        b.mov(R_INNER, Operand::Imm(0));
        inner_off = b.here();
        for s in 0..steps {
            emit_step(
                &mut b,
                params.unroll + s,
                params,
                addrs,
                agg,
                s + 1 == steps,
            );
        }
        b.ctrl(s4());
        b.iadd3(R_INNER, R_INNER, Operand::Imm(1), Reg::RZ);
        b.ctrl(s4());
        b.isetp(P_INNER, CmpOp::Lt, R_INNER, Operand::Imm(inner_iters));
        b.pred(Pred::on(P_INNER));
        b.ctrl(s1());
        b.jmx(R_INNERTGT);
    }

    // Per-pass iteration-counter fold (spec::iter_fold).
    b.ctrl(s4());
    b.imad(rc(2), rc(2), Operand::Imm(1), R_ITER);

    // Adversarially injected instructions (experiment 2). An adversary
    // inserts with minimal stall; the per-iteration cost is what the
    // timing threshold must detect.
    for _ in 0..params.injected_nops {
        b.ctrl(s1());
        b.nop();
    }

    // iter++ early so the RAW distance to ISETP is covered.
    b.ctrl(s4());
    b.iadd3(R_ITER, R_ITER, Operand::Imm(1), Reg::RZ);

    let mut smc_index = None;
    if params.smc != SmcMode::Off {
        // Self-modifying pair: C0 += C0 >> N; N is this SHF.R's
        // immediate, patched below by the block leader.
        b.ctrl(s4());
        let idx = b.len();
        smc_index = Some(idx);
        b.shf_r(R_T0, Reg(R_C0), Operand::Imm(spec::SMC_INIT), Reg::RZ);
        b.ctrl(s4());
        b.iadd3(Reg(R_C0), Reg(R_C0), R_T0.into(), Reg::RZ);
        b.bar_sync();
        // Leader patches the immediate field with its updated C0.
        let patch_off = idx as u32 * 16 + sage_isa::encode::IMM_BYTE_OFFSET as u32;
        b.pred(Pred::on(P_LEADER));
        b.ctrl(s2());
        b.stg(R_LOOP, patch_off, Reg(R_C0));
        if params.smc == SmcMode::Cctl {
            b.pred(Pred::on(P_LEADER));
            b.ctrl(s2());
            b.cctl(R_LOOP, idx as u32 * 16);
        }
        b.bar_sync();
    }

    b.ctrl(s4());
    b.isetp(P_LOOP, CmpOp::Lt, R_ITER, Operand::Imm(params.iterations));
    b.pred(Pred::on_not(P_LOOP));
    b.ctrl(s1());
    b.bra_abs(addrs.epilog_abs);
    b.ctrl(s1());
    b.jmx(R_LOOP);

    let program = b
        .build()
        .map_err(|e| format!("loop codegen left an unresolved label: {e:?}"))?;
    Ok((program, smc_index, inner_off))
}

/// Emits the init section (entry point).
fn emit_init(params: &VfParams, addrs: &Addrs, inner_off: u32) -> Result<Program, String> {
    let mut b = ProgramBuilder::new();
    b.ctrl(s4());
    b.s2r(R_TID, SpecialReg::TidX);
    b.ctrl(s4());
    b.s2r(R_CTA, SpecialReg::CtaIdX);
    b.ctrl(s4());
    b.s2r(R_NTID, SpecialReg::NTidX);
    b.ctrl(s4());
    b.imad(R_GTID, R_CTA, R_NTID.into(), R_TID);
    b.ctrl(s4());
    b.lea(R_CHADDR, R_CTA, Operand::Imm(addrs.challenge_base), 4);
    for i in 0..4u8 {
        b.ctrl(s1().with_write_bar(i % 4));
        b.ldg(Reg(R_CH0 + i), R_CHADDR, 4 * i as u32);
    }
    // Leader predicates.
    b.ctrl(s4());
    b.isetp(P_LEADER, CmpOp::Eq, R_TID, Operand::Imm(0));
    b.ctrl(s4());
    b.s2r(R_S17, SpecialReg::LaneId);
    b.ctrl(s4());
    b.isetp(P_LANE0, CmpOp::Eq, R_S17, Operand::Imm(0));

    // Checksum state init (see spec::init_state).
    for i in 0..spec::NUM_C {
        b.ctrl(s4());
        b.mov(R_T1, Operand::Imm(i as u32 + 1));
        b.ctrl(s4());
        b.imad(R_T0, R_GTID, Operand::Imm(8), R_T1);
        b.ctrl(s4());
        b.imad(R_T0, R_T0, Operand::Imm(spec::GOLD), Reg::RZ);
        let mut c = s4();
        if i == 0 {
            c.wait_mask = 0b1111; // all four challenge loads
        }
        b.ctrl(c);
        b.lop3(
            rc(i),
            Reg(R_CH0 + (i % 4) as u8),
            R_T0.into(),
            Reg::RZ,
            lut::XOR_AB,
        );
        b.ctrl(s4());
        b.imad(rc(i), rc(i), Operand::Imm(spec::INIT_MIX), R_T1);
    }
    b.ctrl(s4());
    b.mov(R_ITER, Operand::Imm(0));
    b.ctrl(s4());
    b.mov(R_LOOP, Operand::Imm(addrs.exec_loops_abs));
    b.ctrl(s4());
    b.imad(R_LOOP, R_CTA, Operand::Imm(addrs.loop_bytes), R_LOOP);
    if params.inner.is_some() {
        b.ctrl(s4());
        b.lea(R_INNERTGT, R_LOOP, Operand::Imm(inner_off), 0);
    }
    b.ctrl(s4());
    b.mov(R_BASE, Operand::Imm(addrs.region_base));
    if params.naive_schedule {
        let agg = 32 * (params.block_threads / 32 + 1);
        b.ctrl(s4());
        b.imad(R_SPILL, R_TID, Operand::Imm(8), Reg::RZ);
        b.ctrl(s4());
        b.iadd3(R_SPILL, R_SPILL, Operand::Imm(agg), Reg::RZ);
    }
    b.ctrl(s1());
    b.jmx(R_LOOP);
    b.build()
        .map_err(|e| format!("codegen left an unresolved label: {e:?}"))
}

/// Emits the epilog: warp → block → grid aggregation (paper Fig. 4),
/// then either a direct `CAL` into the inlined user kernel (TOCTOU
/// defence) or exit.
fn emit_epilog(params: &VfParams, addrs: &Addrs, user_abs: Option<u32>) -> Result<Program, String> {
    let mut b = ProgramBuilder::new();
    let nwarps = params.block_threads / 32;
    let block_off = 32 * nwarps;

    // Warp level: every thread adds its 8 checksums into its warp's
    // shared-memory slots.
    b.ctrl(s4());
    b.s2r(R_S17, SpecialReg::WarpId);
    b.ctrl(s4());
    b.imad(R_WSLOT, R_S17, Operand::Imm(32), Reg::RZ);
    for j in 0..spec::NUM_C {
        b.ctrl(s2());
        b.atoms_add(R_WSLOT, 4 * j as u32, rc(j));
    }
    b.bar_sync();

    // Block level: each warp's lane 0 folds the warp slots into the block
    // slots.
    for j in 0..spec::NUM_C {
        b.pred(Pred::on(P_LANE0));
        b.ctrl(s1().with_write_bar(0));
        b.lds(R_T0, R_WSLOT, 4 * j as u32);
        b.pred(Pred::on(P_LANE0));
        b.ctrl(s2().with_wait(0));
        b.atoms_add(Reg::RZ, block_off + 4 * j as u32, R_T0);
    }
    b.bar_sync();

    // Grid level: thread 0 folds the block slots into the global result
    // cells.
    b.ctrl(s4());
    b.mov(R_RESULT, Operand::Imm(addrs.result_base));
    for j in 0..spec::NUM_C {
        b.pred(Pred::on(P_LEADER));
        b.ctrl(s1().with_write_bar(0));
        b.lds(R_T0, Reg::RZ, block_off + 4 * j as u32);
        b.pred(Pred::on(P_LEADER));
        b.ctrl(s2().with_wait(0));
        b.atomg_add(R_RESULT, 4 * j as u32, R_T0);
    }
    if let Some(user) = user_abs {
        // TOCTOU defence (§8): hand control to the inlined user kernel
        // within the same, already attested launch. The barrier makes the
        // aggregated result globally visible first.
        b.bar_sync();
        b.ctrl(s4());
        b.cal_abs(user);
    }
    b.exit();
    b.build()
        .map_err(|e| format!("codegen left an unresolved label: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_layout() {
        let p = VfParams::test_tiny();
        let build = build_vf(&p, 0x1000, 42).unwrap();
        let l = build.layout;
        assert_eq!(l.base, 0x1000);
        assert!(l.epilog_off > 0);
        assert!(l.ref_loop_off > l.epilog_off);
        assert!(l.fill_off > l.ref_loop_off);
        assert!(l.fill_off <= l.data_bytes);
        assert_eq!(l.exec_loops_off, p.data_bytes);
        assert_eq!(l.challenge_off, p.data_bytes + p.grid_blocks * l.loop_bytes);
        assert_eq!(l.result_off, l.challenge_off + 16 * p.grid_blocks);
        assert_eq!(l.total_bytes, l.result_off + 32);
        assert_eq!(build.image.len(), l.total_bytes as usize);
    }

    #[test]
    fn exec_copies_match_reference_image() {
        let p = VfParams::test_tiny();
        let build = build_vf(&p, 0x1000, 42).unwrap();
        let l = build.layout;
        let reference =
            &build.image[l.ref_loop_off as usize..(l.ref_loop_off + l.loop_bytes) as usize];
        for bk in 0..p.grid_blocks {
            let off = (l.exec_loops_off + bk * l.loop_bytes) as usize;
            assert_eq!(
                &build.image[off..off + l.loop_bytes as usize],
                reference,
                "block {bk} copy differs"
            );
        }
    }

    #[test]
    fn loop_decodes_cleanly() {
        let p = VfParams::test_tiny();
        let build = build_vf(&p, 0, 1).unwrap();
        let l = build.layout;
        let bytes = &build.image[l.ref_loop_off as usize..(l.ref_loop_off + l.loop_bytes) as usize];
        let prog = Program::decode(bytes).unwrap();
        assert_eq!(prog.len(), build.loop_instructions);
        // The loop ends with the back edge.
        assert_eq!(prog.insns.last().unwrap().op, sage_isa::Opcode::Jmx);
    }

    #[test]
    fn smc_build_places_patchable_immediate() {
        let mut p = VfParams::test_tiny();
        p.smc = SmcMode::Cctl;
        let build = build_vf(&p, 0, 1).unwrap();
        let idx = build.smc_insn_index.unwrap();
        let l = build.layout;
        let off = (l.ref_loop_off as usize) + idx * 16;
        let mut word = [0u8; 16];
        word.copy_from_slice(&build.image[off..off + 16]);
        let insn = sage_isa::encode::decode_bytes(&word).unwrap();
        assert_eq!(insn.op, sage_isa::Opcode::ShfR);
        assert_eq!(insn.immediate(), Some(spec::SMC_INIT));
    }

    #[test]
    fn region_too_small_is_an_error() {
        let mut p = VfParams::test_tiny();
        p.data_bytes = 1024;
        p.unroll = 64;
        assert!(build_vf(&p, 0, 1).is_err());
    }

    #[test]
    fn naive_schedule_is_bigger_and_hungrier() {
        let p = VfParams::test_tiny();
        let opt = build_vf(&p, 0, 1).unwrap();
        let mut pn = p;
        pn.naive_schedule = true;
        let naive = build_vf(&pn, 0, 1).unwrap();
        assert!(naive.loop_instructions > opt.loop_instructions);
        assert!(naive.regs_per_thread() > opt.regs_per_thread());
        assert!(naive.smem_bytes() > opt.smem_bytes());
    }

    #[test]
    fn audit_image_localizes_tampering() {
        let mut p = VfParams::test_tiny();
        p.smc = SmcMode::Cctl;
        let build = build_vf(&p, 0x2000, 1).unwrap();

        // Pristine dump: clean.
        assert!(build.audit_image(&build.image).is_empty());

        // Fill tamper localized.
        let mut dump = build.image.clone();
        dump[build.layout.fill_off as usize + 8] ^= 1;
        let f = build.audit_image(&dump);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("fill"), "{f:?}");

        // Executable-copy tamper localized.
        let mut dump = build.image.clone();
        dump[build.layout.exec_loops_off as usize + 3] ^= 1;
        let f = build.audit_image(&dump);
        assert!(f[0].contains("executable copy 0"), "{f:?}");

        // A patched SMC immediate is NOT a finding.
        let mut dump = build.image.clone();
        let idx = build.smc_insn_index.unwrap();
        let off =
            build.layout.exec_loops_off as usize + idx * 16 + sage_isa::encode::IMM_BYTE_OFFSET;
        dump[off..off + 4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        assert!(build.audit_image(&dump).is_empty());

        // Wrong-size dump reported.
        assert_eq!(build.audit_image(&dump[..10]).len(), 1);
    }

    #[test]
    fn describe_lists_all_sections() {
        let mut p = VfParams::test_tiny();
        p.smc = SmcMode::Cctl;
        let build = build_vf(&p, 0x2000, 1).unwrap();
        let d = build.describe();
        for section in [
            "init",
            "epilog",
            "reference loop",
            "fill",
            "executable loops",
            "challenges",
            "result cells",
        ] {
            assert!(d.contains(section), "missing {section} in:\n{d}");
        }
        assert!(d.contains("SMC index Some"));
    }

    #[test]
    fn loop_instruction_count_scales_with_unroll() {
        let mut p = VfParams::test_tiny();
        let b1 = build_vf(&p, 0, 1).unwrap();
        p.unroll = 8;
        p.data_bytes = 32 * 1024;
        let b2 = build_vf(&p, 0, 1).unwrap();
        assert!(b2.loop_instructions > b1.loop_instructions);
    }
}
