//! Device memory layout of the verification function.
//!
//! ```text
//! base + 0                  init code                ┐
//!      + epilog_off         epilog (aggregation)     │ checksummed
//!      + ref_loop_off       reference loop image     │ static region
//!      + fill_off           pseudo-random fill       ┘ (data_bytes)
//!      + exec_loops_off     executable loop copies, one per block
//!                           (patched by self-modifying code)
//!      + challenge_off      per-block 16-byte challenges
//!      + result_off         8 × u32 grid checksum cells
//! ```
//!
//! The static region is what the pseudo-random checksum traversal reads
//! (paper §7: "the beginning of the buffer contains the checksum function
//! itself, whereas the remainder is filled with pseudo-randomly generated
//! values"); the executable copies live outside it so that
//! self-modifying-code patches never make the traversal input depend on
//! cross-block timing (see crate docs).

/// Offsets (relative to `base`) and sizes of one VF build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VfLayout {
    /// Device base address of the VF buffer.
    pub base: u32,
    /// Size of the checksummed static region (power of two).
    pub data_bytes: u32,
    /// Offset of the epilog code (init starts at 0).
    pub epilog_off: u32,
    /// Offset of the reference loop image.
    pub ref_loop_off: u32,
    /// Offset of the inlined user kernel (equals `fill_off` when no
    /// kernel is inlined).
    pub user_off: u32,
    /// Size of the inlined user kernel in bytes (0 when none).
    pub user_bytes: u32,
    /// Offset of the pseudo-random fill.
    pub fill_off: u32,
    /// Offset of the executable loop copies (= `data_bytes`).
    pub exec_loops_off: u32,
    /// Size of one loop copy in bytes.
    pub loop_bytes: u32,
    /// Number of thread blocks (= number of executable copies).
    pub num_blocks: u32,
    /// Offset of the challenge table (16 bytes per block).
    pub challenge_off: u32,
    /// Offset of the 8-word result cells.
    pub result_off: u32,
    /// Total buffer size.
    pub total_bytes: u32,
}

impl VfLayout {
    /// Absolute address of the init entry point.
    pub fn entry_addr(&self) -> u32 {
        self.base
    }

    /// Absolute address of the epilog.
    pub fn epilog_addr(&self) -> u32 {
        self.base + self.epilog_off
    }

    /// Absolute address of block `b`'s executable loop copy.
    pub fn exec_loop_addr(&self, b: u32) -> u32 {
        self.base + self.exec_loops_off + b * self.loop_bytes
    }

    /// Absolute address of the executable-copies area.
    pub fn exec_loops_addr(&self) -> u32 {
        self.base + self.exec_loops_off
    }

    /// Absolute address of block `b`'s challenge (16 bytes).
    pub fn challenge_addr(&self, b: u32) -> u32 {
        self.base + self.challenge_off + b * 16
    }

    /// Absolute address of the result cells (8 × u32).
    pub fn result_addr(&self) -> u32 {
        self.base + self.result_off
    }

    /// Absolute address of the reference loop image.
    pub fn ref_loop_addr(&self) -> u32 {
        self.base + self.ref_loop_off
    }

    /// Absolute address of the inlined user kernel, if one is present.
    pub fn user_kernel_addr(&self) -> Option<u32> {
        (self.user_bytes > 0).then_some(self.base + self.user_off)
    }
}
