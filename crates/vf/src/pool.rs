//! A persistent replay thread pool.
//!
//! [`crate::replay::expected_checksum`] used to spawn a fresh set of
//! scoped OS threads on every call. One call amortizes that fine, but
//! the verifier's hot paths call it in loops — calibration runs 100
//! sequential replays, and every fleet round replays once — so the
//! thread-creation cost lands on the online critical path each time.
//! This pool spawns its workers once and reuses them for every replay
//! (the same persistent-worker shape the simulator core was refactored
//! to avoid per-launch spawning).
//!
//! Design notes:
//!
//! - Jobs are index ranges executed by a caller-supplied `Fn(usize)`.
//!   [`ReplayPool::run_scoped`] blocks until every index completes, so
//!   borrowed job state never outlives the call (the lifetime extension
//!   below is sound for exactly that reason).
//! - The *calling* thread participates in the claim loop, so a nested
//!   `run_scoped` from inside a worker cannot deadlock: progress never
//!   depends on a free worker.
//! - `ReplayPool::serial()` (or `new(0)`) executes jobs inline on the
//!   caller — the deterministic single-threaded fallback tests use.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

use sage_telemetry::{Histogram, HistogramSnapshot, Registry, WallSpan};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A fixed set of persistent worker threads executing scoped jobs.
pub struct ReplayPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Wall-clock latency of each [`ReplayPool::run_scoped`] call, from
    /// submission to the last index settling — the "claim latency" the
    /// verifier's replay path pays per round.
    claim_ns: Histogram,
}

/// Ignores mutex poisoning: pool state stays consistent under panics
/// (all transitions happen-before the unlock), and the panic itself is
/// surfaced to the caller by [`ScopedState`].
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ReplayPool {
    /// Creates a pool with `threads` workers; `0` yields the serial
    /// (inline, deterministic) pool.
    pub fn new(threads: usize) -> ReplayPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // Spawn failure (resource exhaustion) degrades to fewer workers —
        // run_scoped falls back to inline execution when none spawned —
        // rather than panicking the verifier.
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("sage-replay-{i}"))
                .spawn(move || worker_loop(&shared))
            {
                Ok(h) => handles.push(h),
                Err(_) => break,
            }
        }
        ReplayPool {
            shared,
            handles,
            claim_ns: Histogram::new(),
        }
    }

    /// The inline pool: every job runs on the calling thread, in index
    /// order — deterministic and thread-free for tests.
    pub fn serial() -> ReplayPool {
        ReplayPool::new(0)
    }

    /// The process-wide shared pool (one worker per available core),
    /// created on first use.
    pub fn global() -> &'static ReplayPool {
        static POOL: OnceLock<ReplayPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            ReplayPool::new(threads)
        })
    }

    /// Number of worker threads (0 for the serial pool).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Snapshot of the per-call claim-latency distribution
    /// (nanoseconds; wall-clock, so inherently nondeterministic).
    pub fn claim_latency(&self) -> HistogramSnapshot {
        self.claim_ns.snapshot()
    }

    /// Exposes the claim-latency histogram through a telemetry registry
    /// as `vf_pool_claim_ns{labels}`. Wall-clock data — keep it out of
    /// registries that feed golden/deterministic exports.
    pub fn register_telemetry(&self, reg: &Registry, labels: &[(&str, &str)]) {
        reg.register_histogram("vf_pool_claim_ns", labels, self.claim_ns.clone());
    }

    /// Runs `f(0)..f(jobs-1)` across the pool and the calling thread,
    /// returning when all indices have completed.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job to the caller (after all claimed
    /// jobs have settled).
    pub fn run_scoped(&self, jobs: usize, f: &(dyn Fn(usize) + Sync)) {
        let _span = WallSpan::start(&self.claim_ns);
        if self.handles.is_empty() || jobs <= 1 {
            for i in 0..jobs {
                f(i);
            }
            return;
        }
        // SAFETY (lifetime extension): `f` is only called by tasks that
        // claim an index < jobs; every such claim is settled (remaining
        // == 0) before run_scoped returns, and tasks that start late see
        // next >= jobs and never touch `f`. So no use outlives the
        // borrow despite the 'static annotation.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let state = Arc::new(ScopedState {
            f: f_static,
            next: AtomicUsize::new(0),
            jobs,
            remaining: Mutex::new(jobs),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        // Caller claims too, so at most jobs-1 helpers are useful.
        let helpers = self.handles.len().min(jobs - 1);
        {
            let mut q = lock_unpoisoned(&self.shared.queue);
            for _ in 0..helpers {
                let state = Arc::clone(&state);
                q.push_back(Box::new(move || state.work()));
            }
        }
        self.shared.available.notify_all();
        state.work();
        let mut remaining = lock_unpoisoned(&state.remaining);
        while *remaining > 0 {
            remaining = state
                .done
                .wait(remaining)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(remaining);
        if state.panicked.load(Ordering::Acquire) {
            panic!("replay worker panicked");
        }
    }
}

impl Drop for ReplayPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut q = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        task();
    }
}

struct ScopedState {
    /// Lifetime-extended in [`ReplayPool::run_scoped`]; only touched for
    /// indices the submitter is still blocked on.
    f: &'static (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    jobs: usize,
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl ScopedState {
    /// Claims and executes indices until none remain. Each claimed index
    /// is settled (the remaining count decremented) even if the job
    /// panics, so the submitting thread can never hang.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.jobs {
                return;
            }
            let f = self.f;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
            if result.is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            let mut remaining = lock_unpoisoned(&self.remaining);
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = ReplayPool::serial();
        let order = Mutex::new(Vec::new());
        pool.run_scoped(5, &|i| lock_unpoisoned(&order).push(i));
        assert_eq!(*lock_unpoisoned(&order), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn threaded_pool_covers_every_index_exactly_once() {
        let pool = ReplayPool::new(3);
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run_scoped(64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = ReplayPool::new(2);
        for round in 0..10u64 {
            let sum = AtomicU64::new(0);
            pool.run_scoped(16, &|i| {
                sum.fetch_add(round * 100 + i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), round * 1600 + 120);
        }
    }

    #[test]
    fn nested_run_scoped_makes_progress() {
        // All workers may be busy with outer jobs; the inner call must
        // still complete because callers participate in their own work.
        let pool = ReplayPool::new(2);
        let total = AtomicU64::new(0);
        pool.run_scoped(4, &|_| {
            ReplayPool::global().run_scoped(4, &|j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 6);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ReplayPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_scoped(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool keeps working after a job panic.
        let sum = AtomicU64::new(0);
        pool.run_scoped(4, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }
}
