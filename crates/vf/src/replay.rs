//! Verifier-side bit-exact replay of the checksum computation.
//!
//! The verifier knows everything the device computes from: the static
//! region bytes (it built them), the challenges (it chose them), and the
//! launch geometry. Replaying the [`crate::spec`] semantics yields
//! the expected 8-word grid checksum, parallelized over thread blocks
//! on the persistent [`crate::pool::ReplayPool`] (the paper's
//! verification hosts are many-core CPUs — Table 1 "verification
//! (AMD/Intel)" rows).

use std::sync::Mutex;

use crate::{
    batch::{replay_block_batched, StepTrace},
    codegen::VfBuild,
    params::SmcMode,
    pool::ReplayPool,
    spec::{self, ThreadState},
};

/// Replays one thread block and returns the per-register sums of all its
/// threads' final checksum states.
pub fn replay_block(build: &VfBuild, challenge: &[u8; 16], block: u32) -> [u32; 8] {
    let p = &build.params;
    let region = build.static_region();
    let region_base = build.layout.base;
    let word = |i: usize| {
        u32::from_le_bytes([
            challenge[i],
            challenge[i + 1],
            challenge[i + 2],
            challenge[i + 3],
        ])
    };
    let ch = [word(0), word(4), word(8), word(12)];
    let threads = p.block_threads;
    let mut sums = [0u32; 8];

    let run_iteration = |state: &mut ThreadState, iter: u32| {
        for k in 0..p.unroll {
            spec::step_with_pattern(state, region, region_base, k, iter, p.pattern_pairs);
        }
        if let Some((steps, inner_iters)) = p.inner {
            for _ in 0..inner_iters {
                for s in 0..steps {
                    spec::step_with_pattern(
                        state,
                        region,
                        region_base,
                        p.unroll + s,
                        iter,
                        p.pattern_pairs,
                    );
                }
            }
        }
        spec::iter_fold(state, iter);
    };

    match p.smc {
        SmcMode::Off => {
            // Threads are fully independent.
            for t in 0..threads {
                let gtid = block * threads + t;
                let mut st = spec::init_state(&ch, gtid);
                for iter in 0..p.iterations {
                    run_iteration(&mut st, iter);
                }
                for (sum, &c) in sums.iter_mut().zip(&st.c) {
                    *sum = sum.wrapping_add(c);
                }
            }
        }
        SmcMode::Evict | SmcMode::Cctl => {
            // The self-modifying immediate couples threads of a block:
            // everyone uses the same N per iteration; the block leader's
            // post-update C0 becomes the next N.
            let mut states: Vec<ThreadState> = (0..threads)
                .map(|t| spec::init_state(&ch, block * threads + t))
                .collect();
            let mut n = spec::SMC_INIT;
            for iter in 0..p.iterations {
                for st in states.iter_mut() {
                    run_iteration(st, iter);
                    spec::smc_update(st, n);
                }
                n = states[0].c[0];
            }
            for st in &states {
                for (sum, &c) in sums.iter_mut().zip(&st.c) {
                    *sum = sum.wrapping_add(c);
                }
            }
        }
    }
    sums
}

/// Computes the expected grid checksum (the contents of the 8 result
/// cells after a faithful run): the wrapping sum over every thread's
/// final checksum registers.
///
/// Blocks are replayed with the batched SoA engine
/// ([`crate::batch::replay_block_batched`]) on the shared persistent
/// [`ReplayPool`] — no threads are created per call, so tight
/// verification loops (calibration, fleet rounds) pay only the replay
/// itself.
///
/// `challenges` must hold one 16-byte challenge per block.
///
/// # Panics
///
/// Panics if `challenges.len() != grid_blocks`.
pub fn expected_checksum(build: &VfBuild, challenges: &[[u8; 16]]) -> [u32; 8] {
    expected_checksum_with_pool(build, challenges, ReplayPool::global())
}

/// [`expected_checksum`] on an explicit pool — tests pass
/// [`ReplayPool::serial`] for a deterministic, thread-free replay.
pub fn expected_checksum_with_pool(
    build: &VfBuild,
    challenges: &[[u8; 16]],
    pool: &ReplayPool,
) -> [u32; 8] {
    assert_eq!(
        challenges.len(),
        build.params.grid_blocks as usize,
        "one challenge per block required"
    );
    let blocks = build.params.grid_blocks as usize;
    // The step trace is shared by every block (it depends only on the
    // build parameters), so it is computed once out here rather than
    // per block on the pool.
    let trace = StepTrace::new(build);
    let partials = Mutex::new(vec![[0u32; 8]; blocks]);
    pool.run_scoped(blocks, &|b| {
        let sums = replay_block_batched(build, &trace, &challenges[b], b as u32);
        partials.lock().expect("replay partials")[b] = sums;
    });
    let mut out = [0u32; 8];
    for part in partials.into_inner().expect("replay partials") {
        for j in 0..8 {
            out[j] = out[j].wrapping_add(part[j]);
        }
    }
    out
}

/// The pre-pool implementation, spawning fresh scoped threads per call.
///
/// Retained as the oracle the pooled path is tested against and as the
/// before-baseline of the `fastpath` benchmark's calibration-loop
/// comparison; not used on any production path.
pub fn expected_checksum_unpooled(build: &VfBuild, challenges: &[[u8; 16]]) -> [u32; 8] {
    assert_eq!(
        challenges.len(),
        build.params.grid_blocks as usize,
        "one challenge per block required"
    );
    let blocks = build.params.grid_blocks;
    let mut partials = vec![[0u32; 8]; blocks as usize];

    // Parallelize over blocks; fall back to sequential for tiny grids.
    if blocks >= 4 {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(blocks as usize);
        let next = std::sync::atomic::AtomicU32::new(0);
        let done: Vec<(u32, [u32; 8])> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let b = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if b >= blocks {
                                break;
                            }
                            local.push((b, replay_block(build, &challenges[b as usize], b)));
                        }
                        local
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("replay worker panicked"))
                .collect()
        });
        for (b, sums) in done {
            partials[b as usize] = sums;
        }
    } else {
        for b in 0..blocks {
            partials[b as usize] = replay_block(build, &challenges[b as usize], b);
        }
    }

    let mut out = [0u32; 8];
    for part in partials {
        for j in 0..8 {
            out[j] = out[j].wrapping_add(part[j]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_vf, VfParams};

    fn challenges(n: u32, seed: u8) -> Vec<[u8; 16]> {
        (0..n)
            .map(|b| {
                let mut c = [0u8; 16];
                for (i, byte) in c.iter_mut().enumerate() {
                    *byte = seed
                        .wrapping_mul(31)
                        .wrapping_add(b as u8 * 17)
                        .wrapping_add(i as u8);
                }
                c
            })
            .collect()
    }

    #[test]
    fn deterministic() {
        let p = VfParams::test_tiny();
        let build = build_vf(&p, 0x1000, 7).unwrap();
        let ch = challenges(p.grid_blocks, 1);
        assert_eq!(
            expected_checksum(&build, &ch),
            expected_checksum(&build, &ch)
        );
    }

    #[test]
    fn challenge_dependent() {
        let p = VfParams::test_tiny();
        let build = build_vf(&p, 0x1000, 7).unwrap();
        let a = expected_checksum(&build, &challenges(p.grid_blocks, 1));
        let b = expected_checksum(&build, &challenges(p.grid_blocks, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn image_dependent() {
        // Different fill seeds → different static region → different
        // checksum (code-change detection is the same mechanism).
        let p = VfParams::test_tiny();
        let a = build_vf(&p, 0x1000, 7).unwrap();
        let b = build_vf(&p, 0x1000, 8).unwrap();
        let ch = challenges(p.grid_blocks, 1);
        assert_ne!(expected_checksum(&a, &ch), expected_checksum(&b, &ch));
    }

    #[test]
    fn smc_modes_change_the_value() {
        let mut p = VfParams::test_tiny();
        let off = build_vf(&p, 0x1000, 7).unwrap();
        p.smc = crate::SmcMode::Cctl;
        let smc = build_vf(&p, 0x1000, 7).unwrap();
        let ch = challenges(p.grid_blocks, 1);
        // Different code image (extra instructions) and different
        // semantics.
        assert_ne!(expected_checksum(&off, &ch), expected_checksum(&smc, &ch));
    }

    #[test]
    fn parallel_path_matches_sequential() {
        let mut p = VfParams::test_tiny();
        p.grid_blocks = 6; // exercises the scoped-thread path
        p.iterations = 3;
        let build = build_vf(&p, 0x1000, 7).unwrap();
        let ch = challenges(p.grid_blocks, 3);
        let par = expected_checksum(&build, &ch);
        let mut seq = [0u32; 8];
        for b in 0..p.grid_blocks {
            let part = replay_block(&build, &ch[b as usize], b);
            for j in 0..8 {
                seq[j] = seq[j].wrapping_add(part[j]);
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn pooled_matches_unpooled_oracle() {
        let mut p = VfParams::test_tiny();
        p.grid_blocks = 6;
        p.iterations = 3;
        let build = build_vf(&p, 0x1000, 7).unwrap();
        let ch = challenges(p.grid_blocks, 9);
        assert_eq!(
            expected_checksum(&build, &ch),
            expected_checksum_unpooled(&build, &ch)
        );
    }

    #[test]
    fn serial_pool_is_deterministic_and_exact() {
        let p = VfParams::test_tiny();
        let build = build_vf(&p, 0x1000, 7).unwrap();
        let ch = challenges(p.grid_blocks, 5);
        let serial = ReplayPool::serial();
        let a = expected_checksum_with_pool(&build, &ch, &serial);
        let b = expected_checksum_with_pool(&build, &ch, &serial);
        assert_eq!(a, b);
        assert_eq!(a, expected_checksum(&build, &ch));
    }

    #[test]
    #[should_panic(expected = "one challenge per block")]
    fn challenge_count_checked() {
        let p = VfParams::test_tiny();
        let build = build_vf(&p, 0x1000, 7).unwrap();
        let _ = expected_checksum(&build, &challenges(1, 1));
    }
}
