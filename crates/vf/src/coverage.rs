//! Memory-region inclusion probability (paper §7.3).
//!
//! With uniformly distributed pseudo-random accesses, the probability
//! that a particular word is *never* read in `a` accesses over a region
//! of `w` words is `(1 − 1/w)^a`. The paper evaluates
//! `(1 − 1/524288)^1000000` and prints `0.082`; the expression actually
//! evaluates to `≈ 0.148` (`e^{−1000000/524288} = e^{−1.907}`), a
//! discrepancy we record in EXPERIMENTS.md. Both the analytic value and a
//! Monte-Carlo estimate are provided here.

use crate::params::VfParams;

/// Analytic probability that a fixed word is never accessed:
/// `(1 − 1/words)^accesses`.
pub fn never_included_probability(words: u64, accesses: u64) -> f64 {
    if words == 0 {
        return 0.0;
    }
    // Compute in log space for numerical stability at large exponents.
    let ln = (accesses as f64) * (1.0 - 1.0 / words as f64).ln();
    ln.exp()
}

/// Expected fraction of the region never covered (same expression, read
/// as a per-word expectation).
pub fn expected_uncovered_fraction(words: u64, accesses: u64) -> f64 {
    never_included_probability(words, accesses)
}

/// Total pseudo-random accesses a VF configuration performs (one access
/// per step per thread).
pub fn total_accesses(p: &VfParams) -> u64 {
    p.total_steps() * p.total_threads()
}

/// Monte-Carlo estimate of the uncovered fraction using a splitmix
/// stream (for validating the analytic formula, not a measurement of the
/// real traversal — that one is checksum-driven and validated separately
/// in the integration tests).
pub fn monte_carlo_uncovered(words: u32, accesses: u64, seed: u64) -> f64 {
    assert!(words > 0);
    let mut covered = vec![false; words as usize];
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _ in 0..accesses {
        let idx = (next() % words as u64) as usize;
        covered[idx] = true;
    }
    covered.iter().filter(|&&c| !c).count() as f64 / words as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_expression_value() {
        // The printed expression from §7.3 evaluates to ≈ 0.1484, not
        // the paper's printed 0.082 (see module docs).
        let p = never_included_probability(524_288, 1_000_000);
        assert!((p - 0.148).abs() < 0.001, "p = {p}");
        // The printed *result* (0.082) corresponds to ≈ 1.31 M accesses.
        let p2 = never_included_probability(524_288, 1_310_000);
        assert!((p2 - 0.082).abs() < 0.002, "p2 = {p2}");
    }

    #[test]
    fn limits() {
        assert!((never_included_probability(100, 0) - 1.0).abs() < 1e-12);
        assert!(never_included_probability(2, 10_000) < 1e-9);
    }

    #[test]
    fn monotone_in_accesses() {
        let mut last = 1.0;
        for a in [0u64, 10, 100, 1000, 10_000] {
            let p = never_included_probability(1024, a);
            assert!(p <= last);
            last = p;
        }
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        let words = 4096u32;
        let accesses = 8192u64;
        let analytic = never_included_probability(words as u64, accesses);
        let mc = monte_carlo_uncovered(words, accesses, 42);
        assert!(
            (mc - analytic).abs() < 0.02,
            "mc = {mc}, analytic = {analytic}"
        );
    }

    #[test]
    fn vf_access_accounting() {
        let p = crate::VfParams::test_tiny();
        // 4 steps × 5 iterations × 128 threads.
        assert_eq!(total_accesses(&p), 4 * 5 * 128);
    }
}
