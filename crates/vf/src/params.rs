//! Experiment parameters of the verification function.

/// How the checksum loop includes the execution state (program counter)
/// via self-modifying code (paper §5.2.2, §6.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmcMode {
    /// No self-modifying code (paper experiments 1 and 2).
    Off,
    /// Self-modifying code; visibility relies on the loop exceeding every
    /// instruction-cache level so lines are re-fetched each iteration
    /// (paper experiments 3 and 4 — caller must size `unroll`
    /// accordingly).
    Evict,
    /// Self-modifying code with an explicit `CCTL` instruction-cache
    /// invalidation after each patch — the vendor-support extension the
    /// paper proposes in §6.4/§7.5; works with small loops.
    Cctl,
}

/// Parameters of one VF build.
#[derive(Clone, Copy, Debug)]
pub struct VfParams {
    /// Size of the checksummed (static) region in bytes; must be a power
    /// of two and large enough to hold the code image.
    pub data_bytes: u32,
    /// Unrolled checksum steps per loop pass (`U`).
    pub unroll: usize,
    /// Busy-wait pattern pairs per step (`P`): each pair is one `IMAD`
    /// (FMA pipe) and one `LEA.HI` (ALU pipe), paper §6.5 step 3.
    pub pattern_pairs: usize,
    /// Outer loop iterations.
    pub iterations: u32,
    /// Self-modifying-code mode.
    pub smc: SmcMode,
    /// Optional inner loop `(steps, iterations)` per outer iteration
    /// (paper experiment 4).
    pub inner: Option<(usize, u32)>,
    /// Grid blocks.
    pub grid_blocks: u32,
    /// Threads per block (multiple of 32).
    pub block_threads: u32,
    /// Emit the deliberately conservative "compiler-style" schedule
    /// instead of the optimized microcode (paper §7.1 comparison).
    pub naive_schedule: bool,
    /// Adversarially injected NOPs per loop pass (paper experiment 2:
    /// "adversarial NOP"). Zero for an honest VF; the attack harness uses
    /// this to measure the per-instruction timing overhead an adversary
    /// cannot avoid.
    pub injected_nops: usize,
}

impl VfParams {
    /// A small configuration for unit tests (fits the `sim_tiny` device).
    pub fn test_tiny() -> VfParams {
        VfParams {
            data_bytes: 16 * 1024,
            unroll: 4,
            pattern_pairs: 4,
            iterations: 5,
            smc: SmcMode::Off,
            inner: None,
            grid_blocks: 2,
            block_threads: 64,
            naive_schedule: false,
            injected_nops: 0,
        }
    }

    /// The smallest legal configuration: one warp, one iteration, a
    /// 4 KiB data region (the floor set by the resident code image).
    /// Built for the fleet-scale service benchmark, where ten thousand
    /// devices each carry an installed VF and the per-round replay must
    /// be negligible next to control-plane work (the build fits a
    /// `sim_nano` device's memory).
    pub fn fleet_tiny() -> VfParams {
        VfParams {
            data_bytes: 4096,
            unroll: 4,
            pattern_pairs: 2,
            iterations: 1,
            smc: SmcMode::Off,
            inner: None,
            grid_blocks: 1,
            block_threads: 32,
            naive_schedule: false,
            injected_nops: 0,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.data_bytes.is_power_of_two() {
            return Err(format!(
                "data_bytes {} is not a power of two",
                self.data_bytes
            ));
        }
        if self.unroll == 0 || self.iterations == 0 {
            return Err("unroll and iterations must be positive".into());
        }
        if self.block_threads == 0 || !self.block_threads.is_multiple_of(32) {
            return Err(format!(
                "block_threads {} is not a non-zero multiple of 32",
                self.block_threads
            ));
        }
        if self.grid_blocks == 0 {
            return Err("grid_blocks must be positive".into());
        }
        if let Some((steps, iters)) = self.inner {
            if steps == 0 || iters == 0 {
                return Err("inner loop steps and iterations must be positive".into());
            }
        }
        Ok(())
    }

    /// Total checksum steps executed per thread.
    pub fn total_steps(&self) -> u64 {
        let per_iter = self.unroll as u64
            + self
                .inner
                .map(|(steps, iters)| steps as u64 * iters as u64)
                .unwrap_or(0);
        per_iter * self.iterations as u64
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_params_valid() {
        VfParams::test_tiny().validate().unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = VfParams::test_tiny();
        p.data_bytes = 3000;
        assert!(p.validate().is_err());

        let mut p = VfParams::test_tiny();
        p.block_threads = 40;
        assert!(p.validate().is_err());

        let mut p = VfParams::test_tiny();
        p.iterations = 0;
        assert!(p.validate().is_err());

        let mut p = VfParams::test_tiny();
        p.inner = Some((0, 5));
        assert!(p.validate().is_err());
    }

    #[test]
    fn step_accounting() {
        let mut p = VfParams::test_tiny();
        assert_eq!(p.total_steps(), 4 * 5);
        p.inner = Some((3, 10));
        assert_eq!(p.total_steps(), (4 + 30) * 5);
        assert_eq!(p.total_threads(), 128);
    }
}
