//! The SAGE verification function (VF): generator, device layout, and
//! bit-exact verifier-side replay (paper §5, §6.5).
//!
//! The VF is the self-verifying checksum kernel at the core of SAGE. This
//! crate builds it as native microcode for the simulated GPU:
//!
//! - [`params`] — the experiment knobs (unroll factor, busy-wait pattern
//!   length, iterations, self-modifying-code mode, inner loop);
//! - [`layout`] — the device memory image: init/epilog code, the
//!   reference loop image, pseudo-random fill (together the checksummed
//!   region), per-block *executable* loop copies (patched by
//!   self-modifying code), challenge table and result cells;
//! - [`spec`] — the pure-Rust specification of every arithmetic step,
//!   shared verbatim by the code generator and the replay;
//! - [`codegen`] — emits the optimized microcode (interleaved FMA/ALU
//!   shift-and-add busy-wait, scoreboarded loads, minimal stalls) or the
//!   deliberately conservative "PTXAS-style" schedule used for the §7.1
//!   comparison;
//! - [`replay`] — the verifier's bit-exact recomputation of the expected
//!   checksum (parallelized with scoped std threads, as the paper's
//!   multi-core verification hosts);
//! - [`coverage`] — the §7.3 memory-region inclusion-probability
//!   analysis.
//!
//! # Determinism note (deviation from the paper, documented in DESIGN.md)
//!
//! The pseudo-random checksum traversal covers the *static* region
//! `[base, base + data_bytes)` — init, epilog, the reference loop image
//! and fill. The per-block executable copies live right after it: they
//! are fingerprinted indirectly (their initial bytes equal the reference
//! image; their *execution* is bound to the checksum by the
//! self-modifying immediate), while keeping the traversal independent of
//! cross-block timing so the verifier can replay it exactly.

pub mod bank;
pub mod batch;
pub mod codegen;
pub mod coverage;
pub mod layout;
pub mod params;
pub mod pool;
pub mod replay;
pub mod spec;

pub use bank::{
    prefill_banks, BankConfig, BankCounters, ChallengeBank, Fingerprint, PrecomputedRound,
};
pub use batch::{replay_block_batched, StepTrace};
pub use codegen::{build_vf, build_vf_inline};
pub use layout::VfLayout;
pub use params::{SmcMode, VfParams};
pub use pool::ReplayPool;
pub use replay::{expected_checksum, expected_checksum_unpooled, expected_checksum_with_pool};
