//! Precomputed challenge bank — the verifier's online fast path.
//!
//! SAGE's verifier is meant to be cheap *online* (paper §5.1: the
//! enclave can precompute expected checksums, leaving only a compare and
//! a timing check in the challenge–response round — the standard
//! verifier-side precomputation trick of SWATT/Pioneer-style protocols).
//! The bank realizes that: a bounded queue of
//! `(challenges, expected_checksum)` pairs, filled by background worker
//! threads *between* rounds, so a round that hits the bank does **zero**
//! replay on its critical path.
//!
//! Safety-relevant invariants:
//!
//! - **Keyed by build fingerprint.** Every pair is valid only for the
//!   exact [`VfBuild`] it was computed against; [`ChallengeBank::take`]
//!   refuses a caller presenting a different fingerprint.
//! - **Single-use.** Pairs leave the queue on take and are never
//!   re-issued — challenges stay one-shot, exactly as in the
//!   replay-online protocol.
//! - **Caller-supplied randomness.** The bank draws challenge bytes from
//!   an injected generator (the verifier seeds it from the enclave
//!   DRBG), so precomputation does not change where randomness comes
//!   from.
//!
//! - **Guarded against poisoning.** Every pair carries an integrity tag
//!   computed when it entered the queue; a pair whose tag no longer
//!   matches at take time (bit rot, a fault-injection campaign, or an
//!   adversary reaching the verifier host's heap) is *discarded and
//!   counted*, never issued — the round falls back to online replay, so
//!   a poisoned bank can cost latency but never a false accept.
//!
//! With `workers == 0` the bank spawns nothing: stock appears only via
//! the synchronous [`ChallengeBank::fill`] / blocking-take refill, in
//! generator order — the deterministic mode tests use.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use sage_telemetry::{Counter, Registry};

use crate::{
    batch::{replay_block_batched, StepTrace},
    codegen::VfBuild,
    pool::ReplayPool,
    replay::expected_checksum,
};

/// Identity of one exact VF build (see [`VfBuild::fingerprint`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fingerprint(pub [u8; 32]);

/// Why a bank claim was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BankError {
    /// The caller presented a fingerprint for a different build than
    /// this bank precomputes for.
    ForeignFingerprint,
}

impl std::fmt::Display for BankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BankError::ForeignFingerprint => {
                write!(f, "bank stock requested for a foreign build fingerprint")
            }
        }
    }
}

impl std::error::Error for BankError {}

/// Bank sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct BankConfig {
    /// Maximum precomputed pairs held in stock.
    pub capacity: usize,
    /// Background refill threads; `0` disables background refill
    /// entirely (deterministic synchronous mode).
    pub workers: usize,
}

impl Default for BankConfig {
    fn default() -> BankConfig {
        BankConfig {
            capacity: 4,
            workers: 1,
        }
    }
}

/// One ready-to-issue round: per-block challenges and the replayed
/// expected checksum.
#[derive(Clone, Debug)]
pub struct PrecomputedRound {
    /// One 16-byte challenge per grid block.
    pub challenges: Vec<[u8; 16]>,
    /// The bit-exact expected grid checksum for those challenges.
    pub expected: [u32; 8],
}

/// Bank effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankCounters {
    /// Takes served from stock.
    pub hits: u64,
    /// Takes that found the bank empty.
    pub misses: u64,
    /// Pairs precomputed (background or synchronous).
    pub refills: u64,
    /// Takes refused for a foreign build fingerprint.
    pub fingerprint_rejects: u64,
    /// Stocked pairs discarded because their integrity tag no longer
    /// matched at take time (poisoned stock is never issued).
    pub poisoned: u64,
}

/// The challenge source: fills one 16-byte challenge per call.
pub type ChallengeFn = Box<dyn FnMut(&mut [u8; 16]) + Send>;

/// A stocked pair plus the integrity tag computed when it was enqueued.
/// The tag is re-checked at take time: any divergence (a flipped bit in
/// the challenges or the expected checksum while the pair sat in the
/// queue) disqualifies the pair.
struct Stocked {
    round: PrecomputedRound,
    guard: u64,
}

/// FNV-1a over the challenge bytes and the expected checksum words — a
/// cheap integrity tag, not a MAC: it defends against faults (bit rot,
/// chaos campaigns), while an adversary with write access to verifier
/// memory is outside SAGE's threat model (the enclave holds the secrets).
fn guard_tag(round: &PrecomputedRound) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for c in &round.challenges {
        for &b in c {
            eat(b);
        }
    }
    for w in round.expected {
        for b in w.to_le_bytes() {
            eat(b);
        }
    }
    h
}

struct BankState {
    queue: VecDeque<Stocked>,
    gen: ChallengeFn,
    stop: bool,
}

struct Inner {
    build: VfBuild,
    fingerprint: Fingerprint,
    capacity: usize,
    state: Mutex<BankState>,
    /// Signalled when queue space frees up (or on stop) — refillers wait.
    space: Condvar,
    /// Signalled when stock arrives — blocking takers wait.
    stock: Condvar,
    /// Effectiveness counters, shared telemetry instruments so a
    /// registry sees the live values (see
    /// [`ChallengeBank::register_telemetry`]).
    hits: Counter,
    misses: Counter,
    refills: Counter,
    fingerprint_rejects: Counter,
    poisoned: Counter,
}

/// A bounded, fingerprint-keyed queue of precomputed rounds.
pub struct ChallengeBank {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Inner {
    /// Draws one challenge set under the state lock (keeps the generator
    /// sequence well-ordered) without touching the queue.
    fn draw_challenges(state: &mut BankState, blocks: usize) -> Vec<[u8; 16]> {
        (0..blocks)
            .map(|_| {
                let mut c = [0u8; 16];
                (state.gen)(&mut c);
                c
            })
            .collect()
    }

    /// Computes one pair synchronously — under the lock, deliberately:
    /// this is the deterministic path (`fill` / workers-0 blocking take),
    /// where the caller wants the pair ready before proceeding anyway.
    /// Background workers use [`worker_loop`], which replays unlocked.
    fn refill_once(&self, state: &mut MutexGuard<'_, BankState>) {
        let blocks = self.build.params.grid_blocks as usize;
        let challenges = Self::draw_challenges(state, blocks);
        let expected = expected_checksum(&self.build, &challenges);
        let round = PrecomputedRound {
            challenges,
            expected,
        };
        let guard = guard_tag(&round);
        state.queue.push_back(Stocked { round, guard });
        self.refills.inc();
        self.stock.notify_all();
    }

    /// Pops stock until a pair with an intact integrity tag surfaces.
    /// Poisoned pairs are discarded and counted; their queue slots are
    /// handed back to refillers.
    fn pop_valid(&self, state: &mut MutexGuard<'_, BankState>) -> Option<PrecomputedRound> {
        while let Some(stocked) = state.queue.pop_front() {
            self.space.notify_all();
            if stocked.guard == guard_tag(&stocked.round) {
                return Some(stocked.round);
            }
            self.poisoned.inc();
        }
        None
    }
}

impl ChallengeBank {
    /// Creates a bank for one build, drawing challenge bytes from `gen`.
    pub fn new(build: VfBuild, cfg: BankConfig, gen: ChallengeFn) -> ChallengeBank {
        let fingerprint = build.fingerprint();
        let inner = Arc::new(Inner {
            build,
            fingerprint,
            capacity: cfg.capacity.max(1),
            state: Mutex::new(BankState {
                queue: VecDeque::new(),
                gen,
                stop: false,
            }),
            space: Condvar::new(),
            stock: Condvar::new(),
            hits: Counter::new(),
            misses: Counter::new(),
            refills: Counter::new(),
            fingerprint_rejects: Counter::new(),
            poisoned: Counter::new(),
        });
        // Failure to spawn a worker (thread exhaustion on the verifier
        // host) degrades the bank to fewer — possibly zero — background
        // refillers instead of panicking: blocking takes still refill
        // synchronously when no worker exists.
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let inner = Arc::clone(&inner);
            match std::thread::Builder::new()
                .name(format!("sage-bank-{i}"))
                .spawn(move || worker_loop(&inner))
            {
                Ok(handle) => workers.push(handle),
                Err(_) => break,
            }
        }
        ChallengeBank { inner, workers }
    }

    /// The fingerprint of the build this bank precomputes for.
    pub fn fingerprint(&self) -> Fingerprint {
        self.inner.fingerprint
    }

    /// Current stock level.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner.state).queue.len()
    }

    /// `true` if no stock is available right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum stock.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Exposes the live effectiveness counters through a telemetry
    /// registry as `vf_bank_*_total{labels}` series. The registered
    /// instruments *are* the bank's own counters (shared state), so the
    /// registry always exports current values with no polling adapter.
    pub fn register_telemetry(&self, reg: &Registry, labels: &[(&str, &str)]) {
        reg.register_counter("vf_bank_hits_total", labels, self.inner.hits.clone());
        reg.register_counter("vf_bank_misses_total", labels, self.inner.misses.clone());
        reg.register_counter("vf_bank_refills_total", labels, self.inner.refills.clone());
        reg.register_counter(
            "vf_bank_fingerprint_rejects_total",
            labels,
            self.inner.fingerprint_rejects.clone(),
        );
        reg.register_counter(
            "vf_bank_poisoned_total",
            labels,
            self.inner.poisoned.clone(),
        );
    }

    /// Counter snapshot.
    pub fn counters(&self) -> BankCounters {
        BankCounters {
            hits: self.inner.hits.get(),
            misses: self.inner.misses.get(),
            refills: self.inner.refills.get(),
            fingerprint_rejects: self.inner.fingerprint_rejects.get(),
            poisoned: self.inner.poisoned.get(),
        }
    }

    /// Non-blocking take: `Ok(Some(_))` on a hit, `Ok(None)` when the
    /// bank has no *valid* stock (the caller falls back to online
    /// replay — poisoned pairs are discarded, never issued), or
    /// [`BankError::ForeignFingerprint`] when `fp` names a different
    /// build than this bank serves — stock computed for build A is never
    /// issued for build B.
    pub fn take(&self, fp: &Fingerprint) -> Result<Option<PrecomputedRound>, BankError> {
        if *fp != self.inner.fingerprint {
            self.inner.fingerprint_rejects.inc();
            return Err(BankError::ForeignFingerprint);
        }
        let mut state = lock_unpoisoned(&self.inner.state);
        match self.inner.pop_valid(&mut state) {
            Some(pair) => {
                self.inner.hits.inc();
                Ok(Some(pair))
            }
            None => {
                self.inner.misses.inc();
                Ok(None)
            }
        }
    }

    /// Blocking take: always returns a *valid* pair for a matching
    /// fingerprint. With background workers the caller waits for stock
    /// (counted as a miss when it had to wait); with `workers == 0` an
    /// empty — or fully poisoned — bank is refilled synchronously on the
    /// calling thread, preserving the deterministic generator order.
    pub fn take_blocking(&self, fp: &Fingerprint) -> Result<PrecomputedRound, BankError> {
        if *fp != self.inner.fingerprint {
            self.inner.fingerprint_rejects.inc();
            return Err(BankError::ForeignFingerprint);
        }
        let mut state = lock_unpoisoned(&self.inner.state);
        let mut first_attempt = true;
        loop {
            if let Some(pair) = self.inner.pop_valid(&mut state) {
                if first_attempt {
                    self.inner.hits.inc();
                }
                return Ok(pair);
            }
            if first_attempt {
                self.inner.misses.inc();
                first_attempt = false;
            }
            if self.workers.is_empty() {
                self.inner.refill_once(&mut state);
            } else {
                state = self
                    .inner
                    .stock
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Chaos hook: flips one bit of the expected checksum of the stocked
    /// pair at `index` *without* updating its integrity tag — exactly
    /// what a DRAM fault on the verifier host would do. Returns `false`
    /// when no pair sits at that index. Test/fault-injection API.
    pub fn corrupt_stock(&self, index: usize) -> bool {
        let mut state = lock_unpoisoned(&self.inner.state);
        match state.queue.get_mut(index) {
            Some(stocked) => {
                stocked.round.expected[0] ^= 1 << 17;
                true
            }
            None => false,
        }
    }

    /// Synchronously precomputes up to `n` pairs (bounded by remaining
    /// capacity) on the calling thread. Deterministic: pairs enter the
    /// queue in generator order.
    pub fn fill(&self, n: usize) {
        let mut state = lock_unpoisoned(&self.inner.state);
        for _ in 0..n {
            if state.queue.len() >= self.inner.capacity {
                break;
            }
            self.inner.refill_once(&mut state);
        }
    }

    /// Precomputes up to `n` pairs with every `(round, block)` replay
    /// scheduled on `pool` at once — see [`prefill_banks`], of which
    /// this is the single-bank case.
    pub fn fill_parallel(&self, n: usize, pool: &ReplayPool) {
        prefill_banks(&[self], n, pool);
    }
}

/// Precomputes up to `n` rounds into **each** bank, scheduling every
/// single `(fingerprint, round, block)` replay on `pool` as one flat
/// work-stealing job list.
///
/// [`ChallengeBank::fill`] is round-serial: each round's replay
/// parallelizes over its own grid blocks, but rounds — and banks —
/// proceed one after another, so a grid smaller than the machine leaves
/// cores idle at every round boundary and a fleet of fingerprints
/// serializes entirely. Here the pool's claim loop steals the next
/// un-replayed *block* wherever it lives, keeping every core busy until
/// all banks are stocked.
///
/// Determinism is preserved: challenge sets are drawn under each bank's
/// state lock in generator order before any replay starts, and rounds
/// enter each queue in that same draw order — only the replay
/// *computation* is reordered, and block checksums are combined with the
/// same wrapping sums as the serial path.
pub fn prefill_banks(banks: &[&ChallengeBank], n: usize, pool: &ReplayPool) {
    // Phase 1: draw challenges (generator order) and size the job list.
    let mut drawn: Vec<Vec<Vec<[u8; 16]>>> = Vec::with_capacity(banks.len());
    for bank in banks {
        let mut state = lock_unpoisoned(&bank.inner.state);
        let room = bank.inner.capacity.saturating_sub(state.queue.len()).min(n);
        let blocks = bank.inner.build.params.grid_blocks as usize;
        let sets: Vec<Vec<[u8; 16]>> = (0..room)
            .map(|_| Inner::draw_challenges(&mut state, blocks))
            .collect();
        drawn.push(sets);
    }

    // Phase 2: one flat (bank, round, block) job list over the pool.
    let traces: Vec<StepTrace> = banks
        .iter()
        .map(|b| StepTrace::new(&b.inner.build))
        .collect();
    let partials: Vec<Vec<Vec<Mutex<[u32; 8]>>>> = banks
        .iter()
        .zip(&drawn)
        .map(|(bank, sets)| {
            let blocks = bank.inner.build.params.grid_blocks as usize;
            sets.iter()
                .map(|_| (0..blocks).map(|_| Mutex::new([0u32; 8])).collect())
                .collect()
        })
        .collect();
    // (bank index, round index, block) triples — the flat job list.
    let mut jobs: Vec<(usize, usize, u32)> = Vec::new();
    for (i, bank) in banks.iter().enumerate() {
        let blocks = bank.inner.build.params.grid_blocks;
        for r in 0..drawn[i].len() {
            for b in 0..blocks {
                jobs.push((i, r, b));
            }
        }
    }
    pool.run_scoped(jobs.len(), &|idx| {
        let (i, r, b) = jobs[idx];
        let sums = replay_block_batched(
            &banks[i].inner.build,
            &traces[i],
            &drawn[i][r][b as usize],
            b,
        );
        *lock_unpoisoned(&partials[i][r][b as usize]) = sums;
    });

    // Phase 3: reduce and enqueue, per bank, in draw order.
    for ((bank, sets), parts) in banks.iter().zip(drawn).zip(partials) {
        let mut state = lock_unpoisoned(&bank.inner.state);
        if state.stop {
            continue;
        }
        for (challenges, blocks) in sets.into_iter().zip(parts) {
            let mut expected = [0u32; 8];
            for cell in blocks {
                let part = lock_unpoisoned(&cell);
                for j in 0..8 {
                    expected[j] = expected[j].wrapping_add(part[j]);
                }
            }
            let round = PrecomputedRound {
                challenges,
                expected,
            };
            let guard = guard_tag(&round);
            state.queue.push_back(Stocked { round, guard });
            bank.inner.refills.inc();
        }
        bank.inner.stock.notify_all();
    }
}

impl Drop for ChallengeBank {
    fn drop(&mut self) {
        lock_unpoisoned(&self.inner.state).stop = true;
        self.inner.space.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Claim work: draw the next challenge set while below capacity.
        let challenges = {
            let mut state = lock_unpoisoned(&inner.state);
            loop {
                if state.stop {
                    return;
                }
                if state.queue.len() < inner.capacity {
                    let blocks = inner.build.params.grid_blocks as usize;
                    break Inner::draw_challenges(&mut state, blocks);
                }
                state = inner.space.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        // The expensive replay happens with the lock released.
        let expected = expected_checksum(&inner.build, &challenges);
        let mut state = lock_unpoisoned(&inner.state);
        if state.stop {
            return;
        }
        let round = PrecomputedRound {
            challenges,
            expected,
        };
        let guard = guard_tag(&round);
        state.queue.push_back(Stocked { round, guard });
        inner.refills.inc();
        inner.stock.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_vf, params::VfParams};

    /// A deterministic challenge source: a byte counter stream.
    fn counter_gen(seed: u8) -> ChallengeFn {
        let mut next = seed;
        Box::new(move |c: &mut [u8; 16]| {
            for byte in c.iter_mut() {
                *byte = next;
                next = next.wrapping_add(1);
            }
        })
    }

    fn tiny_build(fill_seed: u32) -> VfBuild {
        build_vf(&VfParams::test_tiny(), 0x1000, fill_seed).unwrap()
    }

    fn sync_bank(fill_seed: u32, capacity: usize, gen_seed: u8) -> ChallengeBank {
        ChallengeBank::new(
            tiny_build(fill_seed),
            BankConfig {
                capacity,
                workers: 0,
            },
            counter_gen(gen_seed),
        )
    }

    #[test]
    fn zero_worker_bank_is_deterministic() {
        // Two banks over the same build and generator seed must issue
        // byte-identical rounds in the same order.
        let a = sync_bank(7, 4, 3);
        let b = sync_bank(7, 4, 3);
        a.fill(3);
        b.fill(3);
        let fp = a.fingerprint();
        for _ in 0..3 {
            let ra = a.take(&fp).unwrap().expect("stock");
            let rb = b.take(&fp).unwrap().expect("stock");
            assert_eq!(ra.challenges, rb.challenges);
            assert_eq!(ra.expected, rb.expected);
        }
    }

    #[test]
    fn pairs_are_bit_exact_against_direct_replay() {
        let bank = sync_bank(7, 2, 9);
        bank.fill(2);
        let build = tiny_build(7);
        let fp = bank.fingerprint();
        while let Some(round) = bank.take(&fp).unwrap() {
            assert_eq!(round.expected, expected_checksum(&build, &round.challenges));
        }
    }

    #[test]
    fn parallel_fill_matches_serial_fill() {
        // Same generator seed → the work-stealing prefill must stock the
        // same rounds, in the same order, with the same checksums as the
        // round-serial fill.
        let serial = sync_bank(7, 4, 3);
        serial.fill(4);
        for pool in [ReplayPool::serial(), ReplayPool::new(3)] {
            let parallel = sync_bank(7, 4, 3);
            parallel.fill_parallel(4, &pool);
            let fp = serial.fingerprint();
            assert_eq!(parallel.len(), serial.len());
            let reference = sync_bank(7, 4, 3);
            reference.fill(4);
            for _ in 0..4 {
                let a = reference.take(&fp).unwrap().expect("stock");
                let b = parallel.take(&fp).unwrap().expect("stock");
                assert_eq!(a.challenges, b.challenges);
                assert_eq!(a.expected, b.expected);
            }
        }
    }

    #[test]
    fn prefill_banks_stocks_every_fingerprint() {
        // Three banks over distinct builds, one flat job list: every bank
        // ends up stocked with pairs bit-exact against direct replay.
        let banks = [sync_bank(7, 2, 1), sync_bank(8, 2, 2), sync_bank(9, 2, 3)];
        let refs: Vec<&ChallengeBank> = banks.iter().collect();
        let pool = ReplayPool::new(2);
        prefill_banks(&refs, 2, &pool);
        for (bank, fill_seed) in banks.iter().zip([7u32, 8, 9]) {
            assert_eq!(bank.len(), 2);
            let build = tiny_build(fill_seed);
            let fp = bank.fingerprint();
            while let Some(round) = bank.take(&fp).unwrap() {
                assert_eq!(round.expected, expected_checksum(&build, &round.challenges));
            }
        }
    }

    #[test]
    fn parallel_fill_respects_capacity() {
        let bank = sync_bank(7, 2, 5);
        bank.fill_parallel(10, &ReplayPool::serial());
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn exhaustion_reports_out_of_stock() {
        let bank = sync_bank(7, 2, 1);
        bank.fill(2);
        let fp = bank.fingerprint();
        assert!(bank.take(&fp).unwrap().is_some());
        assert!(bank.take(&fp).unwrap().is_some());
        // Empty: the non-blocking take signals the caller to replay
        // online instead.
        assert!(bank.take(&fp).unwrap().is_none());
        let c = bank.counters();
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
        assert_eq!(c.refills, 2);
    }

    #[test]
    fn refill_after_drain_restocks() {
        let bank = sync_bank(7, 2, 1);
        bank.fill(2);
        let fp = bank.fingerprint();
        let first = bank.take(&fp).unwrap().expect("stock");
        let _ = bank.take(&fp).unwrap().expect("stock");
        assert!(bank.is_empty());
        bank.fill(2);
        assert_eq!(bank.len(), 2);
        let third = bank.take(&fp).unwrap().expect("restocked");
        // The generator stream continues — restocked rounds are fresh,
        // never re-issues.
        assert_ne!(first.challenges, third.challenges);
        assert_eq!(bank.counters().refills, 4);
    }

    #[test]
    fn fill_respects_capacity() {
        let bank = sync_bank(7, 2, 1);
        bank.fill(10);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.counters().refills, 2);
    }

    #[test]
    fn foreign_fingerprint_is_refused() {
        let bank = sync_bank(7, 2, 1);
        bank.fill(1);
        // Same params, different fill seed → different image → different
        // fingerprint. Stock for build A must never be issued for B.
        let other_fp = tiny_build(8).fingerprint();
        assert_ne!(other_fp, bank.fingerprint());
        assert!(bank.take(&other_fp).is_err());
        assert!(bank.take_blocking(&other_fp).is_err());
        assert_eq!(bank.counters().fingerprint_rejects, 2);
        // The stock itself is untouched.
        assert_eq!(bank.len(), 1);
    }

    #[test]
    fn blocking_take_refills_inline_without_workers() {
        let bank = sync_bank(7, 2, 5);
        let fp = bank.fingerprint();
        // Empty bank, zero workers: the blocking take computes the pair
        // synchronously on this thread.
        let round = bank.take_blocking(&fp).unwrap();
        let build = tiny_build(7);
        assert_eq!(round.expected, expected_checksum(&build, &round.challenges));
        let c = bank.counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.refills, 1);
    }

    #[test]
    fn poisoned_stock_is_discarded_never_issued() {
        let bank = sync_bank(7, 4, 3);
        bank.fill(2);
        let fp = bank.fingerprint();
        // Corrupt the front pair the way a DRAM fault would: payload
        // changes, integrity tag doesn't.
        assert!(bank.corrupt_stock(0));
        let round = bank.take(&fp).unwrap().expect("second pair is intact");
        // The issued pair must be the *second* one — bit-exact against
        // the oracle, so the corrupted expected value can never be the
        // basis of an accept.
        let build = tiny_build(7);
        assert_eq!(
            round.expected,
            crate::replay::expected_checksum_unpooled(&build, &round.challenges)
        );
        let c = bank.counters();
        assert_eq!(c.poisoned, 1);
        assert_eq!(c.hits, 1);
    }

    #[test]
    fn fully_poisoned_bank_reports_out_of_stock() {
        let bank = sync_bank(7, 4, 3);
        bank.fill(2);
        assert!(bank.corrupt_stock(0));
        assert!(bank.corrupt_stock(1));
        let fp = bank.fingerprint();
        // Every pair is poisoned: the non-blocking take reports a miss,
        // which sends the verifier down the online-replay path.
        assert!(bank.take(&fp).unwrap().is_none());
        let c = bank.counters();
        assert_eq!(c.poisoned, 2);
        assert_eq!(c.hits, 0);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn blocking_take_refills_past_poisoned_stock() {
        let bank = sync_bank(7, 4, 3);
        bank.fill(1);
        assert!(bank.corrupt_stock(0));
        let fp = bank.fingerprint();
        // Zero workers: the poisoned pair is discarded and a fresh one
        // computed synchronously — the caller always gets a valid pair.
        let round = bank.take_blocking(&fp).unwrap();
        let build = tiny_build(7);
        assert_eq!(
            round.expected,
            crate::replay::expected_checksum_unpooled(&build, &round.challenges)
        );
        let c = bank.counters();
        assert_eq!(c.poisoned, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.refills, 2);
    }

    #[test]
    fn corrupt_stock_out_of_range_is_reported() {
        let bank = sync_bank(7, 2, 3);
        assert!(!bank.corrupt_stock(0));
    }

    #[test]
    fn background_workers_stock_the_bank() {
        let bank = ChallengeBank::new(
            tiny_build(7),
            BankConfig {
                capacity: 2,
                workers: 1,
            },
            counter_gen(1),
        );
        let fp = bank.fingerprint();
        // The worker fills asynchronously; blocking takes always succeed.
        for _ in 0..4 {
            let round = bank.take_blocking(&fp).unwrap();
            assert_eq!(round.challenges.len(), 2); // test_tiny: 2 blocks
        }
        let c = bank.counters();
        assert_eq!(c.hits + c.misses, 4);
        assert!(c.refills >= 4);
    }
}
