//! Seeded fuzz for the evidence codec: records, record streams,
//! inclusion proofs and full device reports all decode from adversarial
//! bytes (a relying party runs `verify_report` on data it did not
//! produce), so no byte string — random, structured-random, or a
//! mutation of a valid encoding — may ever panic a decoder, every valid
//! encoding must round-trip bit for bit, and an inclusion proof must
//! reject every single-bit mutation of the proof, the leaf, or the root.
//!
//! This suite is dependency-free (SplitMix64 is the generator, copied
//! from `sage-service`'s network simulator so this crate keeps its
//! sage-crypto-only dependency surface) and runs in every `cargo test`.
//! A proptest-shaped twin lives in `evidence_properties.rs` behind the
//! `proptest` feature gate.

use sage_crypto::canon::Reader;
use sage_evidence::chain::{decode_records, encode_records};
use sage_evidence::merkle::{epoch_root, prove_inclusion, verify_inclusion};
use sage_evidence::{
    DeviceReport, EpochLeaf, EvidenceChain, EvidencePath, EvidencePayload, EvidenceRecord,
    FreshnessClaim, FreshnessPolicy, InclusionProof, StageVerdict,
};

/// SplitMix64 — the suite's only randomness source, seeded and
/// deterministic.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

fn arr<const N: usize>(rng: &mut SplitMix64) -> [u8; N] {
    let mut a = [0u8; N];
    for b in &mut a {
        *b = rng.next_u64() as u8;
    }
    a
}

fn bytes(rng: &mut SplitMix64, max_len: u64) -> Vec<u8> {
    (0..rng.below(max_len))
        .map(|_| rng.next_u64() as u8)
        .collect()
}

fn verdict(rng: &mut SplitMix64) -> StageVerdict {
    match rng.below(4) {
        0 => StageVerdict::Pass,
        1 => StageVerdict::WrongValue,
        2 => StageVerdict::TooSlow,
        _ => StageVerdict::Timeout,
    }
}

/// A random payload covering every record kind.
fn random_payload(rng: &mut SplitMix64) -> EvidencePayload {
    match rng.below(4) {
        0 => EvidencePayload::SakeConfirmed {
            key_fingerprint: arr(rng),
            measured_cycles: rng.next_u64(),
            threshold_cycles: rng.next_u64(),
        },
        1 => EvidencePayload::ChecksumRound {
            round: rng.next_u64(),
            measured_cycles: rng.next_u64(),
            threshold_cycles: rng.next_u64(),
            verdict: verdict(rng),
            path: if rng.below(2) == 0 {
                EvidencePath::Classic
            } else {
                EvidencePath::Precomputed
            },
        },
        2 => EvidencePayload::KernelHash {
            hash: arr(rng),
            verdict: verdict(rng),
        },
        _ => EvidencePayload::ChannelLiveness {
            nonce: rng.next_u64(),
            verdict: verdict(rng),
        },
    }
}

fn random_record(rng: &mut SplitMix64) -> EvidenceRecord {
    EvidenceRecord::seal(
        rng.next_u64(),
        rng.next_u64(),
        random_payload(rng),
        arr(rng),
        &arr(rng),
    )
}

/// Mutates a buffer with 1–4 random bit flips / truncations / appends.
fn mutate(rng: &mut SplitMix64, buf: &mut Vec<u8>) {
    for _ in 0..=rng.below(4) {
        match rng.below(3) {
            0 if !buf.is_empty() => {
                let i = rng.below(buf.len() as u64) as usize;
                buf[i] ^= 1 << rng.below(8);
            }
            1 if !buf.is_empty() => {
                let n = rng.below(buf.len() as u64 + 1) as usize;
                buf.truncate(n);
            }
            _ => {
                let extra = bytes(rng, 16);
                buf.extend_from_slice(&extra);
            }
        }
    }
}

#[test]
fn every_record_kind_round_trips() {
    let mut rng = SplitMix64::new(0xE51D_E4CE);
    for _ in 0..5_000 {
        let rec = random_record(&mut rng);
        let decoded = EvidenceRecord::decode(&rec.encode()).expect("valid record decodes");
        assert_eq!(decoded, rec, "round-trip failed for {rec:?}");
    }
}

#[test]
fn record_streams_round_trip() {
    let mut rng = SplitMix64::new(0x57AE_A111);
    for _ in 0..500 {
        let records: Vec<EvidenceRecord> =
            (0..rng.below(8)).map(|_| random_record(&mut rng)).collect();
        let encoded = encode_records(&records);
        let mut r = Reader::new(&encoded);
        let decoded = decode_records(&mut r).expect("valid stream decodes");
        r.finish().expect("stream is exactly consumed");
        assert_eq!(decoded, records);
    }
}

#[test]
fn decoders_never_panic_on_random_bytes() {
    let mut rng = SplitMix64::new(0xDEC0_DE07);
    for _ in 0..20_000 {
        let buf = bytes(&mut rng, 256);
        let _ = EvidenceRecord::decode(&buf);
        let _ = DeviceReport::decode(&buf);
        let mut r = Reader::new(&buf);
        let _ = decode_records(&mut r);
        let mut r = Reader::new(&buf);
        let _ = InclusionProof::decode_from(&mut r);
        let mut r = Reader::new(&buf);
        let _ = EpochLeaf::decode_from(&mut r);
    }
}

#[test]
fn decoders_never_panic_on_structured_garbage() {
    // Valid-looking version and payload-tag bytes steer the fuzz past
    // the early checks into the per-kind field parsers; lying count
    // prefixes exercise the preallocation bounds.
    let mut rng = SplitMix64::new(0x57A6_E007);
    for _ in 0..20_000 {
        let mut buf = Vec::new();
        buf.push(if rng.below(10) == 0 {
            rng.next_u64() as u8
        } else {
            sage_evidence::EVIDENCE_VERSION
        });
        buf.extend_from_slice(&rng.next_u64().to_le_bytes());
        buf.extend_from_slice(&rng.next_u64().to_le_bytes());
        buf.push(rng.below(6) as u8); // payload tag, sometimes invalid
        buf.extend_from_slice(&bytes(&mut rng, 96));
        let _ = EvidenceRecord::decode(&buf);

        // Count-prefixed stream with a mostly-lying count.
        let mut stream = Vec::new();
        stream.extend_from_slice(&(rng.next_u64() as u32).to_le_bytes());
        stream.extend_from_slice(&buf);
        let mut r = Reader::new(&stream);
        let _ = decode_records(&mut r);
        let mut r = Reader::new(&stream);
        let _ = InclusionProof::decode_from(&mut r);
    }
}

#[test]
fn decoders_never_panic_on_mutated_valid_encodings() {
    let mut rng = SplitMix64::new(0xBADC_0FFE);
    for _ in 0..5_000 {
        let rec = random_record(&mut rng);
        let mut buf = rec.encode();
        mutate(&mut rng, &mut buf);
        if let Ok(redecoded) = EvidenceRecord::decode(&buf) {
            // A mutation may still decode (e.g. a payload-field flip);
            // whatever comes out must itself round-trip.
            assert_eq!(
                EvidenceRecord::decode(&redecoded.encode()).as_ref(),
                Ok(&redecoded)
            );
        }
    }
}

#[test]
fn mutated_reports_never_panic_and_never_verify() {
    // A full report built the honest way, then mutated on the wire: the
    // decoder may reject it (fine) and `verify_report` must never accept
    // it — the envelope CMAC covers every byte ahead of the tag.
    let mut rng = SplitMix64::new(0x4E50_4057);
    let mut chain = EvidenceChain::new("gpu-fuzz", &[0xF5; 16]);
    for i in 0..4 {
        chain.append(
            10 * (i + 1),
            EvidencePayload::ChannelLiveness {
                nonce: i,
                verdict: StageVerdict::Pass,
            },
        );
    }
    let leaves = vec![EpochLeaf {
        device: "gpu-fuzz".into(),
        head: chain.head(),
        seq: chain.seq(),
    }];
    let root = epoch_root(&leaves);
    let proof = prove_inclusion(&leaves, 0);
    chain.append(
        50,
        EvidencePayload::ChannelLiveness {
            nonce: 9,
            verdict: StageVerdict::Pass,
        },
    );
    let policy = FreshnessPolicy {
        stale_after: 1_000,
        degraded_after: 2_000,
    };
    let claim = FreshnessClaim {
        policy,
        last_pass_at: chain.last_pass_at(),
        asserted_at: 60,
        level: policy.level(chain.last_pass_at(), 60),
    };
    let key = chain.evidence_key();
    let report = DeviceReport::seal(
        1,
        leaves[0].clone(),
        root,
        proof,
        chain.suffix(4),
        claim,
        &key,
    );
    let valid = report.encode();
    assert!(sage_evidence::verify_report(&report, &root, &key, 70).is_ok());

    for _ in 0..5_000 {
        let mut buf = valid.clone();
        mutate(&mut rng, &mut buf);
        if buf == valid {
            continue;
        }
        if let Ok(decoded) = DeviceReport::decode(&buf) {
            if decoded == report {
                continue; // e.g. a truncate-then-append round trip
            }
            assert!(
                sage_evidence::verify_report(&decoded, &root, &key, 70).is_err(),
                "mutated report verified"
            );
        }
    }
}

#[test]
fn inclusion_proofs_reject_every_single_bit_mutation() {
    for n in 1..=8usize {
        let leaves: Vec<EpochLeaf> = (0..n)
            .map(|i| EpochLeaf {
                device: format!("gpu-{i}"),
                head: [i as u8 ^ 0x5A; 32],
                seq: i as u64 * 7 + 1,
            })
            .collect();
        let root = epoch_root(&leaves);
        let index = n / 2;
        let proof = prove_inclusion(&leaves, index);
        assert!(verify_inclusion(&leaves[index], &proof, &root));

        // Every bit of the encoded proof: a flip must break decode or
        // verification.
        let mut proof_bytes = Vec::new();
        proof.encode(&mut proof_bytes);
        for byte in 0..proof_bytes.len() {
            for bit in 0..8 {
                let mut mutated = proof_bytes.clone();
                mutated[byte] ^= 1 << bit;
                let mut r = Reader::new(&mutated);
                let verified = InclusionProof::decode_from(&mut r)
                    .ok()
                    .filter(|_| r.finish().is_ok())
                    .is_some_and(|p| verify_inclusion(&leaves[index], &p, &root));
                assert!(
                    !verified,
                    "fleet {n}: proof bit {bit} of byte {byte} not detected"
                );
            }
        }

        // Every bit of the leaf encoding, likewise.
        let mut leaf_bytes = Vec::new();
        leaves[index].encode(&mut leaf_bytes);
        for byte in 0..leaf_bytes.len() {
            for bit in 0..8 {
                let mut mutated = leaf_bytes.clone();
                mutated[byte] ^= 1 << bit;
                let mut r = Reader::new(&mutated);
                let verified = EpochLeaf::decode_from(&mut r)
                    .ok()
                    .filter(|_| r.finish().is_ok())
                    .is_some_and(|l| verify_inclusion(&l, &proof, &root));
                assert!(
                    !verified,
                    "fleet {n}: leaf bit {bit} of byte {byte} not detected"
                );
            }
        }

        // Every bit of the root.
        for byte in 0..root.len() {
            for bit in 0..8 {
                let mut mutated = root;
                mutated[byte] ^= 1 << bit;
                assert!(
                    !verify_inclusion(&leaves[index], &proof, &mutated),
                    "fleet {n}: root bit {bit} of byte {byte} not detected"
                );
            }
        }
    }
}
