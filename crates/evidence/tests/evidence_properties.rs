//! Property-based evidence-codec checks: arbitrary byte strings never
//! panic any decoder, every representable record round-trips through
//! encode → decode unchanged, and inclusion proofs reject every
//! single-bit mutation. The always-on seeded twin of this suite lives in
//! `evidence_fuzz.rs`; this file adds proptest's shrinking on top.

// Entire suite gated: `proptest` is not vendored in this dependency-free
// tree. Build with `--features proptest` after re-adding the dev-dependency
// locally to run it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use sage_crypto::canon::Reader;
use sage_evidence::chain::decode_records;
use sage_evidence::merkle::{epoch_root, prove_inclusion, verify_inclusion};
use sage_evidence::{
    DeviceReport, EpochLeaf, EvidencePath, EvidencePayload, EvidenceRecord, InclusionProof,
    StageVerdict,
};

fn arb_verdict() -> impl Strategy<Value = StageVerdict> {
    prop_oneof![
        Just(StageVerdict::Pass),
        Just(StageVerdict::WrongValue),
        Just(StageVerdict::TooSlow),
        Just(StageVerdict::Timeout),
    ]
}

fn arb_payload() -> impl Strategy<Value = EvidencePayload> {
    prop_oneof![
        (any::<[u8; 8]>(), any::<u64>(), any::<u64>()).prop_map(
            |(key_fingerprint, measured_cycles, threshold_cycles)| {
                EvidencePayload::SakeConfirmed {
                    key_fingerprint,
                    measured_cycles,
                    threshold_cycles,
                }
            }
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_verdict(),
            any::<bool>()
        )
            .prop_map(
                |(round, measured_cycles, threshold_cycles, verdict, fast)| {
                    EvidencePayload::ChecksumRound {
                        round,
                        measured_cycles,
                        threshold_cycles,
                        verdict,
                        path: if fast {
                            EvidencePath::Precomputed
                        } else {
                            EvidencePath::Classic
                        },
                    }
                }
            ),
        (any::<[u8; 32]>(), arb_verdict())
            .prop_map(|(hash, verdict)| EvidencePayload::KernelHash { hash, verdict }),
        (any::<u64>(), arb_verdict())
            .prop_map(|(nonce, verdict)| EvidencePayload::ChannelLiveness { nonce, verdict }),
    ]
}

fn arb_record() -> impl Strategy<Value = EvidenceRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        arb_payload(),
        any::<[u8; 32]>(),
        any::<[u8; 16]>(),
    )
        .prop_map(|(seq, at, payload, prev, key)| {
            EvidenceRecord::seal(seq, at, payload, prev, &key)
        })
}

fn arb_leaves() -> impl Strategy<Value = Vec<EpochLeaf>> {
    prop::collection::vec((any::<[u8; 32]>(), any::<u64>()), 1..9).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (head, seq))| EpochLeaf {
                device: format!("gpu-{i}"),
                head,
                seq,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn decoders_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = EvidenceRecord::decode(&bytes);
        let _ = DeviceReport::decode(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = decode_records(&mut r);
        let mut r = Reader::new(&bytes);
        let _ = InclusionProof::decode_from(&mut r);
        let mut r = Reader::new(&bytes);
        let _ = EpochLeaf::decode_from(&mut r);
    }

    #[test]
    fn records_round_trip(rec in arb_record()) {
        prop_assert_eq!(EvidenceRecord::decode(&rec.encode()).as_ref(), Ok(&rec));
    }

    #[test]
    fn mutated_records_stay_total(
        rec in arb_record(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut buf = rec.encode();
        let i = idx.index(buf.len());
        buf[i] ^= 1 << bit;
        if let Ok(redecoded) = EvidenceRecord::decode(&buf) {
            prop_assert_eq!(EvidenceRecord::decode(&redecoded.encode()).as_ref(), Ok(&redecoded));
        }
    }

    #[test]
    fn inclusion_proof_rejects_bit_flips(
        leaves in arb_leaves(),
        pick in any::<prop::sample::Index>(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let index = pick.index(leaves.len());
        let root = epoch_root(&leaves);
        let proof = prove_inclusion(&leaves, index);
        prop_assert!(verify_inclusion(&leaves[index], &proof, &root));

        let mut buf = Vec::new();
        proof.encode(&mut buf);
        let i = idx.index(buf.len());
        buf[i] ^= 1 << bit;
        let mut r = Reader::new(&buf);
        let verified = InclusionProof::decode_from(&mut r)
            .ok()
            .filter(|_| r.finish().is_ok())
            .is_some_and(|p| verify_inclusion(&leaves[index], &p, &root));
        prop_assert!(!verified);
    }
}
