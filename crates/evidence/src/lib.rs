//! Hash-chained attestation evidence, Merkle fleet epochs, and
//! freshness-driven trust decay for the SAGE reproduction.
//!
//! The paper's verifier (§5) emits a stream of pass/fail verdicts; this
//! crate turns that stream into *evidence* a third party can check
//! without trusting the service's event log:
//!
//! - [`record`] — one attestation stage (SAKE confirmation, checksum
//!   round, kernel-hash check, channel liveness) as a canonically
//!   encoded, AES-CMAC-authenticated [`EvidenceRecord`],
//! - [`chain`] — the per-device append-only [`EvidenceChain`], each
//!   record hash-linked to its predecessor and keyed from the device's
//!   SAKE session key,
//! - [`merkle`] — the fleet [`epoch_root`] accumulator over device
//!   chain heads, with per-device [`InclusionProof`]s,
//! - [`freshness`] — [`FreshnessPolicy`]-driven trust decay
//!   (`Trusted → Stale → Degraded`) reversed by re-attestation,
//! - [`report`] — the self-contained [`DeviceReport`] and
//!   [`verify_report`], which maps every tampering class (forked chain,
//!   reordered records, re-keyed MACs, stale replay) to one exact
//!   [`ReportError`].
//!
//! Only `sage-crypto` is a dependency, so a relying party can link this
//! crate alone to verify reports.

pub mod chain;
pub mod freshness;
pub mod merkle;
pub mod record;
pub mod report;

pub use chain::{derive_evidence_key, genesis_head, verify_suffix, EvidenceChain};
pub use freshness::{Freshness, FreshnessPolicy};
pub use merkle::{
    epoch_root, prove_inclusion, verify_inclusion, EpochLeaf, InclusionProof, ProofStep,
};
pub use record::{EvidencePath, EvidencePayload, EvidenceRecord, StageVerdict, EVIDENCE_VERSION};
pub use report::{verify_report, DeviceReport, FreshnessClaim, ReportError};
