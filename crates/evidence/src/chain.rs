//! The per-device evidence chain: an append-only, hash-linked sequence
//! of [`EvidenceRecord`]s, authenticated with a key derived from the
//! device's SAKE session key.

use sage_crypto::canon::{CanonError, Reader};
use sage_crypto::Sha256;

use crate::record::{EvidencePayload, EvidenceRecord};
use crate::report::ReportError;

/// Derives the chain's AES-CMAC key from the SAKE session key with a
/// domain label, so evidence tags can never collide with channel or
/// protocol MACs under the same session key.
pub fn derive_evidence_key(session_key: &[u8; 16]) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(b"sage-evidence-key:");
    h.update(session_key);
    let d = h.finalize();
    d[..16].try_into().expect("16 bytes")
}

/// The chain's genesis head: a device-bound constant every chain starts
/// from, so records can never be grafted between devices even under the
/// same key.
pub fn genesis_head(device: &str) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"sage-evidence-genesis:");
    h.update(&(device.len() as u64).to_le_bytes());
    h.update(device.as_bytes());
    h.finalize()
}

/// A device's append-only evidence chain.
#[derive(Clone, Debug)]
pub struct EvidenceChain {
    device: String,
    key: [u8; 16],
    records: Vec<EvidenceRecord>,
    head: [u8; 32],
    /// Reused across appends ([`Sha256::finalize_reset`]) so each link
    /// hash costs no allocation or re-buffering.
    hasher: Sha256,
}

impl EvidenceChain {
    /// Starts an empty chain for `device`, keyed from the SAKE session
    /// key.
    pub fn new(device: &str, session_key: &[u8; 16]) -> EvidenceChain {
        EvidenceChain {
            device: device.to_string(),
            key: derive_evidence_key(session_key),
            records: Vec::new(),
            head: genesis_head(device),
            hasher: Sha256::new(),
        }
    }

    /// Rebuilds a chain from its parts (crash-restore path). The records
    /// are re-verified link by link; a snapshot that does not re-hash to
    /// the recorded structure is rejected.
    pub fn restore(
        device: &str,
        evidence_key: [u8; 16],
        records: Vec<EvidenceRecord>,
    ) -> Result<EvidenceChain, ReportError> {
        let mut chain = EvidenceChain {
            device: device.to_string(),
            key: evidence_key,
            records: Vec::new(),
            head: genesis_head(device),
            hasher: Sha256::new(),
        };
        let head = verify_suffix(&records, chain.head, 0, &chain.key)?;
        chain.head = head;
        chain.records = records;
        Ok(chain)
    }

    /// The device this chain belongs to.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// The chain's MAC key (needed by an out-of-process verifier; hand
    /// it over a confidential channel only).
    pub fn evidence_key(&self) -> [u8; 16] {
        self.key
    }

    /// Current head: the link hash of the newest record, or the genesis
    /// head while empty. This is the value a fleet epoch seals.
    pub fn head(&self) -> [u8; 32] {
        self.head
    }

    /// Sequence number of the newest record (0 while empty).
    pub fn seq(&self) -> u64 {
        self.records.last().map(|r| r.seq).unwrap_or(0)
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[EvidenceRecord] {
        &self.records
    }

    /// Records with `seq > after_seq`, oldest first — the chain suffix a
    /// [`crate::report::DeviceReport`] carries past a sealed epoch.
    pub fn suffix(&self, after_seq: u64) -> Vec<EvidenceRecord> {
        self.records
            .iter()
            .filter(|r| r.seq > after_seq)
            .cloned()
            .collect()
    }

    /// Appends one attested stage at virtual time `at`, returning the
    /// sealed record. The new head is the record's link hash, computed
    /// with the chain's reusable streaming hasher.
    pub fn append(&mut self, at: u64, payload: EvidencePayload) -> &EvidenceRecord {
        let seq = self.seq() + 1;
        let rec = EvidenceRecord::seal(seq, at, payload, self.head, &self.key);
        self.hasher.update(&rec.encode());
        self.head = self.hasher.finalize_reset();
        self.records.push(rec);
        self.records.last().expect("just pushed")
    }

    /// Virtual time of the newest record whose stage passed, if any —
    /// the freshness anchor.
    pub fn last_pass_at(&self) -> Option<u64> {
        self.records
            .iter()
            .rev()
            .find(|r| r.payload.verdict() == crate::record::StageVerdict::Pass)
            .map(|r| r.at)
    }
}

/// Walks a record suffix, verifying sequence continuity, MAC tags and
/// hash links starting from `start_head` (the link hash the first record
/// must chain from) and `start_seq` (the sequence number it extends).
/// Returns the resulting head.
///
/// The checks run in fixed order — sequence, tag, link — so each
/// tampering class maps to one exact [`ReportError`]:
/// reordered/dropped records fail `BadSeq`, a wrong or re-keyed MAC
/// fails `BadTag`, and a forked or substituted record (valid-looking tag
/// but wrong parent) fails `BrokenLink`.
pub fn verify_suffix(
    records: &[EvidenceRecord],
    start_head: [u8; 32],
    start_seq: u64,
    key: &[u8; 16],
) -> Result<[u8; 32], ReportError> {
    let mut head = start_head;
    let mut seq = start_seq;
    for rec in records {
        if rec.seq != seq + 1 {
            return Err(ReportError::BadSeq {
                expected: seq + 1,
                got: rec.seq,
            });
        }
        if !rec.verify_tag(key) {
            return Err(ReportError::BadTag { seq: rec.seq });
        }
        if rec.prev != head {
            return Err(ReportError::BrokenLink { seq: rec.seq });
        }
        head = rec.link_hash();
        seq = rec.seq;
    }
    Ok(head)
}

/// Encodes a record suffix as one canonical byte string (count-prefixed).
pub fn encode_records(records: &[EvidenceRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    sage_crypto::canon::put_u32(&mut out, records.len() as u32);
    for r in records {
        out.extend_from_slice(&r.encode());
    }
    out
}

/// Decodes a count-prefixed record suffix from a [`Reader`].
pub fn decode_records(r: &mut Reader<'_>) -> Result<Vec<EvidenceRecord>, CanonError> {
    let n = r.u32()? as usize;
    // A record is ≥ 60 bytes; bound the preallocation by what the input
    // could actually hold.
    let mut out = Vec::with_capacity(n.min(r.remaining() / 60 + 1));
    for _ in 0..n {
        out.push(EvidenceRecord::decode_from(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::StageVerdict;

    fn liveness(nonce: u64) -> EvidencePayload {
        EvidencePayload::ChannelLiveness {
            nonce,
            verdict: StageVerdict::Pass,
        }
    }

    #[test]
    fn chain_appends_link_and_verify() {
        let mut chain = EvidenceChain::new("gpu-a", &[3u8; 16]);
        for i in 0..5 {
            chain.append(100 * (i + 1), liveness(i));
        }
        assert_eq!(chain.seq(), 5);
        let head = verify_suffix(
            chain.records(),
            genesis_head("gpu-a"),
            0,
            &chain.evidence_key(),
        )
        .unwrap();
        assert_eq!(head, chain.head());
    }

    #[test]
    fn chains_are_device_bound() {
        let key = [3u8; 16];
        let mut a = EvidenceChain::new("gpu-a", &key);
        a.append(10, liveness(0));
        // Same records, same key, different device: the genesis head
        // differs, so the graft is a broken link at seq 1.
        assert_eq!(
            verify_suffix(a.records(), genesis_head("gpu-b"), 0, &a.evidence_key()),
            Err(ReportError::BrokenLink { seq: 1 })
        );
    }

    #[test]
    fn tamper_classes_map_to_exact_errors() {
        let mut chain = EvidenceChain::new("gpu-a", &[9u8; 16]);
        for i in 0..4 {
            chain.append(10 * (i + 1), liveness(i));
        }
        let key = chain.evidence_key();
        let genesis = genesis_head("gpu-a");

        // Reorder: swap two records.
        let mut reordered = chain.records().to_vec();
        reordered.swap(1, 2);
        assert_eq!(
            verify_suffix(&reordered, genesis, 0, &key),
            Err(ReportError::BadSeq {
                expected: 2,
                got: 3
            })
        );

        // Drop a record.
        let mut dropped = chain.records().to_vec();
        dropped.remove(1);
        assert_eq!(
            verify_suffix(&dropped, genesis, 0, &key),
            Err(ReportError::BadSeq {
                expected: 2,
                got: 3
            })
        );

        // Re-key: a record re-MACed under the wrong key.
        let mut rekeyed = chain.records().to_vec();
        let r = &rekeyed[2];
        rekeyed[2] = EvidenceRecord::seal(r.seq, r.at, r.payload.clone(), r.prev, &[0xEE; 16]);
        assert_eq!(
            verify_suffix(&rekeyed, genesis, 0, &key),
            Err(ReportError::BadTag { seq: 3 })
        );

        // Fork: replace a mid-chain record with a correctly-keyed record
        // carrying a different parent (an alternate history).
        let mut forked = chain.records().to_vec();
        let r = &forked[2];
        forked[2] = EvidenceRecord::seal(r.seq, r.at, r.payload.clone(), [0xAB; 32], &key);
        assert_eq!(
            verify_suffix(&forked, genesis, 0, &key),
            Err(ReportError::BrokenLink { seq: 3 })
        );

        // The untampered chain still verifies (no false rejects).
        assert!(verify_suffix(chain.records(), genesis, 0, &key).is_ok());
    }

    #[test]
    fn restore_re_verifies() {
        let mut chain = EvidenceChain::new("gpu-a", &[5u8; 16]);
        chain.append(10, liveness(0));
        chain.append(20, liveness(1));
        let restored =
            EvidenceChain::restore("gpu-a", chain.evidence_key(), chain.records().to_vec())
                .unwrap();
        assert_eq!(restored.head(), chain.head());
        assert_eq!(restored.seq(), 2);

        let mut bad = chain.records().to_vec();
        bad[0].at ^= 1;
        assert!(EvidenceChain::restore("gpu-a", chain.evidence_key(), bad).is_err());
    }

    #[test]
    fn records_codec_round_trips() {
        let mut chain = EvidenceChain::new("gpu-x", &[6u8; 16]);
        for i in 0..3 {
            chain.append(i, liveness(i));
        }
        let bytes = encode_records(chain.records());
        let mut r = Reader::new(&bytes);
        let decoded = decode_records(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, chain.records());
    }
}
