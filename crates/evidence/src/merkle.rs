//! The fleet epoch accumulator: a Merkle tree over the chain heads of
//! every managed device at an epoch boundary.
//!
//! Leaf and inner hashing are domain-separated (`0x00` / `0x01`
//! prefixes) so an inner node can never be replayed as a leaf; an odd
//! node at any level is promoted, not duplicated, so no leaf can appear
//! under two proofs.

use sage_crypto::canon::{self, CanonError, Reader};
use sage_crypto::Sha256;

/// One device's contribution to an epoch: its name, chain head, and the
/// sequence number that head seals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EpochLeaf {
    /// Device name (the service's stable identifier).
    pub device: String,
    /// The device's evidence-chain head at the epoch boundary.
    pub head: [u8; 32],
    /// Chain sequence number the head corresponds to.
    pub seq: u64,
}

impl EpochLeaf {
    /// The leaf hash: `SHA-256(0x00 ‖ canonical(device, head, seq))`.
    pub fn hash(&self) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(self.device.len() + 48);
        canon::put_str(&mut bytes, &self.device);
        canon::put_fixed(&mut bytes, &self.head);
        canon::put_u64(&mut bytes, self.seq);
        let mut h = Sha256::new();
        h.update(&[0x00]);
        h.update(&bytes);
        h.finalize()
    }

    /// Canonical encoding (snapshot / report transport).
    pub fn encode(&self, out: &mut Vec<u8>) {
        canon::put_str(out, &self.device);
        canon::put_fixed(out, &self.head);
        canon::put_u64(out, self.seq);
    }

    /// Decodes one leaf from a [`Reader`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<EpochLeaf, CanonError> {
        Ok(EpochLeaf {
            device: r.str()?.to_string(),
            head: r.fixed::<32>()?,
            seq: r.u64()?,
        })
    }
}

fn inner_hash(hasher: &mut Sha256, left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    hasher.update(&[0x01]);
    hasher.update(left);
    hasher.update(right);
    hasher.finalize_reset()
}

/// Computes the epoch root over `leaves` (in the given order; the
/// service sorts by device name so the root is order-canonical). An
/// empty leaf set has the domain-tagged empty root.
pub fn epoch_root(leaves: &[EpochLeaf]) -> [u8; 32] {
    let mut level: Vec<[u8; 32]> = leaves.iter().map(EpochLeaf::hash).collect();
    if level.is_empty() {
        let mut h = Sha256::new();
        h.update(b"sage-evidence-empty-epoch");
        return h.finalize();
    }
    let mut hasher = Sha256::new();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2 + 1);
        for pair in level.chunks(2) {
            match pair {
                [l, r] => next.push(inner_hash(&mut hasher, l, r)),
                [odd] => next.push(*odd), // promoted, not duplicated
                _ => unreachable!("chunks(2)"),
            }
        }
        level = next;
    }
    level[0]
}

/// One step of an inclusion proof: the sibling hash and which side it
/// sits on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProofStep {
    /// The sibling node's hash.
    pub sibling: [u8; 32],
    /// True when the sibling is on the left (our node is the right child).
    pub sibling_on_left: bool,
}

/// A Merkle inclusion proof for one leaf under an epoch root.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct InclusionProof {
    /// Bottom-up sibling path.
    pub steps: Vec<ProofStep>,
}

impl InclusionProof {
    /// Canonical encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        canon::put_u32(out, self.steps.len() as u32);
        for s in &self.steps {
            canon::put_fixed(out, &s.sibling);
            canon::put_u8(out, s.sibling_on_left as u8);
        }
    }

    /// Decodes a proof from a [`Reader`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<InclusionProof, CanonError> {
        let n = r.u32()? as usize;
        let mut steps = Vec::with_capacity(n.min(r.remaining() / 33 + 1));
        for _ in 0..n {
            let sibling = r.fixed::<32>()?;
            let side = r.u8()?;
            if side > 1 {
                return Err(CanonError::BadTag {
                    field: "proof side",
                    value: side,
                });
            }
            steps.push(ProofStep {
                sibling,
                sibling_on_left: side == 1,
            });
        }
        Ok(InclusionProof { steps })
    }
}

/// Builds the inclusion proof for `leaves[index]`.
///
/// # Panics
///
/// Panics if `index` is out of bounds.
pub fn prove_inclusion(leaves: &[EpochLeaf], index: usize) -> InclusionProof {
    assert!(index < leaves.len(), "leaf index out of bounds");
    let mut level: Vec<[u8; 32]> = leaves.iter().map(EpochLeaf::hash).collect();
    let mut pos = index;
    let mut steps = Vec::new();
    let mut hasher = Sha256::new();
    while level.len() > 1 {
        let sibling = pos ^ 1;
        if sibling < level.len() {
            steps.push(ProofStep {
                sibling: level[sibling],
                sibling_on_left: sibling < pos,
            });
        }
        // else: odd node promoted — no step at this level.
        let mut next = Vec::with_capacity(level.len() / 2 + 1);
        for pair in level.chunks(2) {
            match pair {
                [l, r] => next.push(inner_hash(&mut hasher, l, r)),
                [odd] => next.push(*odd),
                _ => unreachable!("chunks(2)"),
            }
        }
        pos /= 2;
        level = next;
    }
    InclusionProof { steps }
}

/// Verifies that `leaf` is included under `root` via `proof`.
pub fn verify_inclusion(leaf: &EpochLeaf, proof: &InclusionProof, root: &[u8; 32]) -> bool {
    let mut acc = leaf.hash();
    let mut hasher = Sha256::new();
    for step in &proof.steps {
        acc = if step.sibling_on_left {
            inner_hash(&mut hasher, &step.sibling, &acc)
        } else {
            inner_hash(&mut hasher, &acc, &step.sibling)
        };
    }
    acc == *root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<EpochLeaf> {
        (0..n)
            .map(|i| EpochLeaf {
                device: format!("gpu-{i}"),
                head: [i as u8; 32],
                seq: i as u64 * 3,
            })
            .collect()
    }

    #[test]
    fn every_leaf_proves_for_all_fleet_sizes() {
        for n in 1..=9 {
            let leaves = fleet(n);
            let root = epoch_root(&leaves);
            for i in 0..n {
                let proof = prove_inclusion(&leaves, i);
                assert!(
                    verify_inclusion(&leaves[i], &proof, &root),
                    "fleet {n}, leaf {i}"
                );
            }
        }
    }

    #[test]
    fn wrong_leaf_or_root_rejects() {
        let leaves = fleet(5);
        let root = epoch_root(&leaves);
        let proof = prove_inclusion(&leaves, 2);
        // Proof for leaf 2 must not validate leaf 3.
        assert!(!verify_inclusion(&leaves[3], &proof, &root));
        // Nor against a different fleet's root.
        let other_root = epoch_root(&fleet(4));
        assert!(!verify_inclusion(&leaves[2], &proof, &other_root));
        // A mutated head fails.
        let mut mutated = leaves[2].clone();
        mutated.head[0] ^= 1;
        assert!(!verify_inclusion(&mutated, &proof, &root));
    }

    #[test]
    fn leaf_and_inner_domains_are_separated() {
        // A two-leaf root's preimage reinterpreted as a leaf must not
        // produce the same hash (0x00 vs 0x01 prefix).
        let leaves = fleet(2);
        let root = epoch_root(&leaves);
        let single = EpochLeaf {
            device: "gpu-0".into(),
            head: leaves[0].head,
            seq: leaves[0].seq,
        };
        assert_ne!(root, single.hash());
    }

    #[test]
    fn empty_epoch_has_stable_root() {
        assert_eq!(epoch_root(&[]), epoch_root(&[]));
        assert_ne!(epoch_root(&[]), epoch_root(&fleet(1)));
    }

    #[test]
    fn proof_codec_round_trips() {
        let leaves = fleet(7);
        let proof = prove_inclusion(&leaves, 4);
        let mut bytes = Vec::new();
        proof.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        let decoded = InclusionProof::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, proof);

        let mut lb = Vec::new();
        leaves[4].encode(&mut lb);
        let mut r = Reader::new(&lb);
        assert_eq!(EpochLeaf::decode_from(&mut r).unwrap(), leaves[4]);
    }
}
