//! Verifiable per-device trust reports: everything a relying party
//! needs to judge one device — a sealed-epoch anchor, a Merkle
//! inclusion proof, the chain suffix since the seal, and a freshness
//! claim — verified standalone by [`verify_report`], with no access to
//! the service's event log.

use std::error::Error;
use std::fmt;

use sage_crypto::canon::{self, CanonError, Reader};
use sage_crypto::cmac::{cmac_aes128, cmac_verify};

use crate::chain::{decode_records, encode_records, verify_suffix};
use crate::freshness::{Freshness, FreshnessPolicy};
use crate::merkle::{verify_inclusion, EpochLeaf, InclusionProof};
use crate::record::{EvidenceRecord, StageVerdict};

/// Why a report (or an evidence suffix) failed verification. Each
/// tampering class maps to exactly one variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReportError {
    /// The report bytes do not decode canonically.
    Codec(CanonError),
    /// The report-level CMAC does not verify — the envelope (including
    /// the freshness claim) was modified or re-keyed.
    BadReportTag,
    /// The report's epoch root differs from the root the relying party
    /// trusts for that epoch.
    BadEpochRoot,
    /// The Merkle inclusion proof does not connect the device's leaf to
    /// the epoch root.
    BadProof,
    /// A suffix record is out of sequence (reordered, dropped, or
    /// duplicated records).
    BadSeq {
        /// The sequence number the chain required next.
        expected: u64,
        /// The sequence number the record carried.
        got: u64,
    },
    /// A record's AES-CMAC tag does not verify (modified or re-keyed
    /// record).
    BadTag {
        /// Sequence number of the offending record.
        seq: u64,
    },
    /// A record's `prev` does not match its predecessor's link hash (a
    /// forked or substituted history).
    BrokenLink {
        /// Sequence number of the offending record.
        seq: u64,
    },
    /// The freshness claim contradicts the evidence it rides with.
    InconsistentClaim,
    /// The claimed trust level is fresher than what the policy yields at
    /// the verifier's clock — a stale report replayed after decay.
    StaleEvidence {
        /// The level the report claims.
        claimed: Freshness,
        /// The level recomputed at the verifier's `now`.
        recomputed: Freshness,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Codec(e) => write!(f, "report does not decode: {e}"),
            ReportError::BadReportTag => write!(f, "report envelope MAC does not verify"),
            ReportError::BadEpochRoot => write!(f, "epoch root does not match the trusted root"),
            ReportError::BadProof => write!(f, "inclusion proof does not reach the epoch root"),
            ReportError::BadSeq { expected, got } => {
                write!(f, "record out of sequence: expected {expected}, got {got}")
            }
            ReportError::BadTag { seq } => write!(f, "record {seq}: MAC does not verify"),
            ReportError::BrokenLink { seq } => {
                write!(f, "record {seq}: hash link does not match its predecessor")
            }
            ReportError::InconsistentClaim => {
                write!(f, "freshness claim contradicts the carried evidence")
            }
            ReportError::StaleEvidence {
                claimed,
                recomputed,
            } => write!(
                f,
                "stale evidence: claims {} but recomputes to {}",
                claimed.as_str(),
                recomputed.as_str()
            ),
        }
    }
}

impl Error for ReportError {}

impl From<CanonError> for ReportError {
    fn from(e: CanonError) -> ReportError {
        ReportError::Codec(e)
    }
}

impl ReportError {
    /// Stable cause label (test assertions, telemetry).
    pub fn cause(&self) -> &'static str {
        match self {
            ReportError::Codec(_) => "codec",
            ReportError::BadReportTag => "bad_report_tag",
            ReportError::BadEpochRoot => "bad_epoch_root",
            ReportError::BadProof => "bad_proof",
            ReportError::BadSeq { .. } => "bad_seq",
            ReportError::BadTag { .. } => "bad_tag",
            ReportError::BrokenLink { .. } => "broken_link",
            ReportError::InconsistentClaim => "inconsistent_claim",
            ReportError::StaleEvidence { .. } => "stale_evidence",
        }
    }
}

/// The freshness statement a report makes: the policy, the anchor, the
/// time the statement was made, and the level it implies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FreshnessClaim {
    /// The decay policy in force.
    pub policy: FreshnessPolicy,
    /// Virtual time of the device's newest passing stage.
    pub last_pass_at: Option<u64>,
    /// Virtual time the claim was made.
    pub asserted_at: u64,
    /// The trust level at `asserted_at` under `policy`.
    pub level: Freshness,
}

impl FreshnessClaim {
    fn encode(&self, out: &mut Vec<u8>) {
        self.policy.encode(out);
        canon::put_u8(out, self.last_pass_at.is_some() as u8);
        canon::put_u64(out, self.last_pass_at.unwrap_or(0));
        canon::put_u64(out, self.asserted_at);
        canon::put_u8(out, self.level.tag());
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<FreshnessClaim, CanonError> {
        let policy = FreshnessPolicy::decode_from(r)?;
        let present = r.u8()?;
        if present > 1 {
            return Err(CanonError::BadTag {
                field: "last_pass presence",
                value: present,
            });
        }
        let raw = r.u64()?;
        Ok(FreshnessClaim {
            policy,
            last_pass_at: (present == 1).then_some(raw),
            asserted_at: r.u64()?,
            level: Freshness::from_tag(r.u8()?)?,
        })
    }
}

/// A self-contained trust report for one device.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeviceReport {
    /// Which fleet epoch anchors the report.
    pub epoch: u64,
    /// The device's leaf in that epoch (name, sealed head, sealed seq).
    pub leaf: EpochLeaf,
    /// The sealed epoch root.
    pub epoch_root: [u8; 32],
    /// Merkle proof connecting the leaf to the root.
    pub proof: InclusionProof,
    /// Chain records appended since the seal, oldest first.
    pub suffix: Vec<EvidenceRecord>,
    /// The freshness statement.
    pub claim: FreshnessClaim,
    /// Envelope AES-CMAC over everything above, under the device's
    /// evidence key — the claim and proof travel authenticated.
    pub tag: [u8; 16],
}

impl DeviceReport {
    /// The canonical bytes the envelope MAC covers.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        canon::put_u64(&mut out, self.epoch);
        self.leaf.encode(&mut out);
        canon::put_fixed(&mut out, &self.epoch_root);
        self.proof.encode(&mut out);
        out.extend_from_slice(&encode_records(&self.suffix));
        self.claim.encode(&mut out);
        out
    }

    /// Full canonical encoding (transport form).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.signed_bytes();
        canon::put_fixed(&mut out, &self.tag);
        out
    }

    /// Decodes a report (the input must be exactly one report).
    pub fn decode(bytes: &[u8]) -> Result<DeviceReport, CanonError> {
        let mut r = Reader::new(bytes);
        let report = DeviceReport::decode_from(&mut r)?;
        r.finish()?;
        Ok(report)
    }

    /// Decodes one report from a [`Reader`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<DeviceReport, CanonError> {
        Ok(DeviceReport {
            epoch: r.u64()?,
            leaf: EpochLeaf::decode_from(r)?,
            epoch_root: r.fixed::<32>()?,
            proof: InclusionProof::decode_from(r)?,
            suffix: decode_records(r)?,
            claim: FreshnessClaim::decode_from(r)?,
            tag: r.fixed::<16>()?,
        })
    }

    /// Builds and authenticates a report under the device's evidence key.
    #[allow(clippy::too_many_arguments)]
    pub fn seal(
        epoch: u64,
        leaf: EpochLeaf,
        epoch_root: [u8; 32],
        proof: InclusionProof,
        suffix: Vec<EvidenceRecord>,
        claim: FreshnessClaim,
        key: &[u8; 16],
    ) -> DeviceReport {
        let mut report = DeviceReport {
            epoch,
            leaf,
            epoch_root,
            proof,
            suffix,
            claim,
            tag: [0u8; 16],
        };
        report.tag = cmac_aes128(key, &report.signed_bytes());
        report
    }
}

/// Verifies a [`DeviceReport`] standalone and returns the device's
/// trust level at the relying party's clock `now`.
///
/// Inputs a relying party must hold out of band: the epoch root it
/// trusts for `report.epoch` (from the fleet ledger) and the device's
/// evidence key (over a confidential channel). Checks run in fixed
/// order so every tampering class maps to one exact [`ReportError`]:
///
/// 1. envelope MAC (`BadReportTag`),
/// 2. epoch root against the trusted root (`BadEpochRoot`),
/// 3. Merkle inclusion of the device's leaf (`BadProof`),
/// 4. suffix sequence / record MACs / hash links
///    (`BadSeq` / `BadTag` / `BrokenLink`),
/// 5. claim consistency with the carried evidence
///    (`InconsistentClaim`),
/// 6. freshness recomputation at `now` — a claim fresher than the
///    policy allows is a replayed stale report (`StaleEvidence`).
pub fn verify_report(
    report: &DeviceReport,
    trusted_root: &[u8; 32],
    key: &[u8; 16],
    now: u64,
) -> Result<Freshness, ReportError> {
    if !cmac_verify(key, &report.signed_bytes(), &report.tag) {
        return Err(ReportError::BadReportTag);
    }
    if &report.epoch_root != trusted_root {
        return Err(ReportError::BadEpochRoot);
    }
    if !verify_inclusion(&report.leaf, &report.proof, &report.epoch_root) {
        return Err(ReportError::BadProof);
    }
    verify_suffix(&report.suffix, report.leaf.head, report.leaf.seq, key)?;

    // The suffix is the newest part of the chain, so if it contains any
    // passing stage the claim's anchor must be exactly the newest one.
    let suffix_last_pass = report
        .suffix
        .iter()
        .rev()
        .find(|r| r.payload.verdict() == StageVerdict::Pass)
        .map(|r| r.at);
    if let Some(t) = suffix_last_pass {
        if report.claim.last_pass_at != Some(t) {
            return Err(ReportError::InconsistentClaim);
        }
    }
    if let Some(t) = report.claim.last_pass_at {
        if t > report.claim.asserted_at {
            return Err(ReportError::InconsistentClaim);
        }
    }
    // The claimed level must be what the policy yields at assertion time.
    if report.claim.level
        != report
            .claim
            .policy
            .level(report.claim.last_pass_at, report.claim.asserted_at)
    {
        return Err(ReportError::InconsistentClaim);
    }

    let recomputed = report.claim.policy.level(report.claim.last_pass_at, now);
    if report.claim.level < recomputed {
        return Err(ReportError::StaleEvidence {
            claimed: report.claim.level,
            recomputed,
        });
    }
    Ok(recomputed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::EvidenceChain;
    use crate::merkle::{epoch_root, prove_inclusion};
    use crate::record::EvidencePayload;

    const POLICY: FreshnessPolicy = FreshnessPolicy {
        stale_after: 100,
        degraded_after: 300,
    };

    /// Builds a two-device fleet, seals an epoch over their heads, then
    /// appends two post-seal records to gpu-a and reports on it.
    fn fixture() -> (DeviceReport, [u8; 32], [u8; 16]) {
        let mut a = EvidenceChain::new("gpu-a", &[0xA1; 16]);
        let mut b = EvidenceChain::new("gpu-b", &[0xB2; 16]);
        for i in 0..3 {
            a.append(
                10 * (i + 1),
                EvidencePayload::ChannelLiveness {
                    nonce: i,
                    verdict: StageVerdict::Pass,
                },
            );
            b.append(
                10 * (i + 1) + 5,
                EvidencePayload::ChannelLiveness {
                    nonce: i,
                    verdict: StageVerdict::Pass,
                },
            );
        }
        let leaves = vec![
            EpochLeaf {
                device: "gpu-a".into(),
                head: a.head(),
                seq: a.seq(),
            },
            EpochLeaf {
                device: "gpu-b".into(),
                head: b.head(),
                seq: b.seq(),
            },
        ];
        let root = epoch_root(&leaves);
        let proof = prove_inclusion(&leaves, 0);
        let leaf = leaves[0].clone();

        // Two more rounds after the seal.
        for i in 3..5 {
            a.append(
                10 * (i + 1),
                EvidencePayload::ChannelLiveness {
                    nonce: i,
                    verdict: StageVerdict::Pass,
                },
            );
        }
        let asserted_at = 60;
        let claim = FreshnessClaim {
            policy: POLICY,
            last_pass_at: a.last_pass_at(),
            asserted_at,
            level: POLICY.level(a.last_pass_at(), asserted_at),
        };
        let key = a.evidence_key();
        let report = DeviceReport::seal(1, leaf, root, proof, a.suffix(3), claim, &key);
        (report, root, key)
    }

    #[test]
    fn good_report_verifies_and_round_trips() {
        let (report, root, key) = fixture();
        assert_eq!(
            verify_report(&report, &root, &key, 80),
            Ok(Freshness::Trusted)
        );
        let decoded = DeviceReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(
            verify_report(&decoded, &root, &key, 80),
            Ok(Freshness::Trusted)
        );
    }

    #[test]
    fn each_tamper_maps_to_its_exact_cause() {
        let (report, root, key) = fixture();

        // Envelope tamper: bump the claimed level.
        let mut r = report.clone();
        r.claim.level = Freshness::Trusted;
        r.claim.asserted_at += 1;
        assert_eq!(
            verify_report(&r, &root, &key, 80),
            Err(ReportError::BadReportTag)
        );

        // Wrong trusted root.
        assert_eq!(
            verify_report(&report, &[0xFF; 32], &key, 80),
            Err(ReportError::BadEpochRoot)
        );

        // Wrong key (re-keyed envelope fails first).
        assert_eq!(
            verify_report(&report, &root, &[0xEE; 16], 80),
            Err(ReportError::BadReportTag)
        );

        // Forked suffix: re-seal the envelope (attacker with the key
        // still cannot fork without breaking a link).
        let mut r = report.clone();
        let rec = &r.suffix[0];
        r.suffix[0] = EvidenceRecord::seal(rec.seq, rec.at, rec.payload.clone(), [0xAB; 32], &key);
        let r = DeviceReport::seal(
            r.epoch,
            r.leaf,
            r.epoch_root,
            r.proof,
            r.suffix,
            r.claim,
            &key,
        );
        assert_eq!(
            verify_report(&r, &root, &key, 80),
            Err(ReportError::BrokenLink { seq: 4 })
        );
    }

    #[test]
    fn replayed_stale_report_is_rejected() {
        let (report, root, key) = fixture();
        // Fresh: fine. Replayed after the trusted window: exact cause.
        assert_eq!(
            verify_report(&report, &root, &key, 80),
            Ok(Freshness::Trusted)
        );
        assert_eq!(
            verify_report(&report, &root, &key, 50 + 150),
            Err(ReportError::StaleEvidence {
                claimed: Freshness::Trusted,
                recomputed: Freshness::Stale,
            })
        );
        assert_eq!(
            verify_report(&report, &root, &key, 50 + 400),
            Err(ReportError::StaleEvidence {
                claimed: Freshness::Trusted,
                recomputed: Freshness::Degraded,
            })
        );
    }

    #[test]
    fn claim_must_match_carried_evidence() {
        let (report, root, key) = fixture();
        // A claim anchored later than the newest evidenced pass is
        // inconsistent even when correctly MAC'd.
        let mut r = report.clone();
        r.claim.last_pass_at = Some(59);
        r.claim.level = POLICY.level(r.claim.last_pass_at, r.claim.asserted_at);
        let r = DeviceReport::seal(
            r.epoch,
            r.leaf,
            r.epoch_root,
            r.proof,
            r.suffix,
            r.claim,
            &key,
        );
        assert_eq!(
            verify_report(&r, &root, &key, 80),
            Err(ReportError::InconsistentClaim)
        );
    }
}
