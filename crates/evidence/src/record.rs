//! One link of a device's evidence chain: a canonically-encoded,
//! hash-linked, CMAC-authenticated record of one attestation stage.

use sage_crypto::canon::{self, CanonError, Reader};
use sage_crypto::cmac::{cmac_aes128, cmac_verify};
use sage_crypto::Sha256;

/// Evidence format version (bumped on any canonical-encoding change —
/// the version byte is itself covered by the hash and the MAC).
pub const EVIDENCE_VERSION: u8 = 1;

/// How a judged attestation stage came out. Mirrors the verifier's
/// verdict taxonomy (`sage::SageError`) plus the service's timeout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageVerdict {
    /// The stage passed both the value and the timing checks.
    Pass,
    /// The computed value (checksum / kernel hash) was wrong.
    WrongValue,
    /// The measured exchange time exceeded the calibrated threshold.
    TooSlow,
    /// No response arrived before the deadline.
    Timeout,
}

impl StageVerdict {
    /// Stable string tag (JSON exports, telemetry labels).
    pub fn as_str(&self) -> &'static str {
        match self {
            StageVerdict::Pass => "pass",
            StageVerdict::WrongValue => "wrong_value",
            StageVerdict::TooSlow => "too_slow",
            StageVerdict::Timeout => "timeout",
        }
    }

    fn tag(self) -> u8 {
        match self {
            StageVerdict::Pass => 0,
            StageVerdict::WrongValue => 1,
            StageVerdict::TooSlow => 2,
            StageVerdict::Timeout => 3,
        }
    }

    fn from_tag(value: u8) -> Result<StageVerdict, CanonError> {
        Ok(match value {
            0 => StageVerdict::Pass,
            1 => StageVerdict::WrongValue,
            2 => StageVerdict::TooSlow,
            3 => StageVerdict::Timeout,
            value => {
                return Err(CanonError::BadTag {
                    field: "stage verdict",
                    value,
                })
            }
        })
    }
}

/// Which verification path produced a checksum verdict: the classic
/// online-replay path or the precomputed bank-hit fast path. Carried in
/// the evidence so an auditor can see which machinery judged each round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvidencePath {
    /// Online replay inside the verdict ([`check_response`]-style).
    Classic,
    /// Precomputed expected checksum (bank hit).
    Precomputed,
}

impl EvidencePath {
    /// Stable string tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            EvidencePath::Classic => "classic",
            EvidencePath::Precomputed => "precomputed",
        }
    }

    fn tag(self) -> u8 {
        match self {
            EvidencePath::Classic => 0,
            EvidencePath::Precomputed => 1,
        }
    }

    fn from_tag(value: u8) -> Result<EvidencePath, CanonError> {
        Ok(match value {
            0 => EvidencePath::Classic,
            1 => EvidencePath::Precomputed,
            value => {
                return Err(CanonError::BadTag {
                    field: "evidence path",
                    value,
                })
            }
        })
    }
}

/// What one evidence record attests — one stage of the continuous
/// attestation pipeline (root-of-trust round → SAKE key confirmation →
/// kernel-hash check → channel liveness).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvidencePayload {
    /// SAKE key establishment completed and the session key was
    /// confirmed (the chain's MAC key is derived from that key, so every
    /// later record implicitly re-confirms it).
    SakeConfirmed {
        /// Public fingerprint of the established session key
        /// (`SHA-256("sage-key-fp:" ‖ key)[..8]`) — identifies the key
        /// epoch without revealing the key.
        key_fingerprint: [u8; 8],
        /// Measured checksum exchange time of the establishment round.
        measured_cycles: u64,
        /// The calibrated threshold it was judged against.
        threshold_cycles: u64,
    },
    /// One challenge–response checksum round (the paper's repeated
    /// Fig. 3 step 4), with the timing budget it was judged under.
    ChecksumRound {
        /// Service round number.
        round: u64,
        /// Measured exchange time in cycles (0 for a timeout).
        measured_cycles: u64,
        /// The calibrated threshold.
        threshold_cycles: u64,
        /// How the round was judged.
        verdict: StageVerdict,
        /// Which verification path judged it.
        path: EvidencePath,
    },
    /// A user-kernel authenticity check (`H(r ‖ code)`, paper Eq. 9).
    KernelHash {
        /// The verified kernel measurement.
        hash: [u8; 32],
        /// Whether the device's measurement matched.
        verdict: StageVerdict,
    },
    /// A secure-channel liveness probe (MAC'd echo over the SAKE-keyed
    /// channel).
    ChannelLiveness {
        /// Probe nonce.
        nonce: u64,
        /// Whether the authenticated echo came back intact.
        verdict: StageVerdict,
    },
    /// A dissenting quorum vote: one verifier replica voted against the
    /// quorum outcome for a round (or its vote failed MAC verification).
    /// Honest, unanimous quorums append *nothing* — dissent is the only
    /// quorum fact worth making durable, and keeping the happy path
    /// silent is what keeps multi-verifier evidence heads byte-identical
    /// to the single-verifier baseline.
    QuorumVote {
        /// Service round number the vote judged.
        round: u64,
        /// Index of the dissenting verifier replica.
        verifier: u16,
        /// What the dissenter voted.
        vote: StageVerdict,
        /// The quorum's winning verdict for the round.
        outcome: StageVerdict,
        /// Accepting votes in the tally.
        votes_accept: u16,
        /// Rejecting votes in the tally.
        votes_reject: u16,
    },
}

impl EvidencePayload {
    /// Stable stage name (telemetry labels, JSON).
    pub fn stage(&self) -> &'static str {
        match self {
            EvidencePayload::SakeConfirmed { .. } => "sake",
            EvidencePayload::ChecksumRound { .. } => "checksum",
            EvidencePayload::KernelHash { .. } => "kernel_hash",
            EvidencePayload::ChannelLiveness { .. } => "liveness",
            EvidencePayload::QuorumVote { .. } => "quorum",
        }
    }

    /// The stage's verdict (SAKE confirmation records only exist for
    /// successful establishments, so they are always `Pass`; a quorum
    /// dissent record carries the quorum *outcome*, never the dissenting
    /// vote — a lying verifier's false accept must not read as a pass).
    pub fn verdict(&self) -> StageVerdict {
        match self {
            EvidencePayload::SakeConfirmed { .. } => StageVerdict::Pass,
            EvidencePayload::ChecksumRound { verdict, .. }
            | EvidencePayload::KernelHash { verdict, .. }
            | EvidencePayload::ChannelLiveness { verdict, .. } => *verdict,
            EvidencePayload::QuorumVote { outcome, .. } => *outcome,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            EvidencePayload::SakeConfirmed {
                key_fingerprint,
                measured_cycles,
                threshold_cycles,
            } => {
                canon::put_u8(out, 0);
                canon::put_fixed(out, key_fingerprint);
                canon::put_u64(out, *measured_cycles);
                canon::put_u64(out, *threshold_cycles);
            }
            EvidencePayload::ChecksumRound {
                round,
                measured_cycles,
                threshold_cycles,
                verdict,
                path,
            } => {
                canon::put_u8(out, 1);
                canon::put_u64(out, *round);
                canon::put_u64(out, *measured_cycles);
                canon::put_u64(out, *threshold_cycles);
                canon::put_u8(out, verdict.tag());
                canon::put_u8(out, path.tag());
            }
            EvidencePayload::KernelHash { hash, verdict } => {
                canon::put_u8(out, 2);
                canon::put_fixed(out, hash);
                canon::put_u8(out, verdict.tag());
            }
            EvidencePayload::ChannelLiveness { nonce, verdict } => {
                canon::put_u8(out, 3);
                canon::put_u64(out, *nonce);
                canon::put_u8(out, verdict.tag());
            }
            EvidencePayload::QuorumVote {
                round,
                verifier,
                vote,
                outcome,
                votes_accept,
                votes_reject,
            } => {
                canon::put_u8(out, 4);
                canon::put_u64(out, *round);
                canon::put_u16(out, *verifier);
                canon::put_u8(out, vote.tag());
                canon::put_u8(out, outcome.tag());
                canon::put_u16(out, *votes_accept);
                canon::put_u16(out, *votes_reject);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<EvidencePayload, CanonError> {
        Ok(match r.u8()? {
            0 => EvidencePayload::SakeConfirmed {
                key_fingerprint: r.fixed::<8>()?,
                measured_cycles: r.u64()?,
                threshold_cycles: r.u64()?,
            },
            1 => EvidencePayload::ChecksumRound {
                round: r.u64()?,
                measured_cycles: r.u64()?,
                threshold_cycles: r.u64()?,
                verdict: StageVerdict::from_tag(r.u8()?)?,
                path: EvidencePath::from_tag(r.u8()?)?,
            },
            2 => EvidencePayload::KernelHash {
                hash: r.fixed::<32>()?,
                verdict: StageVerdict::from_tag(r.u8()?)?,
            },
            3 => EvidencePayload::ChannelLiveness {
                nonce: r.u64()?,
                verdict: StageVerdict::from_tag(r.u8()?)?,
            },
            4 => EvidencePayload::QuorumVote {
                round: r.u64()?,
                verifier: r.u16()?,
                vote: StageVerdict::from_tag(r.u8()?)?,
                outcome: StageVerdict::from_tag(r.u8()?)?,
                votes_accept: r.u16()?,
                votes_reject: r.u16()?,
            },
            value => {
                return Err(CanonError::BadTag {
                    field: "evidence payload",
                    value,
                })
            }
        })
    }
}

/// One hash-chained, MAC-authenticated evidence record.
///
/// The canonical encoding (version, sequence, time, payload, previous
/// head) is what the AES-CMAC tag covers; the record's *link hash* — the
/// value the next record's `prev` commits to and the Merkle epoch seals —
/// is the SHA-256 of the canonical bytes *including* the tag, so a
/// forged tag breaks the chain even before MAC verification runs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvidenceRecord {
    /// Position in the device's chain (the genesis record has `seq` 1).
    pub seq: u64,
    /// Virtual time the stage concluded at.
    pub at: u64,
    /// What the record attests.
    pub payload: EvidencePayload,
    /// Link hash of the previous record (the chain's genesis head for
    /// `seq` 1).
    pub prev: [u8; 32],
    /// AES-CMAC over the canonical bytes, keyed from the device's SAKE
    /// session key (see [`crate::chain::derive_evidence_key`]).
    pub tag: [u8; 16],
}

impl EvidenceRecord {
    /// The canonical bytes the MAC covers (everything but the tag).
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        canon::put_u8(&mut out, EVIDENCE_VERSION);
        canon::put_u64(&mut out, self.seq);
        canon::put_u64(&mut out, self.at);
        self.payload.encode(&mut out);
        canon::put_fixed(&mut out, &self.prev);
        out
    }

    /// The full canonical encoding (signed bytes plus the tag) — the
    /// transport form, and the preimage of [`EvidenceRecord::link_hash`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.signed_bytes();
        canon::put_fixed(&mut out, &self.tag);
        out
    }

    /// Decodes one record from a [`Reader`] (composable into streams).
    pub fn decode_from(r: &mut Reader<'_>) -> Result<EvidenceRecord, CanonError> {
        let version = r.u8()?;
        if version != EVIDENCE_VERSION {
            return Err(CanonError::BadTag {
                field: "evidence version",
                value: version,
            });
        }
        Ok(EvidenceRecord {
            seq: r.u64()?,
            at: r.u64()?,
            payload: EvidencePayload::decode(r)?,
            prev: r.fixed::<32>()?,
            tag: r.fixed::<16>()?,
        })
    }

    /// Decodes a standalone record (the input must be exactly one
    /// canonical record).
    pub fn decode(bytes: &[u8]) -> Result<EvidenceRecord, CanonError> {
        let mut r = Reader::new(bytes);
        let rec = EvidenceRecord::decode_from(&mut r)?;
        r.finish()?;
        Ok(rec)
    }

    /// Builds and authenticates a record under `key`.
    pub fn seal(
        seq: u64,
        at: u64,
        payload: EvidencePayload,
        prev: [u8; 32],
        key: &[u8; 16],
    ) -> EvidenceRecord {
        let mut rec = EvidenceRecord {
            seq,
            at,
            payload,
            prev,
            tag: [0u8; 16],
        };
        rec.tag = cmac_aes128(key, &rec.signed_bytes());
        rec
    }

    /// Verifies the CMAC tag under `key` (constant-time compare).
    pub fn verify_tag(&self, key: &[u8; 16]) -> bool {
        cmac_verify(key, &self.signed_bytes(), &self.tag)
    }

    /// The record's link hash: SHA-256 of the full canonical encoding.
    /// Computed with the streaming hasher so the encoding is absorbed
    /// without an intermediate concatenation buffer.
    pub fn link_hash(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.encode());
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payloads() -> Vec<EvidencePayload> {
        vec![
            EvidencePayload::SakeConfirmed {
                key_fingerprint: [1, 2, 3, 4, 5, 6, 7, 8],
                measured_cycles: 1234,
                threshold_cycles: 2000,
            },
            EvidencePayload::ChecksumRound {
                round: 7,
                measured_cycles: 999,
                threshold_cycles: 1500,
                verdict: StageVerdict::Pass,
                path: EvidencePath::Precomputed,
            },
            EvidencePayload::KernelHash {
                hash: [9u8; 32],
                verdict: StageVerdict::WrongValue,
            },
            EvidencePayload::ChannelLiveness {
                nonce: 42,
                verdict: StageVerdict::Timeout,
            },
            EvidencePayload::QuorumVote {
                round: 11,
                verifier: 2,
                vote: StageVerdict::Pass,
                outcome: StageVerdict::WrongValue,
                votes_accept: 1,
                votes_reject: 4,
            },
        ]
    }

    #[test]
    fn every_payload_kind_round_trips() {
        let key = [7u8; 16];
        for (i, payload) in sample_payloads().into_iter().enumerate() {
            let rec =
                EvidenceRecord::seal(i as u64 + 1, 100 + i as u64, payload, [i as u8; 32], &key);
            let decoded = EvidenceRecord::decode(&rec.encode()).unwrap();
            assert_eq!(decoded, rec);
            assert!(decoded.verify_tag(&key));
        }
    }

    #[test]
    fn tag_covers_every_signed_byte() {
        let key = [7u8; 16];
        let rec = EvidenceRecord::seal(
            1,
            50,
            EvidencePayload::ChannelLiveness {
                nonce: 1,
                verdict: StageVerdict::Pass,
            },
            [0u8; 32],
            &key,
        );
        let bytes = rec.encode();
        // Flip each signed byte in turn: the decoded record must fail
        // tag verification (the tag bytes themselves are the last 16).
        for i in 0..bytes.len() - 16 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1;
            // Structural damage (a decode error) is fine too.
            if let Ok(m) = EvidenceRecord::decode(&mutated) {
                assert!(!m.verify_tag(&key), "byte {i} not covered by the tag");
            }
        }
        assert!(!rec.verify_tag(&[8u8; 16]), "wrong key must fail");
    }

    #[test]
    fn link_hash_changes_with_the_tag() {
        let key_a = [1u8; 16];
        let key_b = [2u8; 16];
        let payload = EvidencePayload::ChannelLiveness {
            nonce: 5,
            verdict: StageVerdict::Pass,
        };
        let a = EvidenceRecord::seal(1, 10, payload.clone(), [0u8; 32], &key_a);
        let b = EvidenceRecord::seal(1, 10, payload, [0u8; 32], &key_b);
        assert_ne!(a.link_hash(), b.link_hash(), "tag must be in the link hash");
    }
}
