//! Freshness-driven trust decay: a device's trust level is a function
//! of how long ago it last passed an attestation stage, under a
//! configurable policy.

use sage_crypto::canon::{self, CanonError, Reader};

/// A device's trust level under a freshness policy. Ordered: later
/// variants are *less* trusted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Freshness {
    /// Attested within the policy's trusted window.
    Trusted,
    /// Past the trusted window but not yet degraded — schedule
    /// re-attestation.
    Stale,
    /// Past the degraded window — treat as unattested until it passes
    /// again.
    Degraded,
}

impl Freshness {
    /// Stable string tag (telemetry labels, JSON, event log).
    pub fn as_str(&self) -> &'static str {
        match self {
            Freshness::Trusted => "trusted",
            Freshness::Stale => "stale",
            Freshness::Degraded => "degraded",
        }
    }

    /// Canonical tag byte.
    pub fn tag(self) -> u8 {
        match self {
            Freshness::Trusted => 0,
            Freshness::Stale => 1,
            Freshness::Degraded => 2,
        }
    }

    /// Decodes a tag byte.
    pub fn from_tag(value: u8) -> Result<Freshness, CanonError> {
        Ok(match value {
            0 => Freshness::Trusted,
            1 => Freshness::Stale,
            2 => Freshness::Degraded,
            value => {
                return Err(CanonError::BadTag {
                    field: "freshness",
                    value,
                })
            }
        })
    }
}

/// How fast trust decays without re-attestation, in virtual-clock units.
///
/// The default ([`FreshnessPolicy::disabled`]) never decays, so fleets
/// that predate the evidence layer keep their exact behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FreshnessPolicy {
    /// A device becomes [`Freshness::Stale`] once `now - last_pass`
    /// reaches this many units (0 disables decay entirely).
    pub stale_after: u64,
    /// …and [`Freshness::Degraded`] once it reaches this many. Must be
    /// ≥ `stale_after`; 0 disables the degraded transition.
    pub degraded_after: u64,
}

impl Default for FreshnessPolicy {
    fn default() -> FreshnessPolicy {
        FreshnessPolicy::disabled()
    }
}

impl FreshnessPolicy {
    /// A policy that never decays (the compatibility default).
    pub fn disabled() -> FreshnessPolicy {
        FreshnessPolicy {
            stale_after: 0,
            degraded_after: 0,
        }
    }

    /// Whether any decay is configured.
    pub fn is_enabled(&self) -> bool {
        self.stale_after != 0 || self.degraded_after != 0
    }

    /// The trust level at virtual time `now` for a device whose last
    /// passing stage concluded at `last_pass` (`None` = never attested,
    /// which is `Degraded` under an enabled policy).
    pub fn level(&self, last_pass: Option<u64>, now: u64) -> Freshness {
        if !self.is_enabled() {
            return Freshness::Trusted;
        }
        let last = match last_pass {
            Some(t) => t,
            None => return Freshness::Degraded,
        };
        let age = now.saturating_sub(last);
        if self.degraded_after != 0 && age >= self.degraded_after {
            Freshness::Degraded
        } else if self.stale_after != 0 && age >= self.stale_after {
            Freshness::Stale
        } else {
            Freshness::Trusted
        }
    }

    /// The earliest virtual time strictly after `now` at which the level
    /// could change without a new passing stage — the service's decay
    /// timer. `None` when no further decay is possible.
    pub fn next_transition_at(&self, last_pass: Option<u64>, now: u64) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        let last = last_pass?;
        let mut next = None;
        for bound in [self.stale_after, self.degraded_after] {
            if bound == 0 {
                continue;
            }
            let at = last.saturating_add(bound);
            if at > now {
                next = Some(next.map_or(at, |n: u64| n.min(at)));
            }
        }
        next
    }

    /// Canonical encoding (carried inside a report's freshness claim).
    pub fn encode(&self, out: &mut Vec<u8>) {
        canon::put_u64(out, self.stale_after);
        canon::put_u64(out, self.degraded_after);
    }

    /// Decodes a policy from a [`Reader`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<FreshnessPolicy, CanonError> {
        Ok(FreshnessPolicy {
            stale_after: r.u64()?,
            degraded_after: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: FreshnessPolicy = FreshnessPolicy {
        stale_after: 100,
        degraded_after: 250,
    };

    #[test]
    fn decay_walks_the_ladder() {
        assert_eq!(POLICY.level(Some(1000), 1000), Freshness::Trusted);
        assert_eq!(POLICY.level(Some(1000), 1099), Freshness::Trusted);
        assert_eq!(POLICY.level(Some(1000), 1100), Freshness::Stale);
        assert_eq!(POLICY.level(Some(1000), 1249), Freshness::Stale);
        assert_eq!(POLICY.level(Some(1000), 1250), Freshness::Degraded);
        assert_eq!(POLICY.level(None, 0), Freshness::Degraded);
    }

    #[test]
    fn reattestation_reverses_decay() {
        assert_eq!(POLICY.level(Some(1000), 1300), Freshness::Degraded);
        // A new passing stage at t=1300 resets the anchor.
        assert_eq!(POLICY.level(Some(1300), 1300), Freshness::Trusted);
    }

    #[test]
    fn disabled_policy_never_decays() {
        let p = FreshnessPolicy::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.level(None, u64::MAX), Freshness::Trusted);
        assert_eq!(p.next_transition_at(Some(0), 0), None);
    }

    #[test]
    fn next_transition_tracks_the_nearest_boundary() {
        assert_eq!(POLICY.next_transition_at(Some(1000), 1000), Some(1100));
        assert_eq!(POLICY.next_transition_at(Some(1000), 1100), Some(1250));
        assert_eq!(POLICY.next_transition_at(Some(1000), 1250), None);
        // Never-attested devices are already fully decayed: no timer.
        assert_eq!(POLICY.next_transition_at(None, 0), None);
    }

    #[test]
    fn ordering_reflects_trust() {
        assert!(Freshness::Trusted < Freshness::Stale);
        assert!(Freshness::Stale < Freshness::Degraded);
    }
}
