#!/usr/bin/env bash
# CI gate: formatting, lints, tier-1 verify, simulator-perf smoke.
#
# Everything here runs offline (the workspace is dependency-free by
# design — see DESIGN.md §4.5) and must pass before merge.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy -q --release --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> service fleet integration (fault injection across seeds)"
cargo test -q --test service_fleet

echo "==> telemetry core (counters, histograms, spans, exporters)"
cargo test -q -p sage-telemetry

echo "==> attack matrix (7 attacks x classic + precomputed verdict paths)"
cargo test -q --test attack_matrix

echo "==> evidence crate (chain, merkle, reports, codec fuzz)"
cargo test -q -p sage-evidence

echo "==> crash recovery incl. mid-epoch evidence preservation"
cargo test -q --test service_recovery

echo "==> sharded determinism matrix ({shards 1,4,16} x {workers 0,2,8})"
cargo test -q --release --test service_sharded

# The parallel-mode speedup needs real cores to show up; on a 1-2 core
# runner the run still asserts bit-exactness but the ratio gate is moot.
CORES="$(nproc 2>/dev/null || echo 1)"
if [ "$CORES" -ge 4 ]; then MIN_SPEEDUP=3; else MIN_SPEEDUP=1; fi
echo "==> simperf smoke (1 iteration, 1 repeat, >=${MIN_SPEEDUP}x parallel-mode gate on ${CORES} cores)"
cargo run -q --release -p sage-bench --bin simperf -- \
    --iterations 1 --repeats 1 --min-speedup "$MIN_SPEEDUP" \
    --out /tmp/BENCH_sim_smoke.json

echo "==> svcperf smoke (fixed seed, snapshot asserted non-empty)"
cargo run -q --release -p sage-bench --bin svcperf -- \
    --devices 2 --rounds 2 --seed 7 --out /tmp/BENCH_svc_smoke.json
test -s /tmp/BENCH_svc_smoke.json

echo "==> fleetperf gate (10k modeled devices, core-scaled rounds/sec floor)"
cargo run -q --release -p sage-bench --bin fleetperf -- \
    --devices 10000 --rounds 3 --seed 7 --gate \
    --out /tmp/BENCH_fleet_smoke.json
test -s /tmp/BENCH_fleet_smoke.json

echo "==> modpow suite (Montgomery vs reference oracle, seeded)"
cargo test -q --release -p sage-crypto montgomery

echo "==> fastpath smoke (fixed seed, round/modpow/refill speedup gates active)"
cargo run -q --release -p sage-bench --bin fastpath -- \
    --rounds 4 --iterations 12 --calib-runs 20 --seed 7 \
    --out /tmp/BENCH_fastpath_smoke.json
test -s /tmp/BENCH_fastpath_smoke.json

echo "==> telemetry overhead smoke (bank-hit fast path, <=1.10x gate)"
cargo run -q --release -p sage-bench --bin telemperf -- \
    --rounds 64 --reps 7 --seed 7 --max-ratio 1.10 \
    --out /tmp/BENCH_telemetry_smoke.json
test -s /tmp/BENCH_telemetry_smoke.json

echo "==> evperf smoke (append/seal/prove/verify, every report must verify)"
cargo run -q --release -p sage-bench --bin evperf -- \
    --devices 8 --records 32 --iters 20 --seed 7 \
    --out /tmp/BENCH_evidence_smoke.json
test -s /tmp/BENCH_evidence_smoke.json

echo "==> transport loopback + chaos (UDS framing, sever/resume, byte-identical chains)"
cargo test -q --release --test transport_loopback --test transport_chaos

echo "==> netperf gate (severing regime: core-scaled sessions/sec floor, >=99% resume rate, zero false accepts)"
cargo run -q --release -p sage-bench --bin netperf -- \
    --devices 7 --rounds 5 --seed 7 --regime severing --gate \
    --out /tmp/BENCH_net_smoke.json
test -s /tmp/BENCH_net_smoke.json
grep -q '"false_accepts": 0,' /tmp/BENCH_net_smoke.json

echo "==> quorumperf gate (honest-unanimous byte identity, >=3x sampling speedup at 25% coverage, zero false accepts)"
cargo run -q --release -p sage-bench --bin quorumperf -- \
    --devices 12 --horizon 600000 --reps 3 --seed 7 --gate \
    --out /tmp/BENCH_quorum_smoke.json
test -s /tmp/BENCH_quorum_smoke.json
grep -q '"false_accepts": 0,' /tmp/BENCH_quorum_smoke.json

echo "==> chaos soak smoke (3 seeds, crash+restore, zero-false-accept gate)"
cargo run -q --release -p sage-bench --bin soak -- \
    --seeds 5,6,7 --ticks 400000 --devices 2 \
    --out /tmp/BENCH_soak_smoke.json
test -s /tmp/BENCH_soak_smoke.json

echo "ci.sh: all gates passed"
