//! Quorum and sampling conformance: the determinism contract and the
//! detection-probability model.
//!
//! Two guarantees from PR-10 are pinned here:
//!
//! 1. **Honest-unanimous silence.** An all-honest verifier quorum
//!    appends nothing — no dispute events, no vote evidence — so for
//!    any `(verifiers, shards, workers)` geometry the fleet's evidence
//!    chain heads and event history are byte-identical to the
//!    single-verifier baseline. Replication is a trust knob, not a
//!    behavior knob.
//!
//! 2. **The closed-form detection model.** The seeded spot-check plan
//!    covers each device independently per epoch with probability `c`,
//!    so a persistent cheater is caught within `k` epochs with
//!    probability `1 − (1 − c)^k`. The empirical rate over hundreds of
//!    seeded epochs must match [`detect_probability_per_mille`] inside
//!    a fixed tolerance band — deterministic seeds, so the band never
//!    flakes.

use sage_repro::core::{agent::DeviceAgent, multi::FleetMember, GpuSession};
use sage_repro::crypto::{DhGroup, EntropySource};
use sage_repro::evidence::FreshnessPolicy;
use sage_repro::gpu::{Device, DeviceConfig};
use sage_repro::service::{
    covers, detect_probability_per_mille, epochs_to_detect, AttestationService, LinkProfile,
    QuorumConfig, SamplingConfig, ServiceConfig, SimNet, SpotCheckPlan,
};
use sage_repro::sgx::{Enclave, SgxPlatform};
use sage_repro::vf::VfParams;

const DEVICES: usize = 8;
const HORIZON: u64 = 120_000;

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(index: usize, seed: u64) -> FleetMember {
    let session = GpuSession::install_modeled(
        Device::new(DeviceConfig::sim_nano()),
        &VfParams::fleet_tiny(),
        0xF1EE7,
        10_000,
    )
    .expect("install modeled VF");
    let agent_seed = (seed as u8).wrapping_add(index as u8).wrapping_mul(3) | 1;
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(agent_seed))));
    m.name = format!("gpu-{index:02}");
    m
}

fn enclave(index: usize, seed: u64) -> Enclave {
    let enclave_seed = (seed as u8).wrapping_add(index as u8).wrapping_mul(5) | 1;
    SgxPlatform::new([7u8; 16]).launch(b"quorum-verifier", &mut entropy(enclave_seed))
}

fn config(
    verifiers: u16,
    shards: usize,
    workers: usize,
    sampling: SamplingConfig,
) -> ServiceConfig {
    ServiceConfig {
        reattest_interval: 10_000,
        epoch_interval: 30_000,
        freshness: FreshnessPolicy {
            stale_after: 25_000,
            degraded_after: 50_000,
        },
        shards,
        workers,
        quorum: QuorumConfig {
            verifiers,
            seed: 0x51D,
        },
        sampling,
        ..ServiceConfig::default()
    }
}

fn build_fleet(cfg: ServiceConfig, seed: u64) -> AttestationService<SimNet> {
    let net = SimNet::new(
        seed,
        LinkProfile {
            latency: 100,
            jitter: 25,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);
    for i in 0..DEVICES {
        svc.join(member(i, seed), enclave(i, seed));
    }
    svc
}

/// The comparable core of one fleet run: per-device evidence heads and
/// the full event history.
struct History {
    heads: Vec<(String, [u8; 32], u64)>,
    events_json: String,
    snapshot: Vec<u8>,
}

fn run_history(cfg: ServiceConfig, seed: u64) -> History {
    let mut svc = build_fleet(cfg, seed);
    svc.run_until(HORIZON);
    let mut heads = Vec::new();
    for s in svc.statuses() {
        let chain = svc.evidence_of(&s.name).expect("evidence chain");
        heads.push((s.name.clone(), chain.head(), chain.records().len() as u64));
    }
    History {
        heads,
        events_json: svc.log().to_json(),
        snapshot: svc.snapshot(),
    }
}

/// The tentpole determinism contract: any `(verifiers, shards, workers)`
/// geometry yields byte-identical evidence heads and event history vs
/// the single-verifier baseline when the quorum is honest and unanimous.
/// (Snapshot bytes are compared across *geometry* at fixed N — the
/// snapshot necessarily encodes the replica set itself, so it is the
/// one artifact allowed to differ across N.)
#[test]
fn honest_unanimous_quorum_replays_the_single_verifier_history() {
    for seed in [1u64, 2] {
        let base = run_history(config(1, 1, 0, SamplingConfig::default()), seed);
        assert!(!base.heads.is_empty(), "baseline produced no chains");
        for verifiers in [3u16, 5, 7] {
            let mut per_n: Option<History> = None;
            for (shards, workers) in [(1usize, 0usize), (4, 2), (16, 8)] {
                let got = run_history(
                    config(verifiers, shards, workers, SamplingConfig::default()),
                    seed,
                );
                let label = format!(
                    "seed {seed}, verifiers {verifiers}, shards {shards}, workers {workers}"
                );
                assert_eq!(base.heads, got.heads, "{label}: evidence heads diverged");
                assert_eq!(
                    base.events_json, got.events_json,
                    "{label}: event history diverged"
                );
                match &per_n {
                    None => per_n = Some(got),
                    Some(first) => assert_eq!(
                        first.snapshot, got.snapshot,
                        "{label}: snapshot bytes diverged across geometry"
                    ),
                }
            }
        }
    }
}

/// Sampling is a pure function of `(seed, epoch, device)`, so an active
/// sampler is just as geometry-independent: every shard/worker cell
/// (and every honest quorum size) replays the sampled baseline exactly,
/// skips included.
#[test]
fn sampled_fleet_history_is_geometry_independent() {
    let sampling = SamplingConfig {
        coverage_per_mille: 500,
        seed: 0xC0FFEE,
    };
    for seed in [1u64, 2] {
        let base = run_history(config(1, 1, 0, sampling), seed);
        assert!(
            base.events_json.contains("spotcheck_skipped"),
            "the sampled baseline must actually skip epochs"
        );
        for (verifiers, shards, workers) in
            [(1u16, 4usize, 2usize), (1, 16, 8), (3, 4, 2), (5, 16, 8)]
        {
            let got = run_history(config(verifiers, shards, workers, sampling), seed);
            let label =
                format!("seed {seed}, verifiers {verifiers}, shards {shards}, workers {workers}");
            assert_eq!(base.heads, got.heads, "{label}: evidence heads diverged");
            assert_eq!(
                base.events_json, got.events_json,
                "{label}: event history diverged"
            );
        }
    }
}

/// The per-epoch materialized plan agrees with the pure coverage rule
/// (the plan is just the rule, evaluated over the roster).
#[test]
fn spot_check_plan_matches_the_pure_rule() {
    let cfg = SamplingConfig {
        coverage_per_mille: 250,
        seed: 0x5A37,
    };
    let fleet: Vec<String> = (0..32).map(|i| format!("gpu-{i:02}")).collect();
    let names: Vec<&str> = fleet.iter().map(String::as_str).collect();
    for epoch in 0..50u64 {
        let plan = SpotCheckPlan::for_epoch(&cfg, epoch, &names);
        assert_eq!(plan.epoch, epoch);
        assert_eq!(plan.coverage_per_mille, 250);
        for n in &names {
            assert_eq!(
                plan.covers(n),
                covers(&cfg, epoch, n),
                "epoch {epoch}, {n}: plan and rule disagree"
            );
        }
    }
}

/// The statistical pin for the detection model. Over 250 seeded epochs
/// and 400 devices (100k+ samples per point), the empirical rate of
/// "a persistent cheater is covered at least once within k epochs"
/// must sit within ±25‰ of `1 − (1 − c)^k`, and the per-epoch coverage
/// fraction within ±25‰ of `c` — at 10%, 25% and 50% coverage. Every
/// input is a fixed seed, so the band cannot flake.
#[test]
fn empirical_detection_rate_matches_the_closed_form_model() {
    const EPOCHS: u64 = 250;
    const FLEET: usize = 400;
    const TOL_PER_MILLE: i64 = 25;
    let names: Vec<String> = (0..FLEET).map(|i| format!("gpu-{i:04}")).collect();

    for coverage in [100u32, 250, 500] {
        let cfg = SamplingConfig {
            coverage_per_mille: coverage,
            seed: 0xD15EA5E,
        };

        // Per-epoch coverage fraction: the sampler really attests a
        // `c` slice of the fleet.
        let mut covered = 0u64;
        for epoch in 0..EPOCHS {
            for n in &names {
                if covers(&cfg, epoch, n) {
                    covered += 1;
                }
            }
        }
        let frac = (covered * 1000 / (EPOCHS * FLEET as u64)) as i64;
        assert!(
            (frac - i64::from(coverage)).abs() <= TOL_PER_MILLE,
            "coverage {coverage}: fraction {frac}‰ off the target"
        );

        // Detection-within-k: sliding windows over the epoch stream
        // (every start epoch is one independent "cheater appears now"
        // trial per device).
        for k in [1u64, 2, 4, 8] {
            let mut detected = 0u64;
            let mut trials = 0u64;
            for start in 0..(EPOCHS - k) {
                for n in &names {
                    trials += 1;
                    if (start..start + k).any(|e| covers(&cfg, e, n)) {
                        detected += 1;
                    }
                }
            }
            let empirical = (detected * 1000 / trials) as i64;
            let predicted = detect_probability_per_mille(coverage, k) as i64;
            assert!(
                (empirical - predicted).abs() <= TOL_PER_MILLE,
                "coverage {coverage}, k {k}: empirical {empirical}‰ vs predicted {predicted}‰"
            );
        }

        // And the inverse direction the telemetry gauge exposes: after
        // `epochs_to_detect(c, 98%)` epochs the model predicts ≥ 98%,
        // and the empirical rate agrees.
        let k = epochs_to_detect(coverage, 980);
        assert!(detect_probability_per_mille(coverage, k) >= 980);
        let mut detected = 0u64;
        let mut trials = 0u64;
        for start in 0..(EPOCHS - k) {
            for n in &names {
                trials += 1;
                if (start..start + k).any(|e| covers(&cfg, e, n)) {
                    detected += 1;
                }
            }
        }
        assert!(
            detected * 1000 / trials >= 970,
            "coverage {coverage}: k={k} did not reach the modeled confidence"
        );
    }
}
