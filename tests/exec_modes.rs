//! Bit-exact equivalence of the parallel, fast-forwarding execution mode
//! against the sequential tick-per-cycle reference.
//!
//! `ExecMode::Parallel` runs every SM on a worker thread and jumps the SM
//! clock over windows where all partitions are stalled. Both are pure
//! optimisations: final checksums, per-SM cycle counts and the per-SM
//! stall-reason breakdowns must be *identical* to `ExecMode::Sequential`,
//! across seeds and every self-modifying-code mode. This is the guarantee
//! the whole evaluation rests on — a simulator that ran faster by timing
//! differently would invalidate the paper's Table 1 reproduction.

use sage::GpuSession;
use sage_gpu_sim::{Device, DeviceConfig, ExecMode, LaunchParams, RunReport, StallReason};
use sage_vf::{expected_checksum, SmcMode, VfParams};

fn params_for(smc: SmcMode) -> VfParams {
    let mut p = VfParams::test_tiny();
    p.smc = smc;
    // 4 blocks over 2 SMs: exercises multi-block residency and the
    // commutative cross-SM result aggregation.
    p.grid_blocks = 4;
    if smc == SmcMode::Evict {
        // Evict-mode patches are only observed when each block's loop
        // copy overflows every i-cache level (sim_small L2i = 8 KiB);
        // otherwise stale code executes *by design* and the replay
        // deliberately diverges (§6.4). Grow the loop past L2i so the
        // replay-match sanity check below is valid in this mode too.
        p.unroll = 32;
        p.pattern_pairs = 8;
        p.iterations = 3;
        p.data_bytes = 32 * 1024;
    }
    p
}

fn challenges(n: u32, seed: u8) -> Vec<[u8; 16]> {
    (0..n)
        .map(|b| {
            let mut c = [0u8; 16];
            for (i, byte) in c.iter_mut().enumerate() {
                *byte = seed
                    .wrapping_mul(67)
                    .wrapping_add(b as u8 * 29)
                    .wrapping_add(i as u8 * 3);
            }
            c
        })
        .collect()
}

/// Installs the VF, uploads challenges, runs the grid once and returns the
/// checksum cells plus the full run report (per-SM stats included).
fn run_once(mode: ExecMode, smc: SmcMode, timing_seed: u64) -> ([u32; 8], RunReport) {
    let params = params_for(smc);
    let mut dev = Device::new(DeviceConfig::sim_small());
    dev.set_exec_mode(mode);
    dev.set_timing_seed(timing_seed);
    let mut session = GpuSession::install(dev, &params, 0xAA55).expect("install");
    let layout = session.build().layout;
    if smc == SmcMode::Evict {
        assert!(
            layout.loop_bytes > DeviceConfig::sim_small().l2i_bytes,
            "precondition: Evict loop ({} B) must overflow L2i",
            layout.loop_bytes
        );
    }
    let ch = challenges(params.grid_blocks, timing_seed as u8);
    for (b, c) in ch.iter().enumerate() {
        session
            .dev
            .memcpy_h2d(layout.challenge_addr(b as u32), c)
            .expect("challenge upload");
    }
    session
        .dev
        .launch(LaunchParams {
            ctx: session.ctx,
            entry_pc: layout.entry_addr(),
            grid_dim: params.grid_blocks,
            block_dim: params.block_threads,
            regs_per_thread: session.build().regs_per_thread(),
            smem_bytes: session.build().smem_bytes(),
            params: vec![],
        })
        .expect("launch");
    let report = session.dev.run().expect("run");
    let raw = session
        .dev
        .memcpy_d2h(layout.result_addr(), 32)
        .expect("result readback");
    let mut cells = [0u32; 8];
    for (j, cell) in cells.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().expect("4 bytes"));
    }
    // Sanity: both modes must also be *correct*, not merely equal.
    assert_eq!(
        cells,
        expected_checksum(session.build(), &ch),
        "checksum vs verifier replay ({mode:?}, {smc:?}, seed {timing_seed})"
    );
    (cells, report)
}

#[test]
fn parallel_fast_forward_is_bit_exact_with_sequential() {
    for smc in [SmcMode::Off, SmcMode::Evict, SmcMode::Cctl] {
        for timing_seed in [1u64, 0xD15EA5E, 0xFEED_F00D_u64] {
            let (seq_cells, seq) = run_once(ExecMode::Sequential, smc, timing_seed);
            let (par_cells, par) = run_once(ExecMode::Parallel, smc, timing_seed);

            assert_eq!(
                seq_cells, par_cells,
                "final checksum diverged ({smc:?}, seed {timing_seed})"
            );
            assert_eq!(
                seq.total_cycles, par.total_cycles,
                "total cycles diverged ({smc:?}, seed {timing_seed})"
            );
            // Per-SM cycle counts, stall breakdowns, cache and issue
            // counters — all of it, SM by SM.
            assert_eq!(
                seq.per_sm, par.per_sm,
                "per-SM stats diverged ({smc:?}, seed {timing_seed})"
            );
            assert_eq!(seq.per_sm.len(), 2, "both SMs should have run blocks");
            // The aggregate stall breakdown feeds the paper's "99% of
            // stalls are i-fetch" analysis; pin it explicitly.
            for reason in StallReason::ALL {
                assert_eq!(
                    seq.stats.stall(reason),
                    par.stats.stall(reason),
                    "stall[{}] diverged ({smc:?}, seed {timing_seed})",
                    reason.label()
                );
            }
            assert_eq!(seq.stats.slot_cycles, par.stats.slot_cycles);
            assert_eq!(seq.stats.issued_total(), par.stats.issued_total());
        }
    }
}

#[test]
fn launch_reports_match_across_modes() {
    let (_, seq) = run_once(ExecMode::Sequential, SmcMode::Evict, 7);
    let (_, par) = run_once(ExecMode::Parallel, SmcMode::Evict, 7);
    assert_eq!(seq.launches.len(), par.launches.len());
    for (a, b) in seq.launches.iter().zip(&par.launches) {
        assert_eq!(a.completion_cycle, b.completion_cycle);
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.blocks, b.blocks);
    }
}
