//! Fleet-level attestation service scenarios: a four-device fleet run
//! through churn and fault injection over the simulated network. Honest
//! devices must hold `Trusted` across many re-attestation rounds while a
//! device compromised after enrollment (replayed checksums, borrowed from
//! the §8 attack library) is driven into `Quarantined` — deterministically,
//! across several seeds.

use sage_repro::attacks::forge::ReplayTap;
use sage_repro::core::{agent::DeviceAgent, multi::FleetMember, GpuSession};
use sage_repro::crypto::{DhGroup, EntropySource};
use sage_repro::evidence::{Freshness, FreshnessPolicy};
use sage_repro::gpu::{Device, DeviceConfig};
use sage_repro::service::{
    AttestationService, DeviceState, EventKind, Fault, LinkProfile, Policy, ServiceConfig, SimNet,
    VERIFIER_NODE,
};
use sage_repro::sgx::{Enclave, SgxPlatform};
use sage_repro::telemetry::{MetricValue, Registry};
use sage_repro::vf::VfParams;

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(name: &str, cfg: DeviceConfig, seed: u8) -> FleetMember {
    let mut params = VfParams::test_tiny();
    params.iterations = 5;
    let session = GpuSession::install(Device::new(cfg), &params, 0xF1EE7).unwrap();
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))));
    m.name = name.to_string();
    m
}

fn enclave(seed: u8) -> Enclave {
    SgxPlatform::new([7u8; 16]).launch(b"svc-verifier", &mut entropy(seed))
}

fn perfect_net(seed: u64) -> SimNet {
    SimNet::new(
        seed,
        LinkProfile {
            latency: 100,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    )
}

/// Installs the §8 replay tap on an enrolled device: from now on the
/// first checksum readback is recorded and substituted into every later
/// round — fresh challenges make that a wrong answer every time.
fn compromise_with_replay(svc: &mut AttestationService<SimNet>, name: &str) {
    let session = svc.session_mut(name).expect("device is managed");
    let result_addr = session.build().layout.result_addr();
    session
        .dev
        .install_bus_tap(Box::new(ReplayTap::new(result_addr)));
}

#[test]
fn fleet_survives_churn_and_quarantines_replay_attacker() {
    // The acceptance scenario, run across three seeds: same outcome each
    // time even though each seed draws different jitter/drop sequences.
    for seed in [1u64, 2, 3] {
        let net = SimNet::new(
            seed,
            LinkProfile {
                latency: 100,
                jitter: 25,
                drop_per_mille: 20,
                dup_per_mille: 10,
            },
        );
        let cfg = ServiceConfig {
            reattest_interval: 50_000,
            latency_budget: 200,
            deadline_slack: 2_000,
            calibration_runs: 8,
            policy: Policy::default(),
            ..ServiceConfig::default()
        };
        let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);

        let names = ["gpu-a", "gpu-b", "gpu-c", "gpu-evil"];
        let mut ids = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let m = member(name, DeviceConfig::sim_tiny(), 41 + i as u8);
            ids.push(svc.join(m, enclave(61 + i as u8)));
        }

        // Settle: every device passes its first remote round.
        svc.run_for(45_000);
        for name in names {
            assert_eq!(
                svc.state_of(name),
                Some(DeviceState::Trusted),
                "seed {seed}: {name} after settling"
            );
        }

        // Post-enrollment compromise of gpu-evil, plus targeted network
        // faults against two honest devices: a dropped challenge and a
        // response delayed far past the deadline.
        compromise_with_replay(&mut svc, "gpu-evil");
        svc.transport_mut().inject(Fault::DropNext {
            src: VERIFIER_NODE,
            dst: ids[1],
            remaining: 1,
        });
        svc.transport_mut().inject(Fault::DelayNext {
            src: ids[2],
            dst: VERIFIER_NODE,
            extra: 300_000,
            remaining: 1,
        });

        // Run until the fleet reaches the expected steady state: honest
        // devices Trusted with a deep round history, the attacker
        // quarantined. The iteration cap keeps a regression from hanging.
        let mut settled = false;
        for _ in 0..400 {
            svc.run_for(50_000);
            let honest_ok = names[..3].iter().all(|n| {
                svc.statuses().iter().any(|s| {
                    s.name == *n && s.state == DeviceState::Trusted && s.rounds_passed >= 12
                })
            });
            if honest_ok && svc.state_of("gpu-evil") == Some(DeviceState::Quarantined) {
                settled = true;
                break;
            }
        }
        assert!(settled, "seed {seed}: fleet did not settle");

        let counters = svc.log().counters();
        assert!(
            counters.timeouts >= 1,
            "seed {seed}: the delayed response must register as a timeout"
        );
        assert_eq!(counters.quarantines, 1, "seed {seed}");
        let evil = svc
            .statuses()
            .into_iter()
            .find(|s| s.name == "gpu-evil")
            .unwrap();
        // The tap's recording round may pass; everything after replays a
        // stale answer against a fresh challenge and fails.
        assert!(
            evil.rounds_passed <= 2,
            "seed {seed}: attacker banked {} rounds",
            evil.rounds_passed
        );
        assert!(counters.value_rejects >= u64::from(cfg.policy.quarantine_after));
    }
}

#[test]
fn roster_stays_most_powerful_first_across_join_and_leave() {
    let cfg = ServiceConfig::default();
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), perfect_net(5));
    svc.join(member("gpu-a", DeviceConfig::sim_tiny(), 45), enclave(65));
    svc.join(member("gpu-b", DeviceConfig::sim_tiny(), 46), enclave(66));
    svc.run_for(10_000);

    // A more powerful device joining mid-run moves to the head of the
    // roster (paper §3.2: most powerful first).
    svc.join(
        member("gpu-big", DeviceConfig::sim_small(), 47),
        enclave(67),
    );
    let statuses = svc.statuses();
    assert_eq!(statuses[0].name, "gpu-big");
    assert!(statuses[0].power > statuses[1].power);
    // Equal-power devices stay name-ordered behind it.
    assert_eq!(statuses[1].name, "gpu-a");
    assert_eq!(statuses[2].name, "gpu-b");

    svc.run_for(60_000);
    for s in svc.statuses() {
        assert_eq!(s.state, DeviceState::Trusted, "{}", s.name);
    }

    // Leaving revokes: the device is unscheduled and its round counter
    // freezes while the rest of the fleet keeps attesting.
    assert!(svc.leave("gpu-a"));
    assert!(!svc.leave("gpu-a-typo"));
    let frozen = svc
        .statuses()
        .into_iter()
        .find(|s| s.name == "gpu-a")
        .unwrap()
        .rounds_passed;
    svc.run_for(200_000);
    let after = svc
        .statuses()
        .into_iter()
        .find(|s| s.name == "gpu-a")
        .unwrap();
    assert_eq!(after.state, DeviceState::Revoked);
    assert_eq!(after.rounds_passed, frozen);
    let big = svc
        .statuses()
        .into_iter()
        .find(|s| s.name == "gpu-big")
        .unwrap();
    assert!(big.rounds_passed > frozen);
    assert_eq!(svc.log().counters().leaves, 1);
}

#[test]
fn slow_proxy_burns_restart_budget_then_quarantines() {
    // A device that genuinely became slower after enrollment (a proxy
    // relaying the exchange, paper §8): answers are *correct* but exceed
    // the calibrated threshold. The policy first spends the timing-restart
    // budget (the §7.2 false-positive allowance), then counts failures.
    let cfg = ServiceConfig {
        deadline_slack: 4_000, // let slow-but-correct answers arrive
        ..ServiceConfig::default()
    };
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), perfect_net(9));
    svc.join(member("gpu-p", DeviceConfig::sim_tiny(), 48), enclave(68));
    svc.join(member("gpu-q", DeviceConfig::sim_tiny(), 49), enclave(69));
    // One checksum run is ~38k virtual ticks at this VF scale, so the
    // first round needs a generous settling window.
    svc.run_for(45_000);
    assert_eq!(svc.state_of("gpu-p"), Some(DeviceState::Trusted));

    // +3000 cycles: far past T_avg + 2.5σ (σ is a few hundred cycles at
    // this VF scale) yet within the deadline slack.
    svc.node_mut("gpu-p").unwrap().extra_compute = 3_000;
    for _ in 0..40 {
        svc.run_for(50_000);
        if svc.state_of("gpu-p") == Some(DeviceState::Quarantined) {
            break;
        }
    }

    assert_eq!(svc.state_of("gpu-p"), Some(DeviceState::Quarantined));
    assert_eq!(svc.state_of("gpu-q"), Some(DeviceState::Trusted));
    let counters = svc.log().counters();
    let policy = Policy::default();
    assert_eq!(counters.restarts, u64::from(policy.max_timing_restarts));
    // Every reject on this path is a timing reject, never a wrong value:
    // restart budget + quarantine budget.
    assert_eq!(
        counters.timing_rejects,
        u64::from(policy.max_timing_restarts) + u64::from(policy.quarantine_after)
    );
    assert_eq!(counters.value_rejects, 0);
    assert_eq!(counters.timeouts, 0);
}

#[test]
fn enrollment_failure_quarantines_without_stopping_the_service() {
    // calibration_runs = 0 gives the threshold estimator an empty sample
    // set; the Result-returning constructor turns that into a recorded
    // enrollment failure instead of a panic, and the rest of the fleet
    // keeps attesting.
    let cfg = ServiceConfig {
        calibration_runs: 0,
        ..ServiceConfig::default()
    };
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), perfect_net(3));
    svc.join(member("gpu-x", DeviceConfig::sim_tiny(), 50), enclave(70));
    assert_eq!(svc.state_of("gpu-x"), Some(DeviceState::Quarantined));
    assert_eq!(svc.log().counters().calibration_failures, 1);

    // A properly calibrated device joining the same service still works.
    let good_cfg = ServiceConfig::default();
    let mut good = AttestationService::new(good_cfg, DhGroup::test_group(), perfect_net(4));
    good.join(member("gpu-y", DeviceConfig::sim_tiny(), 51), enclave(71));
    good.run_for(45_000);
    assert_eq!(good.state_of("gpu-y"), Some(DeviceState::Trusted));
}

/// Reads one counter series out of the registry, by exact label match.
fn counter_value(reg: &Registry, name: &str, labels: &[(&str, &str)]) -> u64 {
    for (n, ls, v) in reg.collect() {
        let same = n == name
            && ls.len() == labels.len()
            && ls
                .iter()
                .zip(labels)
                .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2);
        if same {
            match v {
                MetricValue::Counter(c) => return c,
                other => panic!("{name} is not a counter: {other:?}"),
            }
        }
    }
    panic!("series {name}{labels:?} not found");
}

/// The PR-7 acceptance scenario for freshness decay: with the re-attest
/// interval stretched past the decay windows, both devices walk
/// `Trusted → Stale → Degraded` on pure clock advance, the scheduled
/// re-attestation round reverses the decay back to `Trusted`, and every
/// transition is visible in both the event log and the telemetry
/// counters.
#[test]
fn freshness_decays_without_reattestation_and_reverses_on_a_pass() {
    let names = ["gpu-a", "gpu-b"];
    let cfg = ServiceConfig {
        // Re-attestation comes *after* full decay: the device must go
        // stale and degraded first, then be rescued by the next round.
        reattest_interval: 200_000,
        latency_budget: 200,
        deadline_slack: 2_000,
        calibration_runs: 5,
        policy: Policy::default(),
        epoch_interval: 50_000,
        freshness: FreshnessPolicy {
            stale_after: 60_000,
            degraded_after: 120_000,
        },
        ..ServiceConfig::default()
    };
    let reg = Registry::new();
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), perfect_net(9));
    svc.attach_telemetry(&reg);
    svc.join(member("gpu-a", DeviceConfig::sim_tiny(), 41), enclave(61));
    svc.join(member("gpu-b", DeviceConfig::sim_tiny(), 42), enclave(62));

    // Inside the trusted window: enrollment passed, nothing decayed.
    svc.run_for(50_000);
    for name in names {
        assert_eq!(svc.state_of(name), Some(DeviceState::Trusted), "{name}");
        assert_eq!(svc.freshness_of(name), Some(Freshness::Trusted), "{name}");
    }

    // Past stale_after with no round in between.
    svc.run_for(50_000); // now ≈ 100k
    for name in names {
        assert_eq!(svc.freshness_of(name), Some(Freshness::Stale), "{name}");
    }

    // Past degraded_after.
    svc.run_for(70_000); // now ≈ 170k
    for name in names {
        assert_eq!(svc.freshness_of(name), Some(Freshness::Degraded), "{name}");
    }

    // The next re-attestation round (one interval after the first pass
    // at ≈13.6k, so starting ≈213.6k and passing ≈227k) reverses the
    // decay.
    svc.run_for(70_000); // now ≈ 240k
    for name in names {
        assert_eq!(svc.state_of(name), Some(DeviceState::Trusted), "{name}");
        assert_eq!(svc.freshness_of(name), Some(Freshness::Trusted), "{name}");
    }

    // The event log shows the exact ladder per device: decay down, one
    // recovery up.
    for name in names {
        let ladder: Vec<(Freshness, Freshness)> = svc
            .log()
            .events()
            .iter()
            .filter(|e| e.device == name)
            .filter_map(|e| match e.kind {
                EventKind::FreshnessChanged { from, to } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            ladder,
            vec![
                (Freshness::Trusted, Freshness::Stale),
                (Freshness::Stale, Freshness::Degraded),
                (Freshness::Degraded, Freshness::Trusted),
            ],
            "{name}: unexpected freshness ladder"
        );
    }

    // And telemetry carries the same transitions, one per device per
    // rung, under the stable series name.
    for (to, want) in [("stale", 2), ("degraded", 2), ("trusted", 2)] {
        assert_eq!(
            counter_value(&reg, "service_freshness_transitions_total", &[("to", to)]),
            want,
            "transition counter to={to}"
        );
    }
    assert_eq!(svc.log().counters().freshness_transitions, 6);

    // Epochs sealed on schedule throughout (50k cadence, now ≈ 210k),
    // also visible in telemetry.
    assert_eq!(svc.sealed_epochs().len(), 4);
    assert_eq!(
        counter_value(&reg, "service_epochs_sealed_total", &[]),
        4,
        "sealed-epoch counter"
    );
}
