//! The transport-robustness acceptance run: the same fleet is driven
//! twice — once over clean direct sockets (the control), once through a
//! [`ChaosProxy`] that tears frames at arbitrary byte boundaries and
//! severs every live connection at least twice mid-session. The chaos
//! run must end with every honest device back in `Trusted` purely via
//! session resume (zero re-enrollments), the mid-life cheater
//! quarantined (zero false accepts), and — the strong claim — every
//! device's evidence-chain head **byte-identical** to the control run:
//! link flaps are invisible to the attestation record, because virtual
//! time freezes while a round is outstanding and resumed links replay
//! the round at its original tick.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use sage_repro::core::{agent::DeviceAgent, multi::FleetMember, GpuSession};
use sage_repro::crypto::DhGroup;
use sage_repro::gpu::{Device, DeviceConfig};
use sage_repro::service::{
    AttestationService, Bind, ChaosProfile, ChaosProxy, ClockDriver, DeviceLink, DeviceLinkConfig,
    DeviceState, LinkConfig, Pump, ServiceConfig, TcpTransport,
};
use sage_repro::sgx::SgxPlatform;
use sage_repro::vf::VfParams;

const HONEST: usize = 3;
const CHEATER: usize = HONEST; // index of the compromised device
const DEVICES: usize = HONEST + 1;
const TARGET_ROUNDS: u64 = 3;

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn modeled_member(index: usize) -> FleetMember {
    let session = GpuSession::install_modeled(
        Device::new(DeviceConfig::sim_nano()),
        &VfParams::fleet_tiny(),
        0xF1EE7,
        10_000,
    )
    .expect("install modeled VF");
    let seed = (index as u8).wrapping_mul(3).wrapping_add(11) | 1;
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))));
    m.name = format!("gpu-{index:05}");
    m
}

struct RunResult {
    /// Evidence-chain head per device, in index order.
    heads: Vec<[u8; 32]>,
    states: Vec<DeviceState>,
    rounds_passed: Vec<u64>,
    resumes: Vec<u64>,
    enrollments: Vec<u64>,
    link_downs: u64,
    reconnects: u64,
}

/// Enrolls the fleet over real sockets and drives it to
/// `TARGET_ROUNDS` passed rounds per honest device with the cheater
/// quarantined. With `chaos`, traffic crosses a torn-frame proxy and
/// every live connection is severed after each of the first two round
/// milestones.
fn run_fleet(tag: &str, chaos: bool) -> RunResult {
    let dir = std::env::temp_dir().join(format!("sage-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("verifier.sock");

    let net =
        TcpTransport::bind(Bind::Uds(sock.clone()), LinkConfig::default()).expect("bind listener");
    let cfg = ServiceConfig {
        reattest_interval: 20_000,
        backoff_jitter: 500,
        ..ServiceConfig::default()
    };
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);

    let proxy = chaos.then(|| {
        ChaosProxy::spawn(
            Bind::Uds(dir.join("proxy.sock")),
            Bind::Uds(sock.clone()),
            ChaosProfile::torn(0xC4A0_5EED),
        )
        .expect("spawn chaos proxy")
    });
    let dial = match &proxy {
        Some(p) => p.local_bind(),
        None => Bind::Uds(sock.clone()),
    };

    let links: Vec<DeviceLink> = (0..DEVICES)
        .map(|i| {
            DeviceLink::spawn(
                modeled_member(i),
                DhGroup::test_group(),
                DeviceLinkConfig {
                    connect: dial.clone(),
                    compromise_after: (i == CHEATER).then_some(1),
                    ..DeviceLinkConfig::default()
                },
            )
        })
        .collect();

    // Wait for the whole fleet to knock, then enroll in name order at
    // virtual tick 0 — connection arrival order is wall-timing noise
    // and must not leak into NodeId assignment or evidence timestamps.
    let wall_deadline = Instant::now() + Duration::from_secs(60);
    while svc.transport().pending_enrolls() < DEVICES {
        assert!(Instant::now() < wall_deadline, "fleet never connected");
        thread::sleep(Duration::from_millis(10));
    }
    let mut pending = Vec::new();
    while let Some(p) = svc.transport_mut().take_pending_enroll() {
        pending.push(p);
    }
    pending.sort_by(|a, b| a.0.cmp(&b.0));
    let platform = SgxPlatform::new([7u8; 16]);
    for (name, stream) in pending {
        let index: usize = name[4..].parse().expect("gpu-NNNNN name");
        let enclave = platform.launch(b"chaos-verifier", &mut entropy(23));
        svc.join_remote(modeled_member(index), enclave, stream);
    }

    let mut driver = ClockDriver::new(200_000);
    let honest_floor = |svc: &AttestationService<TcpTransport>| {
        svc.statuses()
            .iter()
            .filter(|s| s.name != format!("gpu-{CHEATER:05}"))
            .map(|s| s.rounds_passed)
            .min()
            .unwrap_or(0)
    };
    let mut severs_done = 0u64;
    for _ in 0..500 {
        let target = svc.now() + 10_000;
        match driver.run_until(&mut svc, target) {
            Pump::Target => {}
            Pump::Enrolls => panic!("device attempted re-enrollment — resume must suffice"),
        }
        if let Some(p) = &proxy {
            // Sever everything after the first and second full-fleet
            // round milestones: each connection dies at least twice
            // with a SAKE session live behind it.
            if severs_done < 2 && honest_floor(&svc) > severs_done {
                p.sever_all();
                severs_done += 1;
            }
        }
        let done = honest_floor(&svc) >= TARGET_ROUNDS
            && svc.state_of(&format!("gpu-{CHEATER:05}")) == Some(DeviceState::Quarantined);
        if done && (proxy.is_none() || severs_done >= 2) {
            break;
        }
    }

    let statuses = svc.statuses();
    assert_eq!(statuses.len(), DEVICES);
    let by_index = |i: usize| {
        statuses
            .iter()
            .find(|s| s.name == format!("gpu-{i:05}"))
            .expect("device present")
    };
    let heads = (0..DEVICES)
        .map(|i| {
            svc.evidence_of(&format!("gpu-{i:05}"))
                .expect("evidence chain")
                .head()
        })
        .collect();
    let stats = svc.transport().stats();
    let mut resumes = Vec::new();
    let mut enrollments = Vec::new();
    for link in links {
        let r = link.stop();
        resumes.push(r.resumes);
        enrollments.push(r.enrollments);
    }
    let result = RunResult {
        heads,
        states: (0..DEVICES).map(|i| by_index(i).state).collect(),
        rounds_passed: (0..DEVICES).map(|i| by_index(i).rounds_passed).collect(),
        resumes,
        enrollments,
        link_downs: svc.log().counters().link_downs,
        reconnects: stats.reconnects,
    };
    drop(svc);
    drop(proxy);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn with_timeout<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = mpsc::channel();
    let h = thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => h.join().unwrap(),
        Err(_) => panic!("harness timeout: chaos acceptance exceeded {secs}s"),
    }
}

#[test]
fn severed_fleet_resumes_with_byte_identical_evidence() {
    with_timeout(300, || {
        let control = run_fleet("control", false);
        let chaos = run_fleet("chaos", true);

        // Control sanity: clean links, no resumes, no link events.
        assert_eq!(control.link_downs, 0);
        assert!(control.resumes.iter().all(|&r| r == 0));

        for run in [&control, &chaos] {
            for i in 0..HONEST {
                assert_eq!(run.states[i], DeviceState::Trusted, "device {i}");
                assert!(run.rounds_passed[i] >= TARGET_ROUNDS, "device {i}");
            }
            // Zero false accepts: the mid-life cheater is quarantined
            // and never passed a round after turning.
            assert_eq!(run.states[CHEATER], DeviceState::Quarantined);
            assert_eq!(run.rounds_passed[CHEATER], 1);
            // Zero re-enrollments, chaos or not.
            assert!(
                run.enrollments.iter().all(|&e| e == 1),
                "re-enrollment seen"
            );
        }

        // Every connection was severed at least twice and came back via
        // session resume.
        assert!(chaos.link_downs >= 2, "links never flapped");
        assert!(
            chaos.reconnects >= 2 * DEVICES as u64,
            "expected ≥2 resumes per device at the transport, got {}",
            chaos.reconnects
        );
        for (i, &r) in chaos.resumes.iter().enumerate() {
            assert!(r >= 2, "device {i} resumed only {r} times");
        }

        // The strong claim: chain heads are byte-identical — the
        // attestation record cannot tell the severed run from the
        // control run.
        for i in 0..DEVICES {
            assert_eq!(
                control.heads[i], chaos.heads[i],
                "evidence head diverged for device {i}"
            );
        }
    });
}
