//! Full-stack attestation across all crates, on the mid-size device:
//! enclave → verifier → simulated GPU → VF microcode → SAKE → secure
//! channel → user kernel, plus cross-cutting invariants that only make
//! sense at the workspace level.

use sage_repro::core::{agent::DeviceAgent, kernels, GpuSession, Verifier};
use sage_repro::crypto::{DhGroup, EntropySource};
use sage_repro::gpu::{Device, DeviceConfig};
use sage_repro::sgx::{verify_quote, SgxPlatform};
use sage_repro::vf::{SmcMode, VfParams};

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn mid_params() -> VfParams {
    let mut p = VfParams::test_tiny();
    p.data_bytes = 64 * 1024;
    p.grid_blocks = 4;
    p.block_threads = 128;
    p.iterations = 8;
    p.smc = SmcMode::Cctl; // exercise self-modifying code end to end
    p
}

#[test]
fn attestation_on_sim_small_with_smc() {
    let device = Device::new(DeviceConfig::sim_small());
    let mut session = GpuSession::install(device, &mid_params(), 0x51AC).unwrap();
    let platform = SgxPlatform::new([1u8; 16]);
    let enclave = platform.launch(b"verifier", &mut entropy(2));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    verifier.calibrate(&mut session, 8).unwrap();
    let mut agent = DeviceAgent::new(Box::new(entropy(4)));
    let outcome = verifier
        .establish_key(&mut session, &mut agent, None)
        .unwrap();

    // External challenger path.
    let quote = verifier.quote_attestation(&outcome);
    assert!(verify_quote(&platform.quote_verification_key(), &quote));

    // Kernel measurement on the device with the real SHA-256 microcode.
    let code = kernels::vecadd_kernel(kernels::vecadd::Elem::F32).encode();
    verifier
        .verify_user_kernel(&mut session, &mut agent, &code)
        .unwrap();
}

#[test]
fn verifier_rejects_device_with_tampered_vf() {
    let device = Device::new(DeviceConfig::sim_small());
    let mut session = GpuSession::install(device, &mid_params(), 0x51AC).unwrap();
    let platform = SgxPlatform::new([1u8; 16]);
    let enclave = platform.launch(b"verifier", &mut entropy(2));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    verifier.calibrate(&mut session, 6).unwrap();

    // Adversary pokes the checksummed region between calibration and the
    // next verification round. Tamper a spread of words so the
    // pseudo-random traversal hits one with overwhelming probability
    // (~16k accesses over 16k words at this scale).
    let layout = session.build().layout;
    for w in 0..64u32 {
        session
            .dev
            .poke(layout.base + layout.fill_off + 512 + w * 256, &[0xAA])
            .unwrap();
    }

    let err = verifier.verify_once(&mut session).unwrap_err();
    assert!(matches!(
        err,
        sage_repro::core::SageError::ChecksumMismatch { .. }
    ));
}

#[test]
fn sake_key_establishment_fails_fast_when_uncalibrated() {
    let device = Device::new(DeviceConfig::sim_small());
    let mut session = GpuSession::install(device, &mid_params(), 0x51AC).unwrap();
    let platform = SgxPlatform::new([1u8; 16]);
    let enclave = platform.launch(b"verifier", &mut entropy(2));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    let mut agent = DeviceAgent::new(Box::new(entropy(4)));
    assert!(verifier
        .establish_key(&mut session, &mut agent, None)
        .is_err());
}

#[test]
fn two_devices_yield_distinct_session_keys() {
    let mut keys = Vec::new();
    for seed in [10u8, 20] {
        let device = Device::new(DeviceConfig::sim_small());
        let mut session = GpuSession::install(device, &mid_params(), 0x51AC).unwrap();
        let platform = SgxPlatform::new([1u8; 16]);
        let enclave = platform.launch(b"verifier", &mut entropy(seed));
        let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
        verifier.calibrate(&mut session, 6).unwrap();
        let mut agent = DeviceAgent::new(Box::new(entropy(seed + 1)));
        let outcome = verifier
            .establish_key(&mut session, &mut agent, None)
            .unwrap();
        keys.push(outcome.session_key);
    }
    assert_ne!(keys[0], keys[1]);
}

#[test]
fn device_sha256_agrees_with_host_for_many_sizes() {
    let device = Device::new(DeviceConfig::sim_small());
    let mut session = GpuSession::install(device, &mid_params(), 0x51AC).unwrap();
    let mut agent = DeviceAgent::new(Box::new(entropy(4)));
    let r = [3u8; 32];
    for size in [0usize, 1, 31, 32, 55, 56, 64, 100, 257] {
        let code: Vec<u8> = (0..size).map(|i| (i * 37) as u8).collect();
        let device_hash = agent.measure_kernel(&mut session, &r, &code).unwrap();
        let mut input = r.to_vec();
        input.extend_from_slice(&code);
        assert_eq!(
            device_hash,
            sage_repro::crypto::sha256(&input),
            "size {size}"
        );
    }
}
