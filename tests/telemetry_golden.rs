//! Golden-snapshot test for both telemetry exporters: a fully
//! deterministic two-device fleet run (seeded network, zero jitter,
//! synchronous bank refills, virtual clocks everywhere) must render
//! byte-for-byte identical JSON and Prometheus text across runs and
//! machines. The committed goldens under `tests/goldens/` are the
//! schema-stability contract: any change to series names, labels,
//! formatting, or the `"schema"` version shows up as a diff here and
//! must be a deliberate act.
//!
//! To regenerate after an intentional schema change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test telemetry_golden
//! ```

use std::path::Path;

use sage_repro::attacks::forge::ReplayTap;
use sage_repro::core::{agent::DeviceAgent, multi::FleetMember, GpuSession};
use sage_repro::crypto::{DhGroup, EntropySource};
use sage_repro::gpu::{Device, DeviceConfig};
use sage_repro::service::{AttestationService, LinkProfile, Policy, ServiceConfig, SimNet};
use sage_repro::sgx::{Enclave, SgxPlatform};
use sage_repro::telemetry::Registry;
use sage_repro::vf::VfParams;

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(name: &str, seed: u8) -> FleetMember {
    let mut params = VfParams::test_tiny();
    params.iterations = 5;
    let session =
        GpuSession::install(Device::new(DeviceConfig::sim_tiny()), &params, 0xF1EE7).unwrap();
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))));
    m.name = name.to_string();
    m
}

fn enclave(seed: u8) -> Enclave {
    SgxPlatform::new([7u8; 16]).launch(b"svc-verifier", &mut entropy(seed))
}

/// Runs the canonical deterministic scenario and returns its registry:
/// two devices enroll and attest (bank-hit fast path, synchronous
/// refills), then one is compromised with the §8 replay tap and driven
/// through value rejects into quarantine — so accept, reject, bank,
/// simulator and service series are all populated.
fn deterministic_registry() -> Registry {
    let net = SimNet::new(
        42,
        LinkProfile {
            latency: 100,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let cfg = ServiceConfig {
        reattest_interval: 20_000,
        latency_budget: 200,
        deadline_slack: 2_000,
        calibration_runs: 5,
        policy: Policy::default(),
        bank_capacity: 2,
        // Synchronous refills: no background threads, so the consumed
        // challenge sequence — and with it every counter and histogram
        // below — is a pure function of the seeds.
        bank_workers: 0,
        prefill_rounds: 0,
        ..ServiceConfig::default()
    };
    let reg = Registry::new();
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);
    svc.attach_telemetry(&reg);
    svc.join(member("gpu-a", 41), enclave(61));
    svc.join(member("gpu-b", 42), enclave(62));
    svc.run_for(45_000);

    // Post-enrollment compromise: every later readback from gpu-b
    // replays a stale answer against a fresh challenge.
    let session = svc.session_mut("gpu-b").expect("gpu-b is managed");
    let result_addr = session.build().layout.result_addr();
    session
        .dev
        .install_bus_tap(Box::new(ReplayTap::new(result_addr)));
    svc.run_for(200_000);
    reg
}

fn check_golden(rendered: &str, golden_path: &Path) {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(golden_path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDENS=1 to create it",
            golden_path.display()
        )
    });
    assert!(
        rendered == golden,
        "{} drifted from its golden.\n\
         If the schema change is deliberate, regenerate with:\n\
         UPDATE_GOLDENS=1 cargo test --test telemetry_golden\n\
         --- golden ---\n{golden}\n--- rendered ---\n{rendered}",
        golden_path.display()
    );
}

#[test]
fn exporters_match_committed_goldens() {
    let reg = deterministic_registry();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    check_golden(&reg.to_json(), &root.join("telemetry.json"));
    check_golden(&reg.to_prometheus(), &root.join("telemetry.prom"));
}

/// The same scenario rendered twice in one process must agree with
/// itself — catches nondeterminism (thread scheduling, map ordering,
/// wall clocks) even when a golden regen would have hidden it.
#[test]
fn scenario_is_reproducible_in_process() {
    let a = deterministic_registry();
    let b = deterministic_registry();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_prometheus(), b.to_prometheus());
}
