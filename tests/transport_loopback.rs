//! Tier-1 smoke test for the real socket transport: one device enrolls
//! over a Unix-domain socket loopback — full calibration + SAKE key
//! establishment crossing real frames — then passes an attestation
//! round and lands `Trusted`, all inside a hard harness timeout so a
//! deadlocked supervision thread fails the suite instead of hanging it.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use sage_repro::core::{agent::DeviceAgent, multi::FleetMember, GpuSession};
use sage_repro::crypto::DhGroup;
use sage_repro::gpu::{Device, DeviceConfig};
use sage_repro::service::{
    AttestationService, Bind, ClockDriver, DeviceLink, DeviceLinkConfig, DeviceState, LinkConfig,
    Pump, ServiceConfig, TcpTransport,
};
use sage_repro::sgx::SgxPlatform;
use sage_repro::vf::VfParams;

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

/// A modeled device (replay-engine checksums, synthesized timing): the
/// same build installed on both the device side and the verifier's
/// local twin, so replayed checksums match across the socket.
fn modeled_member(index: usize, seed: u8) -> FleetMember {
    let session = GpuSession::install_modeled(
        Device::new(DeviceConfig::sim_nano()),
        &VfParams::fleet_tiny(),
        0xF1EE7,
        10_000,
    )
    .expect("install modeled VF");
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))));
    m.name = format!("gpu-{index:05}");
    m
}

/// Runs `f` on a worker thread and panics if it does not finish within
/// `secs` — the suite must never hang on a wedged socket thread.
fn with_timeout<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = mpsc::channel();
    let h = thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => h.join().unwrap(),
        Err(_) => panic!("harness timeout: loopback run exceeded {secs}s"),
    }
}

#[test]
fn uds_loopback_enrolls_and_attests_one_round() {
    with_timeout(120, || {
        let dir = std::env::temp_dir().join(format!("sage-loopback-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("verifier.sock");

        let net = TcpTransport::bind(Bind::Uds(sock.clone()), LinkConfig::default())
            .expect("bind UDS listener");
        let cfg = ServiceConfig {
            reattest_interval: 20_000,
            ..ServiceConfig::default()
        };
        let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);

        let link = DeviceLink::spawn(
            modeled_member(0, 11),
            DhGroup::test_group(),
            DeviceLinkConfig {
                connect: Bind::Uds(sock.clone()),
                ..DeviceLinkConfig::default()
            },
        );

        let platform = SgxPlatform::new([7u8; 16]);
        let mut driver = ClockDriver::new(100_000);
        let mut joined = 0usize;
        let deadline = Instant::now() + Duration::from_secs(90);
        loop {
            assert!(
                Instant::now() < deadline,
                "device never enrolled and attested"
            );
            if joined == 0 {
                // With an empty fleet the virtual clock jumps instantly,
                // so without this wait the drive loop can spin to
                // completion before the device thread even connects.
                svc.transport().wait_activity(Duration::from_millis(200));
            }
            let target = svc.now() + 30_000;
            if driver.run_until(&mut svc, target) == Pump::Enrolls {
                while let Some((name, stream)) = svc.transport_mut().take_pending_enroll() {
                    assert_eq!(name, "gpu-00000");
                    let enclave = platform.launch(b"loop-verifier", &mut entropy(23));
                    svc.join_remote(modeled_member(0, 11), enclave, stream);
                    joined += 1;
                }
            }
            let done = svc
                .statuses()
                .iter()
                .any(|s| s.state == DeviceState::Trusted && s.rounds_passed >= 1);
            if done {
                break;
            }
        }

        assert_eq!(joined, 1, "exactly one enrollment expected");
        let statuses = svc.statuses();
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].state, DeviceState::Trusted);
        assert!(statuses[0].rounds_passed >= 1, "no round passed");
        assert!(
            svc.evidence_of("gpu-00000").is_some(),
            "evidence chain must exist after enrollment"
        );

        let stats = svc.transport().stats();
        assert!(stats.accepted >= 1);
        assert_eq!(stats.enrolls, 1);
        assert!(stats.frames_rx > 0 && stats.frames_tx > 0);

        let report = link.stop();
        assert!(report.enrolled);
        assert_eq!(report.enrollments, 1);
        assert!(report.rounds_answered >= 1);

        let _ = std::fs::remove_dir_all(&dir);
    });
}
