//! Crash-safe recovery and device-level chaos at the service layer.
//!
//! Three properties the chaos engine must never break:
//!
//! 1. **Crash-restart determinism** — killing the control plane
//!    mid-schedule (even with a round in flight) and restoring from a
//!    snapshot plus the surviving endpoints yields a subsequent event
//!    history bit-identical to a run that never crashed.
//! 2. **Restore is strict** — a snapshot only marries the exact fleet it
//!    was taken over; missing or foreign endpoints are typed errors, and
//!    tampered bytes never panic.
//! 3. **Faults are detected, never absorbed** — a transient device fault
//!    costs the device `Trusted` for exactly the backoff window and then
//!    reconverges; a persistent corruption burns the wrong-value budget
//!    into `Quarantined`; neither ever produces a false accept.
//! 4. **Evidence survives the crash** — a snapshot taken mid-epoch
//!    carries every device's chain head byte-identically across the
//!    restore, and the next sealed epoch root matches the uninterrupted
//!    twin bit for bit.

use sage_repro::core::{agent::DeviceAgent, multi::FleetMember, GpuSession};
use sage_repro::crypto::{DhGroup, EntropySource};
use sage_repro::evidence::{verify_report, FreshnessPolicy};
use sage_repro::gpu::{Device, DeviceConfig, DeviceFault, FaultPlan};
use sage_repro::service::{
    AttestationService, DeviceState, EventKind, FailReason, LinkProfile, Policy, QuorumConfig,
    ServiceConfig, SimNet, SnapshotError, VerifierBehavior,
};
use sage_repro::sgx::{Enclave, SgxPlatform};
use sage_repro::vf::VfParams;

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(name: &str, seed: u8) -> FleetMember {
    let mut params = VfParams::test_tiny();
    params.iterations = 5;
    let session =
        GpuSession::install(Device::new(DeviceConfig::sim_tiny()), &params, 0xF1EE7).unwrap();
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))));
    m.name = name.to_string();
    m
}

fn enclave(seed: u8) -> Enclave {
    SgxPlatform::new([7u8; 16]).launch(b"svc-verifier", &mut entropy(seed))
}

fn jittery_net(seed: u64) -> SimNet {
    SimNet::new(
        seed,
        LinkProfile {
            latency: 100,
            jitter: 25,
            drop_per_mille: 10,
            dup_per_mille: 0,
        },
    )
}

fn perfect_net(seed: u64) -> SimNet {
    SimNet::new(
        seed,
        LinkProfile {
            latency: 100,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    )
}

fn cfg() -> ServiceConfig {
    ServiceConfig {
        reattest_interval: 50_000,
        latency_budget: 200,
        deadline_slack: 2_000,
        calibration_runs: 5,
        policy: Policy::default(),
        ..ServiceConfig::default()
    }
}

/// Builds the reference two-device fleet for a given seed. Identical
/// inputs ⇒ identical universes, which is what lets the crash test
/// compare an interrupted run against an uninterrupted twin.
fn two_device_fleet(seed: u64) -> AttestationService<SimNet> {
    let mut svc = AttestationService::new(cfg(), DhGroup::test_group(), jittery_net(seed));
    svc.join(member("gpu-a", 41), enclave(61));
    svc.join(member("gpu-b", 42), enclave(62));
    svc
}

/// Advances the service event-by-event until a challenge round has just
/// been issued (a `RoundStarted` with the response still in flight) —
/// the most awkward possible moment to crash.
fn run_to_inflight_round(svc: &mut AttestationService<SimNet>) -> u64 {
    loop {
        let next = svc
            .next_event_at()
            .expect("fleet always has a next event while devices are live");
        svc.run_until(next);
        if matches!(
            svc.log().events().last().map(|e| &e.kind),
            Some(EventKind::RoundStarted { .. })
        ) && svc.now() > 10_000
        {
            return svc.now();
        }
        assert!(
            svc.now() < 1_000_000,
            "no in-flight round found within 1M ticks"
        );
    }
}

#[test]
fn crash_restart_resumes_with_identical_history() {
    for seed in [11u64, 12, 13] {
        // Scout: find a crash point with a round in flight.
        let mut scout = two_device_fleet(seed);
        let crash_at = run_to_inflight_round(&mut scout);
        let end_at = crash_at + 150_000;

        // Universe A: never crashes.
        let mut a = two_device_fleet(seed);
        a.run_until(end_at);

        // Universe B: identical twin, crashed at `crash_at` and restored
        // from the snapshot plus the surviving endpoints.
        let mut b = two_device_fleet(seed);
        b.run_until(crash_at);
        let snap = b.snapshot();
        let (net, endpoints) = b.into_endpoints(); // control plane dies here
        let mut b =
            AttestationService::restore(cfg(), DhGroup::test_group(), net, &snap, endpoints)
                .expect("snapshot restores against its own endpoints");
        assert_eq!(b.now(), crash_at, "seed {seed}: clock resumes");
        b.run_until(end_at);

        assert_eq!(
            a.snapshot_json(),
            b.snapshot_json(),
            "seed {seed}: crash-restart diverged from the uninterrupted run"
        );
        assert_eq!(
            a.snapshot(),
            b.snapshot(),
            "seed {seed}: binary state diverged after crash-restart"
        );
        // The crash bridged live work: both universes made progress
        // after the crash point.
        assert!(
            a.log().events().iter().any(|e| e.at > crash_at),
            "seed {seed}: no activity after the crash point — test is vacuous"
        );
    }
}

#[test]
fn snapshot_survives_a_second_crash() {
    // Crash twice in one schedule: restore must itself be
    // snapshot-clean, not a one-shot.
    let seed = 21u64;
    let mut a = two_device_fleet(seed);
    a.run_until(200_000);

    let mut b = two_device_fleet(seed);
    b.run_until(70_000);
    let snap = b.snapshot();
    let (net, eps) = b.into_endpoints();
    let mut b = AttestationService::restore(cfg(), DhGroup::test_group(), net, &snap, eps).unwrap();
    b.run_until(140_000);
    let snap = b.snapshot();
    let (net, eps) = b.into_endpoints();
    let mut b = AttestationService::restore(cfg(), DhGroup::test_group(), net, &snap, eps).unwrap();
    b.run_until(200_000);

    assert_eq!(a.snapshot(), b.snapshot(), "double crash-restart diverged");
}

#[test]
fn restore_rejects_mismatched_endpoints_and_garbage() {
    let mut svc = two_device_fleet(31);
    svc.run_until(60_000);
    let snap = svc.snapshot();
    let (net, mut endpoints) = svc.into_endpoints();

    // Garbage bytes: typed errors, never a panic.
    assert_eq!(
        AttestationService::restore(
            cfg(),
            DhGroup::test_group(),
            perfect_net(1),
            &[],
            Vec::new()
        )
        .err(),
        Some(SnapshotError::Truncated),
    );
    assert!(matches!(
        AttestationService::restore(
            cfg(),
            DhGroup::test_group(),
            perfect_net(1),
            b"not a snapshot at all",
            Vec::new()
        ),
        Err(SnapshotError::BadMagic)
    ));
    let mut truncated = snap.clone();
    truncated.truncate(snap.len() - 3);
    assert!(matches!(
        AttestationService::restore(
            cfg(),
            DhGroup::test_group(),
            perfect_net(1),
            &truncated,
            Vec::new()
        ),
        Err(SnapshotError::Truncated)
    ));

    // A lost endpoint is a different fleet, not a restart.
    let dropped = endpoints.pop().expect("two endpoints");
    let dropped_name = dropped.node.member.name.clone();
    match AttestationService::restore(cfg(), DhGroup::test_group(), net, &snap, endpoints) {
        Err(SnapshotError::MissingEndpoint(name)) => assert_eq!(name, dropped_name),
        other => panic!(
            "expected MissingEndpoint, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }

    // A foreign endpoint the snapshot doesn't know is rejected too.
    let mut one = AttestationService::new(cfg(), DhGroup::test_group(), perfect_net(2));
    one.join(member("gpu-a", 41), enclave(61));
    one.run_until(60_000);
    let one_snap = one.snapshot();
    let mut two = two_device_fleet(32);
    two.run_until(60_000);
    let (net2, eps2) = two.into_endpoints();
    assert!(matches!(
        AttestationService::restore(cfg(), DhGroup::test_group(), net2, &one_snap, eps2),
        Err(SnapshotError::UnknownDevice(name)) if name == "gpu-b"
    ));
}

/// The recovery fleet with the PR-7 evidence layer switched on: epochs
/// seal every 60k ticks and freshness decays, so a crash has chain
/// heads, sealed roots and decay timers to lose.
fn evidence_cfg() -> ServiceConfig {
    ServiceConfig {
        epoch_interval: 60_000,
        freshness: FreshnessPolicy {
            stale_after: 120_000,
            degraded_after: 240_000,
        },
        ..cfg()
    }
}

fn evidence_fleet(seed: u64) -> AttestationService<SimNet> {
    let mut svc = AttestationService::new(evidence_cfg(), DhGroup::test_group(), jittery_net(seed));
    svc.join(member("gpu-a", 41), enclave(61));
    svc.join(member("gpu-b", 42), enclave(62));
    svc
}

#[test]
fn mid_epoch_crash_preserves_chain_heads_and_epoch_roots() {
    for seed in [51u64, 52] {
        // Crash inside the second epoch: after the 60k seal, before the
        // 120k one, with evidence appended since the seal.
        let crash_at = 90_000;
        let end_at = 250_000;

        // Universe A: never crashes.
        let mut a = evidence_fleet(seed);
        a.run_until(end_at);

        // Universe B: crashes mid-epoch and restores from the snapshot.
        let mut b = evidence_fleet(seed);
        b.run_until(crash_at);
        assert_eq!(
            b.sealed_epochs().len(),
            1,
            "seed {seed}: the crash point must be mid-epoch, one seal in"
        );
        let heads: Vec<(&str, [u8; 32], u64)> = ["gpu-a", "gpu-b"]
            .iter()
            .map(|n| {
                let c = b.evidence_of(n).expect("chain established");
                assert!(
                    c.seq() > b.sealed_epochs()[0].leaves[0].seq,
                    "seed {seed}: {n} must have evidence newer than the seal"
                );
                (*n, c.head(), c.seq())
            })
            .collect();
        let snap = b.snapshot();
        let (net, eps) = b.into_endpoints(); // control plane dies here
        let mut b =
            AttestationService::restore(evidence_cfg(), DhGroup::test_group(), net, &snap, eps)
                .expect("mid-epoch snapshot restores");

        // Chain heads cross the crash byte-identically.
        for (name, head, seq) in &heads {
            let c = b.evidence_of(name).expect("chain restored");
            assert_eq!(
                c.head(),
                *head,
                "seed {seed}: {name} chain head changed across restore"
            );
            assert_eq!(c.seq(), *seq, "seed {seed}: {name} chain length changed");
        }

        b.run_until(end_at);

        // The next sealed root (and every one after) is bit-identical to
        // the uninterrupted twin's.
        assert!(
            a.sealed_epochs().iter().any(|e| e.at > crash_at),
            "seed {seed}: horizon must seal an epoch after the crash point"
        );
        assert_eq!(
            a.sealed_epochs(),
            b.sealed_epochs(),
            "seed {seed}: sealed epochs diverged across the crash"
        );
        assert_eq!(
            a.snapshot(),
            b.snapshot(),
            "seed {seed}: binary state diverged after mid-epoch crash"
        );

        // And the restored control plane still mints verifiable reports.
        let report = b.report_for("gpu-a").expect("epoch sealed with gpu-a");
        let root = b.sealed_epochs().last().unwrap().root;
        let key = b.evidence_key_of("gpu-a").unwrap();
        verify_report(&report, &root, &key, b.now())
            .expect("post-restore report verifies standalone");
    }
}

/// The recovery fleet replicated across an N = 4 verifier quorum with
/// one replica turned Byzantine, so a crash has *quorum* state to lose:
/// per-replica suspicion flags, dissent counts, rolling evidence-view
/// digests, and the vote records already sealed into device chains.
fn quorum_cfg() -> ServiceConfig {
    ServiceConfig {
        epoch_interval: 60_000,
        quorum: QuorumConfig {
            verifiers: 4,
            seed: 0x51D,
        },
        ..cfg()
    }
}

fn quorum_fleet(seed: u64) -> AttestationService<SimNet> {
    let mut svc = AttestationService::new(quorum_cfg(), DhGroup::test_group(), jittery_net(seed));
    svc.join(member("gpu-a", 41), enclave(61));
    svc.join(member("gpu-b", 42), enclave(62));
    // Replica 2 lies from the start (in both universes, so the twin
    // histories stay comparable): every verdict is disputed, flagged,
    // and sealed — non-trivial quorum state for the crash to threaten.
    svc.quorum_mut()
        .unwrap()
        .set_behavior(2, VerifierBehavior::Invert);
    svc
}

#[test]
fn multi_verifier_crash_restore_is_byte_identical() {
    for seed in [71u64, 72] {
        // Crash mid-epoch (after the 60k seal, before the 120k one).
        let crash_at = 90_000;
        let end_at = 250_000;

        // Universe A: never crashes.
        let mut a = quorum_fleet(seed);
        a.run_until(end_at);

        // Universe B: identical twin, killed mid-epoch.
        let mut b = quorum_fleet(seed);
        b.run_until(crash_at);

        // The crash point really holds live quorum state.
        let pre = b.quorum().unwrap().clone();
        assert!(pre.rounds >= 2, "seed {seed}: quorum must have voted");
        assert!(
            pre.disputes >= 1,
            "seed {seed}: the liar must have dissented"
        );
        assert!(
            pre.replicas()[2].suspected,
            "seed {seed}: liar flagged pre-crash"
        );
        assert!(pre.replicas()[2].dissents >= 1);
        assert_eq!(pre.replicas()[2].behavior, VerifierBehavior::Invert);
        assert!(
            pre.honest_views_agree(),
            "seed {seed}: honest views agree pre-crash"
        );

        let snap = b.snapshot();
        let (net, eps) = b.into_endpoints(); // control plane dies here
        let mut b =
            AttestationService::restore(quorum_cfg(), DhGroup::test_group(), net, &snap, eps)
                .expect("quorum snapshot restores");

        // Every replica crosses the crash intact: behavior, suspicion,
        // dissent count and the rolling view digest (vote keys are
        // re-derived from the config seed, not stored).
        assert_eq!(
            b.quorum().unwrap(),
            &pre,
            "seed {seed}: replica state changed across restore"
        );

        b.run_until(end_at);

        // Quorum verdicts, evidence chains, sealed epochs, event log:
        // all byte-identical to the universe that never crashed.
        assert_eq!(
            a.quorum().unwrap(),
            b.quorum().unwrap(),
            "seed {seed}: quorum verdict state diverged after the crash"
        );
        for n in ["gpu-a", "gpu-b"] {
            assert_eq!(
                a.evidence_of(n).unwrap().head(),
                b.evidence_of(n).unwrap().head(),
                "seed {seed}: {n} evidence head diverged"
            );
        }
        assert_eq!(
            a.snapshot_json(),
            b.snapshot_json(),
            "seed {seed}: state diverged after quorum crash-restart"
        );
        assert_eq!(
            a.snapshot(),
            b.snapshot(),
            "seed {seed}: binary state diverged after quorum crash-restart"
        );
        // The run was not vacuous: disputes kept accruing post-crash.
        assert!(
            a.quorum().unwrap().disputes > pre.disputes,
            "seed {seed}: no quorum activity after the crash point"
        );
    }
}

/// Returns (rounds passed, rounds failed, wrong-value failures) for one
/// device after a given virtual time.
fn tally_after(svc: &AttestationService<SimNet>, name: &str, after: u64) -> (u32, u32, u32) {
    let mut passed = 0;
    let mut failed = 0;
    let mut wrong = 0;
    for e in svc.log().events() {
        if e.at <= after || e.device != name {
            continue;
        }
        match &e.kind {
            EventKind::RoundPassed { .. } => passed += 1,
            EventKind::RoundFailed { reason, .. } => {
                failed += 1;
                if *reason == FailReason::WrongValue {
                    wrong += 1;
                }
            }
            _ => {}
        }
    }
    (passed, failed, wrong)
}

#[test]
fn transient_fault_degrades_then_reconverges_persistent_fault_quarantines() {
    // Two honest devices on a perfect network; the chaos engine injects
    // a transient fault into one and a persistent fault into the other.
    let mut svc = AttestationService::new(cfg(), DhGroup::test_group(), perfect_net(77));
    svc.join(member("gpu-flaky", 41), enclave(61));
    svc.join(member("gpu-rotten", 42), enclave(62));
    svc.run_for(45_000);
    for name in ["gpu-flaky", "gpu-rotten"] {
        assert_eq!(svc.state_of(name), Some(DeviceState::Trusted), "{name}");
    }
    let fault_at = svc.now();

    // gpu-flaky: one bit of the next round's challenge flips in device
    // memory after the DMA — the checksum is honest but over the wrong
    // challenge. The round after that, a fresh challenge is written and
    // the fault is gone: a classic transient.
    {
        let session = svc.session_mut("gpu-flaky").unwrap();
        let addr = session.build().layout.challenge_addr(0);
        let next_run = session.dev.fault_run_index();
        session.dev.install_fault_hook(Box::new(
            FaultPlan::new().at(next_run, DeviceFault::FlipBit { addr, bit: 3 }),
        ));
    }
    // gpu-rotten: a stuck bit on the challenge DMA path — the same flip
    // fires on every run from now on, so every round computes an honest
    // checksum over a corrupted challenge: a persistent fault that is
    // detected deterministically. (A single flip in the pseudo-random
    // fill is also persistent but only *probabilistically* detected with
    // test-tiny parameters — the §7 coverage argument — so the stuck
    // line is the deterministic persistent fixture.)
    {
        let session = svc.session_mut("gpu-rotten").unwrap();
        let addr = session.build().layout.challenge_addr(0);
        let next_run = session.dev.fault_run_index();
        let plan = (0..64).fold(FaultPlan::new(), |p, i| {
            p.at(next_run + i, DeviceFault::FlipBit { addr, bit: 6 })
        });
        session.dev.install_fault_hook(Box::new(plan));
    }

    // One full re-attest interval: both faulted rounds must FAIL — a
    // pass here would be a false accept.
    svc.run_for(60_000);
    let (flaky_passed, flaky_failed, flaky_wrong) = tally_after(&svc, "gpu-flaky", fault_at);
    assert_eq!(
        flaky_failed, 1,
        "transient fault must cost exactly one round"
    );
    assert_eq!(
        flaky_wrong, 1,
        "transient flip is detected as a wrong value"
    );
    let _ = flaky_passed;

    // Long horizon: the transient device reconverges to Trusted inside
    // its backoff budget; the corrupted one burns the wrong-value budget
    // into Quarantined with zero false accepts along the way.
    svc.run_for(400_000);
    assert_eq!(svc.state_of("gpu-flaky"), Some(DeviceState::Trusted));
    let flaky = svc.health_of("gpu-flaky").unwrap();
    assert_eq!(flaky.score, 100, "recovered device is fully healthy again");
    let (passed_later, _, _) = tally_after(&svc, "gpu-flaky", fault_at);
    assert!(passed_later >= 2, "flaky device passes rounds again");

    assert_eq!(svc.state_of("gpu-rotten"), Some(DeviceState::Quarantined));
    let rotten = svc.health_of("gpu-rotten").unwrap();
    assert_eq!(rotten.score, 0, "quarantined device scores zero");
    let (rotten_passed, rotten_failed, rotten_wrong) = tally_after(&svc, "gpu-rotten", fault_at);
    assert_eq!(
        rotten_passed, 0,
        "FALSE ACCEPT: corrupted device passed a round"
    );
    assert!(rotten_failed >= 1);
    assert_eq!(
        rotten_wrong, rotten_failed,
        "persistent corruption fails as wrong value every time"
    );

    // The device-side fault engine agrees with the control plane's view:
    // one injected flip cost gpu-flaky one round; every round gpu-rotten
    // failed carried one stuck-bit flip.
    assert_eq!(
        svc.session_mut("gpu-flaky")
            .unwrap()
            .dev
            .faults_applied()
            .flips,
        1
    );
    assert_eq!(
        svc.session_mut("gpu-rotten")
            .unwrap()
            .dev
            .faults_applied()
            .flips,
        rotten_failed as u64
    );
}
