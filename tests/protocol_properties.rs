//! Property-based tests over the protocol building blocks: SAKE message
//! tampering, secure-channel integrity, and checksum sensitivity — the
//! workspace-level counterparts of the paper's Tamarin-verified
//! properties (§8.1: key secrecy, uniqueness, agreement).

// Entire suite gated: `proptest` is not vendored in this dependency-free
// tree. Build with `--features proptest` after re-adding the dev-dependency
// locally to run it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use sage_repro::core::channel::{Role, SecureChannel};
use sage_repro::core::sake::{derive_challenges, SakeDevice, SakeMessage, SakeVerifier};
use sage_repro::crypto::DhGroup;
use sage_repro::vf::{build_vf, expected_checksum, VfParams};

fn entropy(seed: u8) -> impl sage_repro::crypto::EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

/// Runs SAKE with a byte-level tamper of message `step` at `pos`.
fn run_sake_with_tamper(step: usize, pos: usize, flip: u8) -> Result<(), ()> {
    let group = DhGroup::test_group();
    let mut ve = entropy(1);
    let mut de = entropy(9);
    let (mut v, msg) = SakeVerifier::start(group.clone(), &mut ve);
    let mut d = SakeDevice::new(group);
    let c = [11u32, 22, 33, 44, 55, 66, 77, 88];

    let tamper = |s: usize, m: &mut SakeMessage| {
        if s != step || flip == 0 {
            return;
        }
        match m {
            SakeMessage::Challenge { v2 } => v2[pos % 32] ^= flip,
            SakeMessage::Commit { w2, mac } => {
                if pos % 2 == 0 {
                    w2[pos % 32] ^= flip;
                } else {
                    mac[pos % 16] ^= flip;
                }
            }
            SakeMessage::RevealV1 { v1 } => v1[pos % 32] ^= flip,
            SakeMessage::DeviceReveal1 { w1, k, mac_k } => match pos % 3 {
                0 => w1[pos % 32] ^= flip,
                1 => {
                    let i = pos % k.len();
                    k[i] ^= flip;
                }
                _ => mac_k[pos % 16] ^= flip,
            },
            SakeMessage::RevealV0 { v0 } => {
                let i = pos % v0.len();
                v0[i] ^= flip;
            }
            SakeMessage::DeviceReveal0 { w0 } => w0[pos % 32] ^= flip,
        }
    };

    let mut m = msg;
    tamper(0, &mut m);
    let SakeMessage::Challenge { v2 } = m else {
        return Err(());
    };
    v.set_expected_checksum(c);
    // A tampered challenge reaches the device: the device computes the
    // checksum for the tampered seed, which differs from the verifier's.
    let device_c = if step == 0 && flip != 0 {
        [99u32; 8]
    } else {
        c
    };
    let mut m = d.on_challenge(v2, device_c, &mut de);
    tamper(1, &mut m);
    let SakeMessage::Commit { w2, mac } = m else {
        return Err(());
    };
    let mut m = v.on_commit(w2, mac).map_err(|_| ())?;
    tamper(2, &mut m);
    let SakeMessage::RevealV1 { v1 } = m else {
        return Err(());
    };
    let mut m = d.on_reveal_v1(v1).map_err(|_| ())?;
    tamper(3, &mut m);
    let SakeMessage::DeviceReveal1 { w1, k, mac_k } = m else {
        return Err(());
    };
    let mut m = v.on_device_reveal1(w1, k, mac_k).map_err(|_| ())?;
    tamper(4, &mut m);
    let SakeMessage::RevealV0 { v0 } = m else {
        return Err(());
    };
    let mut m = d.on_reveal_v0(v0).map_err(|_| ())?;
    tamper(5, &mut m);
    let SakeMessage::DeviceReveal0 { w0 } = m else {
        return Err(());
    };
    v.on_device_reveal0(w0).map_err(|_| ())?;
    // Completed: keys must agree (key agreement property).
    if v.session_key() == d.session_key() && v.session_key().is_some() {
        Ok(())
    } else {
        Err(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sake_detects_any_single_byte_tamper(
        step in 0usize..6,
        pos in 0usize..32,
        flip in 1u8..=255,
    ) {
        // Any non-zero flip of any protocol message must abort the run.
        prop_assert!(run_sake_with_tamper(step, pos, flip).is_err());
    }

    #[test]
    fn sake_completes_untampered(seed in 0u8..8) {
        let _ = seed;
        prop_assert!(run_sake_with_tamper(0, 0, 0).is_ok());
    }

    #[test]
    fn channel_rejects_any_wire_mutation(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        addr in any::<u32>(),
        confidential in any::<bool>(),
        which in 0usize..4,
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let sk = [0x77u8; 16];
        let mut host = SecureChannel::new(sk, Role::Host);
        let mut dev = SecureChannel::new(sk, Role::Device);
        let mut wire = host.seal(addr, &payload, confidential);
        match which {
            0 => { let i = pos % wire.body.len(); wire.body[i] ^= flip; }
            1 => wire.mac[pos % 16] ^= flip,
            2 => wire.addr ^= flip as u32,
            _ => wire.seq ^= flip as u64,
        }
        prop_assert!(dev.open(&wire).is_err());
    }

    #[test]
    fn channel_round_trips(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        addr in any::<u32>(),
        confidential in any::<bool>(),
    ) {
        let sk = [0x78u8; 16];
        let mut host = SecureChannel::new(sk, Role::Host);
        let mut dev = SecureChannel::new(sk, Role::Device);
        let wire = host.seal(addr, &payload, confidential);
        prop_assert_eq!(dev.open(&wire).unwrap(), payload);
    }

    #[test]
    fn challenge_derivation_injective_ish(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let ca = derive_challenges(&a, 4);
        let cb = derive_challenges(&b, 4);
        if a == b {
            prop_assert_eq!(ca, cb);
        } else {
            prop_assert_ne!(ca, cb);
        }
    }
}

proptest! {
    // The replay is expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn checksum_sensitive_to_challenges(seed_a in any::<u8>(), seed_b in any::<u8>()) {
        let mut params = VfParams::test_tiny();
        params.iterations = 2;
        let build = build_vf(&params, 0x1000, 3).unwrap();
        let mk = |s: u8| -> Vec<[u8; 16]> {
            (0..params.grid_blocks).map(|b| [s.wrapping_add(b as u8); 16]).collect()
        };
        let a = expected_checksum(&build, &mk(seed_a));
        let b = expected_checksum(&build, &mk(seed_b));
        if seed_a == seed_b {
            prop_assert_eq!(a, b);
        } else {
            prop_assert_ne!(a, b);
        }
    }
}
