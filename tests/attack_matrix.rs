//! The attack-matrix conformance suite: every adversary module from
//! `crates/attacks` (paper §8) is mounted against a calibrated,
//! telemetry-attached [`Verifier`] and must be rejected on **both**
//! verdict paths — the classic online-replay path
//! ([`Verifier::check_response`]) and the PR-3 bank-hit fast path
//! ([`Verifier::check_response_precomputed`] fed from a stocked
//! [`ChallengeBank`]). 7 attacks × 2 paths = 14 rejection cases, each
//! asserting the error variant *and* the
//! `verifier_rejects_total{cause, path}` telemetry label, so the
//! observability layer is conformance-tested against the security
//! model, not just against happy-path accounting.
//!
//! | Module     | Mount                                        | Cause       |
//! |------------|----------------------------------------------|-------------|
//! | `datasub`  | tampered fill byte in the checksummed region | wrong_value |
//! | `forge`    | PCIe [`ReplayTap`] replays a stale result    | wrong_value |
//! | `lepc`     | constant substitution in checksummed code    | wrong_value |
//! | `memcopy`  | variant (b): traversal redirect to a copy    | wrong_value |
//! | `nop`      | injected instructions inflate the loop       | too_slow    |
//! | `proxy`    | faster remote GPU + 2× network latency       | too_slow    |
//! | `takeover` | co-dispatched spin kernel steals SM slots    | too_slow    |
//!
//! The evidence-tampering campaigns at the bottom extend the matrix to
//! the PR-7 evidence layer: a [`DeviceReport`] minted by an honest fleet
//! run is doctored per campaign (forked chain, reordered records,
//! stale-evidence replay, wrong-key CMACs, foreign root, clipped proof,
//! inflated claim) and [`verify_report`] must reject each with its exact
//! cause — on histories produced by *both* verdict paths (classic
//! online-replay and the precomputed bank-hit fast path), with the
//! honest report accepted on both (zero false accepts, zero false
//! rejects).

use sage_repro::attacks::{
    datasub, forge::ReplayTap, lepc, memcopy::patch_immediates, nop, proxy::faster_gpu,
    takeover::spin_kernel, Detection,
};
use sage_repro::core::{
    agent::DeviceAgent, multi::FleetMember, timing::Calibration, GpuSession, SageError, Verifier,
};
use sage_repro::crypto::{DhGroup, EntropySource};
use sage_repro::evidence::{
    verify_report, DeviceReport, EvidencePath, EvidencePayload, EvidenceRecord, Freshness,
    FreshnessPolicy, ReportError, StageVerdict,
};
use sage_repro::gpu::{BusTap, Device, DeviceConfig, LaunchParams};
use sage_repro::isa::Opcode;
use sage_repro::service::{
    covers, epochs_to_detect, AttestationService, DeviceState, EventKind, FailReason, LinkProfile,
    Policy, QuorumConfig, SamplingConfig, ServiceConfig, SimNet, VerifierBehavior,
};
use sage_repro::sgx::SgxPlatform;
use sage_repro::telemetry::{MetricValue, Registry};
use sage_repro::vf::{BankConfig, VfParams};

/// Which rejection the attack must produce, mirroring the telemetry
/// `cause` label values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Cause {
    WrongValue,
    TooSlow,
}

impl Cause {
    fn label(self) -> &'static str {
        match self {
            Cause::WrongValue => "wrong_value",
            Cause::TooSlow => "too_slow",
        }
    }
}

/// An attack mounted and ready to be judged: a calibrated verifier plus
/// the attacked device's response to one fresh-challenge round.
/// `respond` returns `Some(got)` for the value actually read back from
/// the device, or `None` when the adversary preserves the correct value
/// (timing-only attacks — the harness substitutes the expected
/// checksum); the second element is the measured exchange time.
/// A device's answer to one round: `Some(got)` for the value actually
/// read back, `None` when the adversary preserves the correct value;
/// plus the measured exchange time.
type Response = (Option<[u32; 8]>, u64);
/// The attacked device, as the harness drives it: challenges in,
/// response out.
type Responder = Box<dyn FnMut(&[[u8; 16]]) -> Response>;

struct Scenario {
    verifier: Verifier,
    respond: Responder,
    cause: Cause,
}

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

/// Installs a session and calibrates a fresh verifier on it while the
/// device is still honest (attacks are mounted afterwards).
fn calibrated(
    cfg: &DeviceConfig,
    params: &VfParams,
    fill_seed: u32,
    cal_runs: usize,
    seed: u8,
) -> (GpuSession, Verifier) {
    let dev = Device::new(cfg.clone());
    let mut session = GpuSession::install(dev, params, fill_seed).unwrap();
    let enclave = SgxPlatform::new([seed; 16]).launch(b"verifier", &mut entropy(seed));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    verifier.calibrate(&mut session, cal_runs).unwrap();
    (session, verifier)
}

/// Reads one counter series out of the registry, by exact label match.
fn counter_value(reg: &Registry, name: &str, labels: &[(&str, &str)]) -> u64 {
    for (n, ls, v) in reg.collect() {
        let same = n == name
            && ls.len() == labels.len()
            && ls
                .iter()
                .zip(labels)
                .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2);
        if same {
            match v {
                MetricValue::Counter(c) => return c,
                other => panic!("{name} is not a counter: {other:?}"),
            }
        }
    }
    panic!("series {name}{labels:?} not found");
}

fn assert_cause(attack: &str, path: &str, err: &SageError, cause: Cause) {
    let ok = matches!(
        (cause, err),
        (Cause::WrongValue, SageError::ChecksumMismatch { .. })
            | (Cause::TooSlow, SageError::TimingExceeded { .. })
    );
    assert!(ok, "{attack}/{path}: expected {cause:?}, got {err:?}");
}

/// Judges the mounted attack on both verdict paths and asserts the
/// rejection plus its telemetry labels. This is the shared core of all
/// 14 matrix cases.
fn assert_rejected_on_both_paths(attack: &'static str, mut sc: Scenario) {
    let reg = Registry::new();
    sc.verifier.attach_telemetry(&reg, &[("attack", attack)]);
    let cause = sc.cause.label();

    // Classic path: fresh challenges, online replay inside the verdict.
    let ch = sc.verifier.generate_challenges();
    let (got, measured) = (sc.respond)(&ch);
    let got = got.unwrap_or_else(|| sc.verifier.expected(&ch));
    let err = sc.verifier.check_response(&ch, got, measured).unwrap_err();
    assert_cause(attack, "classic", &err, sc.cause);
    assert_eq!(
        counter_value(
            &reg,
            "verifier_rejects_total",
            &[("attack", attack), ("cause", cause), ("path", "classic")],
        ),
        1,
        "{attack}: classic reject must be labeled cause={cause}",
    );

    // PR-3 bank-hit fast path: the expected checksum comes out of a
    // synchronously stocked bank (workers = 0, deterministic), so the
    // judged round does zero replay.
    sc.verifier.enable_fast_path(BankConfig {
        capacity: 4,
        workers: 0,
    });
    sc.verifier.prefill_rounds(2);
    let (ch, precomputed) = sc.verifier.prepare_round();
    let expected = precomputed.expect("prefilled workers=0 bank must hit");
    let (got, measured) = (sc.respond)(&ch);
    let got = got.unwrap_or(expected);
    let err = sc
        .verifier
        .check_response_precomputed(expected, got, measured)
        .unwrap_err();
    assert_cause(attack, "precomputed", &err, sc.cause);
    assert_eq!(
        counter_value(
            &reg,
            "verifier_rejects_total",
            &[
                ("attack", attack),
                ("cause", cause),
                ("path", "precomputed")
            ],
        ),
        1,
        "{attack}: fast-path reject must be labeled cause={cause}",
    );

    // The bank round that fed the fast path is visible under the same
    // attack label, and neither path accepted anything.
    assert!(counter_value(&reg, "vf_bank_hits_total", &[("attack", attack)]) >= 1);
    for path in ["classic", "precomputed"] {
        assert_eq!(
            counter_value(
                &reg,
                "verifier_accepts_total",
                &[("attack", attack), ("path", path)],
            ),
            0,
            "{attack}: no accept may leak through on the {path} path",
        );
    }
}

/// Data substitution (§8): one tampered byte in the checksummed fill.
/// `iterations = 40` gives the pseudo-random traversal the same
/// near-certain coverage the module's own experiment uses.
#[test]
fn datasub_rejected_on_both_paths() {
    let mut params = VfParams::test_tiny();
    params.iterations = 40;

    // Module-level conformance: the packaged mount agrees on the cause.
    assert_eq!(
        datasub::naive_tamper(&DeviceConfig::sim_tiny(), &params, 256).unwrap(),
        Detection::WrongChecksum
    );

    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0xDA7A, 5, 11);
    let layout = session.build().layout;
    let addr = layout.base + layout.fill_off + 256;
    let orig = session.dev.peek(addr, 1).unwrap()[0];
    session.dev.poke(addr, &[orig ^ 0x3C]).unwrap();

    assert_rejected_on_both_paths(
        "datasub",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, measured) = session.run_checksum(ch).unwrap();
                (Some(got), measured)
            }),
            cause: Cause::WrongValue,
        },
    );
}

/// Pre-computation / replay (§8): a PCIe interposer records the first
/// result readback and substitutes it into every later round. Fresh
/// challenges make the stale answer wrong.
#[test]
fn forge_rejected_on_both_paths() {
    let params = VfParams::test_tiny();
    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0x4E94, 5, 23);
    let result_addr = session.build().layout.result_addr();
    session
        .dev
        .install_bus_tap(Box::new(ReplayTap::new(result_addr)));

    // Recording round: the tap captures this (honest) result and will
    // replay it against every fresh challenge the harness issues.
    let recorded_ch: Vec<[u8; 16]> = (0..params.grid_blocks)
        .map(|b| [b as u8 ^ 0x17; 16])
        .collect();
    session.run_checksum(&recorded_ch).unwrap();

    assert_rejected_on_both_paths(
        "forge",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, measured) = session.run_checksum(ch).unwrap();
                (Some(got), measured)
            }),
            cause: Cause::WrongValue,
        },
    );
}

/// LEPC constant substitution (§5.2.2). First the module's premise,
/// executably: a `MOV` of the forged PC reproduces `LEPC` bit-exactly.
/// Then the consequence for SAGE: the substituted constant lives in
/// checksummed bytes (here the reference loop image's absolute epilog
/// branch target), so the traversal folds the forgery into the value.
#[test]
fn lepc_rejected_on_both_paths() {
    // Premise: constant substitution perfectly forges a PC-folding
    // checksum (why folding LEPC alone is not a defence).
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    let out = dev.alloc(4).unwrap();
    let base = dev.alloc(1024).unwrap();
    let genuine = lepc::pc_checksum_kernel(out, true, 0);
    let (honest_value, _) = lepc::run_at(&mut dev, &genuine, base, out).unwrap();
    let base2 = dev.alloc(1024).unwrap();
    let forged = lepc::pc_checksum_kernel(out, false, base + 16);
    let (forged_value, _) = lepc::run_at(&mut dev, &forged, base2, out).unwrap();
    assert_eq!(forged_value, honest_value, "LEPC forged bit-exactly");

    // Consequence on the real VF: substitute the absolute epilog-branch
    // immediate inside the (checksummed, never-executed) reference loop
    // image — the same edit a relocating adversary needs — and the
    // value verdict catches it.
    let mut params = VfParams::test_tiny();
    params.iterations = 40;
    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0x1E9C, 5, 31);
    let layout = session.build().layout;
    let ref_addr = layout.base + layout.ref_loop_off;
    let mut ref_img = session.dev.peek(ref_addr, layout.loop_bytes).unwrap();
    let patched = patch_immediates(
        &mut ref_img,
        Opcode::Bra,
        layout.base + layout.epilog_off,
        layout.base + layout.epilog_off + 64,
    );
    assert!(
        patched >= 1,
        "reference loop must carry the absolute target"
    );
    session.dev.poke(ref_addr, &ref_img).unwrap();

    assert_rejected_on_both_paths(
        "lepc",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, measured) = session.run_checksum(ch).unwrap();
                (Some(got), measured)
            }),
            cause: Cause::WrongValue,
        },
    );
}

/// Bus tap for the memory-copy mount: rewrites the traversal-base
/// immediates in every upload of the executable loop copies, exactly as
/// the module's variant (b) does (the adversary's persistent in-line
/// patch survives the driver's per-round repair upload).
struct LeaRedirect {
    exec_base: u32,
    exec_len: u32,
    old: u32,
    new: u32,
}

impl BusTap for LeaRedirect {
    fn on_h2d(&mut self, addr: u32, data: &mut Vec<u8>) {
        if addr >= self.exec_base && addr < self.exec_base + self.exec_len {
            patch_immediates(data, Opcode::Lea, self.old, self.new);
        }
    }
}

/// Memory copy, variant (b) (§8, Fig. 7): tamper the original region and
/// redirect the traversal to a pristine copy. The fold includes the
/// absolute data pointer, so the redirect itself flips the value.
#[test]
fn memcopy_rejected_on_both_paths() {
    let mut params = VfParams::test_tiny();
    params.iterations = 10;
    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0xB00B, 5, 41);
    let layout = session.build().layout;

    let copy_base = session.dev.alloc(layout.data_bytes).unwrap();
    let pristine = session.dev.peek(layout.base, layout.data_bytes).unwrap();
    session.dev.poke(copy_base, &pristine).unwrap();
    let t = layout.base + layout.fill_off + 128;
    session.dev.poke(t, &[0xEE]).unwrap();
    session.dev.install_bus_tap(Box::new(LeaRedirect {
        exec_base: layout.base + layout.exec_loops_off,
        exec_len: layout.loop_bytes * layout.num_blocks,
        old: layout.base,
        new: copy_base,
    }));

    assert_rejected_on_both_paths(
        "memcopy",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, measured) = session.run_checksum(ch).unwrap();
                (Some(got), measured)
            }),
            cause: Cause::WrongValue,
        },
    );
}

/// Instruction injection (§7.2, experiment 2): the injected VF computes
/// the correct value but every loop pass pays for the extra
/// instructions. The verifier's calibration comes from genuine runs of
/// the same configuration; the injected measurements must always exceed
/// the threshold.
#[test]
fn nop_rejected_on_both_paths() {
    let (cfg, mut params) = nop::timing_test_setup();
    params.iterations = 50;
    let genuine = nop::timing_samples(&cfg, &params, 0x5EED, 4).unwrap();
    let calibration = Calibration::from_samples(&genuine);

    let mut injected_params = params;
    injected_params.injected_nops = 16;
    let mut injected = nop::timing_samples(&cfg, &injected_params, 0x5EED, 2).unwrap();
    assert!(
        injected.iter().min().unwrap() > &calibration.threshold(),
        "injected runs must separate from the genuine threshold"
    );

    // The verifier replays the genuine build; the adversary's responses
    // carry the correct value (None) but the injected timings.
    let dev = Device::new(cfg.clone());
    let session = GpuSession::install(dev, &params, 0x5EED).unwrap();
    let enclave = SgxPlatform::new([7u8; 16]).launch(b"verifier", &mut entropy(53));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    verifier.set_calibration(calibration);

    assert_rejected_on_both_paths(
        "nop",
        Scenario {
            verifier,
            respond: Box::new(move |_ch| (None, injected.pop().expect("one sample per round"))),
            cause: Cause::TooSlow,
        },
    );
}

/// Proxy attack (§8): a faster remote GPU computes the correct value,
/// but the answer crosses the network twice. Same build (same params,
/// fill seed and allocation order), so only the timing verdict fires.
#[test]
fn proxy_rejected_on_both_paths() {
    const NETWORK_LATENCY: u64 = 70_000;
    let params = VfParams::test_tiny();
    let cfg = DeviceConfig::sim_tiny();
    let (_genuine_session, verifier) = calibrated(&cfg, &params, 0x9409, 6, 61);

    let proxy_dev = Device::new(faster_gpu(&cfg));
    let mut proxy_session = GpuSession::install(proxy_dev, &params, 0x9409).unwrap();

    assert_rejected_on_both_paths(
        "proxy",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, cycles) = proxy_session.run_checksum(ch).unwrap();
                (Some(got), cycles + 2 * NETWORK_LATENCY)
            }),
            cause: Cause::TooSlow,
        },
    );
}

/// Resource takeover (§8): the adversary queues a spin kernel ahead of
/// the VF. The VF occupies every SM at full occupancy, so the stolen
/// slots delay the checksum visibly — value correct, time over budget.
#[test]
fn takeover_rejected_on_both_paths() {
    let mut params = VfParams::test_tiny();
    params.iterations = 8;
    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0x7A4E, 6, 71);

    let mut spin = spin_kernel(3000);
    let spin_base = session.dev.alloc(spin.byte_len() as u32).unwrap();
    spin.relocate(spin_base);
    session.dev.poke(spin_base, &spin.encode()).unwrap();

    let respond = Box::new(move |ch: &[[u8; 16]]| {
        // Malicious host runtime: replicate the driver's restore flow,
        // then dispatch the spin kernel *before* the VF.
        let layout = session.build().layout;
        let exec_off = layout.exec_loops_off as usize;
        let exec_len = (layout.loop_bytes * layout.num_blocks) as usize;
        let exec_img = session.build().image[exec_off..exec_off + exec_len].to_vec();
        session
            .dev
            .memcpy_h2d(layout.base + layout.exec_loops_off, &exec_img)
            .unwrap();
        session
            .dev
            .memcpy_h2d(layout.result_addr(), &[0u8; 32])
            .unwrap();
        session.dev.take_bus_cycles();
        for (b, c) in ch.iter().enumerate() {
            session
                .dev
                .memcpy_h2d(layout.challenge_addr(b as u32), c)
                .unwrap();
        }
        session
            .dev
            .launch(LaunchParams {
                ctx: session.ctx,
                entry_pc: spin_base,
                grid_dim: 2,
                block_dim: 256,
                regs_per_thread: 16,
                smem_bytes: 0,
                params: vec![],
            })
            .unwrap();
        let vf_id = session
            .dev
            .launch(LaunchParams {
                ctx: session.ctx,
                entry_pc: layout.entry_addr(),
                grid_dim: params.grid_blocks,
                block_dim: params.block_threads,
                regs_per_thread: session.build().regs_per_thread(),
                smem_bytes: session.build().smem_bytes(),
                params: vec![],
            })
            .unwrap();
        let report = session.dev.run().unwrap();
        let raw = session.dev.memcpy_d2h(layout.result_addr(), 32).unwrap();
        let measured = session.dev.take_bus_cycles() + report.launches[vf_id].completion_cycle;
        let mut got = [0u32; 8];
        for (j, cell) in got.iter_mut().enumerate() {
            *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().expect("4 bytes"));
        }
        (Some(got), measured)
    });

    assert_rejected_on_both_paths(
        "takeover",
        Scenario {
            verifier,
            respond,
            cause: Cause::TooSlow,
        },
    );
}

// ---------------------------------------------------------------------
// Evidence-tampering campaigns (PR-7): doctored DeviceReports against
// verify_report, on histories from both verdict paths.
// ---------------------------------------------------------------------

/// An honest fleet history's verifiable artifacts: the minted report,
/// the trusted epoch root, the device's evidence key, and the service
/// clock the report was asserted at.
struct HonestReport {
    report: DeviceReport,
    root: [u8; 32],
    key: [u8; 16],
    now: u64,
}

/// Drives a deterministic two-device fleet (perfect links, synchronous
/// bank refills) long enough to seal two epochs and leave a non-trivial
/// chain suffix — one checksum round plus two liveness probes — then
/// mints gpu-a's report. `bank_capacity = 0` forces every verdict down
/// the classic online-replay path; `> 0` keeps them all on the
/// precomputed bank-hit fast path, and the recorded per-round
/// [`EvidencePath`] is asserted to prove which path produced the
/// history.
fn honest_fleet_report(bank_capacity: usize, expected_path: EvidencePath) -> HonestReport {
    fn fleet_member(name: &str, seed: u8) -> FleetMember {
        let mut params = VfParams::test_tiny();
        params.iterations = 5;
        let session =
            GpuSession::install(Device::new(DeviceConfig::sim_tiny()), &params, 0xF1EE7).unwrap();
        let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))));
        m.name = name.to_string();
        m
    }

    let net = SimNet::new(
        42,
        LinkProfile {
            latency: 100,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let cfg = ServiceConfig {
        reattest_interval: 20_000,
        latency_budget: 200,
        deadline_slack: 2_000,
        calibration_runs: 5,
        policy: Policy::default(),
        bank_capacity,
        bank_workers: 0,
        prefill_rounds: 0,
        epoch_interval: 30_000,
        freshness: FreshnessPolicy {
            stale_after: 60_000,
            degraded_after: 120_000,
        },
        ..ServiceConfig::default()
    };
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);
    svc.join(
        fleet_member("gpu-a", 41),
        SgxPlatform::new([7u8; 16]).launch(b"svc-verifier", &mut entropy(61)),
    );
    svc.join(
        fleet_member("gpu-b", 42),
        SgxPlatform::new([7u8; 16]).launch(b"svc-verifier", &mut entropy(62)),
    );
    svc.run_for(82_000);
    assert!(svc.probe_device("gpu-a").unwrap(), "liveness probe answers");
    assert!(svc.probe_device("gpu-a").unwrap(), "second probe answers");

    // The history really came from the path under test.
    let rounds: Vec<EvidencePath> = svc
        .evidence_of("gpu-a")
        .unwrap()
        .records()
        .iter()
        .filter_map(|r| match r.payload {
            EvidencePayload::ChecksumRound { path, .. } => Some(path),
            _ => None,
        })
        .collect();
    assert!(!rounds.is_empty(), "fleet run must record checksum rounds");
    assert!(
        rounds.iter().all(|p| *p == expected_path),
        "bank_capacity={bank_capacity}: rounds must ride the {expected_path:?} path, got {rounds:?}"
    );

    let report = svc.report_for("gpu-a").expect("epoch sealed with gpu-a");
    assert!(
        report.suffix.len() >= 3,
        "campaigns need a reorderable suffix, got {}",
        report.suffix.len()
    );
    HonestReport {
        root: svc.sealed_epochs().last().unwrap().root,
        key: svc.evidence_key_of("gpu-a").unwrap(),
        now: report.claim.asserted_at,
        report,
    }
}

/// Re-seals a doctored report under the device's own evidence key, so
/// verification penetrates past the envelope MAC to the inner check the
/// campaign targets (an attacker holding the key still cannot rewrite
/// history).
fn reseal(r: DeviceReport, key: &[u8; 16]) -> DeviceReport {
    DeviceReport::seal(
        r.epoch,
        r.leaf,
        r.epoch_root,
        r.proof,
        r.suffix,
        r.claim,
        key,
    )
}

/// Runs every evidence-tampering campaign against one honest history
/// and asserts the exact reject cause for each — plus that the honest
/// report itself still verifies at its own clock (no false rejects) and
/// that nothing doctored ever comes back `Ok` (no false accepts).
fn assert_campaigns_rejected(h: &HonestReport) {
    assert_eq!(
        verify_report(&h.report, &h.root, &h.key, h.now),
        Ok(Freshness::Trusted),
        "the honest report must verify at its own clock"
    );

    // Campaign: forked chain. A valid prefix, then history diverges —
    // suffix[1] is re-signed (correct key, correct back-link) with a
    // doctored payload, so suffix[2]'s stored `prev` no longer matches.
    let mut forked = h.report.clone();
    let fork_at = forked.suffix[1].clone();
    let doctored = match fork_at.payload {
        EvidencePayload::ChannelLiveness { nonce, verdict } => EvidencePayload::ChannelLiveness {
            nonce: nonce ^ 1,
            verdict,
        },
        EvidencePayload::ChecksumRound {
            round,
            measured_cycles,
            threshold_cycles,
            verdict,
            path,
        } => EvidencePayload::ChecksumRound {
            round,
            measured_cycles: measured_cycles.wrapping_add(1),
            threshold_cycles,
            verdict,
            path,
        },
        other => other,
    };
    forked.suffix[1] =
        EvidenceRecord::seal(fork_at.seq, fork_at.at, doctored, fork_at.prev, &h.key);
    let broken_seq = forked.suffix[2].seq;
    assert_eq!(
        verify_report(&reseal(forked, &h.key), &h.root, &h.key, h.now),
        Err(ReportError::BrokenLink { seq: broken_seq }),
        "forked chain must be rejected as broken_link"
    );

    // Campaign: reordered records. Swapping two suffix records breaks
    // the sequence before anything else.
    let mut reordered = h.report.clone();
    reordered.suffix.swap(0, 1);
    let expected_seq = h.report.suffix[0].seq;
    let got_seq = h.report.suffix[1].seq;
    assert_eq!(
        verify_report(&reseal(reordered, &h.key), &h.root, &h.key, h.now),
        Err(ReportError::BadSeq {
            expected: expected_seq,
            got: got_seq,
        }),
        "reordered records must be rejected as bad_seq"
    );

    // Campaign: stale-evidence replay. The untouched report presented
    // after the degraded window claims a trust level the policy no
    // longer yields.
    let replay_at = h.now + h.report.claim.policy.degraded_after;
    assert_eq!(
        verify_report(&h.report, &h.root, &h.key, replay_at),
        Err(ReportError::StaleEvidence {
            claimed: Freshness::Trusted,
            recomputed: Freshness::Degraded,
        }),
        "replayed stale report must be rejected as stale_evidence"
    );

    // Campaign: wrong-key CMAC, envelope level — a relying party holding
    // the real key sees a report MAC'd under any other key fail first.
    let foreign = DeviceReport::seal(
        h.report.epoch,
        h.report.leaf.clone(),
        h.report.epoch_root,
        h.report.proof.clone(),
        h.report.suffix.clone(),
        h.report.claim,
        &[0x5C; 16],
    );
    assert_eq!(
        verify_report(&foreign, &h.root, &h.key, h.now),
        Err(ReportError::BadReportTag),
        "re-keyed envelope must be rejected as bad_report_tag"
    );

    // Campaign: wrong-key CMAC, record level — one suffix record
    // re-signed under a foreign key inside a correctly sealed envelope.
    let mut rekeyed = h.report.clone();
    let rec = rekeyed.suffix[0].clone();
    rekeyed.suffix[0] = EvidenceRecord::seal(rec.seq, rec.at, rec.payload, rec.prev, &[0x5C; 16]);
    assert_eq!(
        verify_report(&reseal(rekeyed, &h.key), &h.root, &h.key, h.now),
        Err(ReportError::BadTag { seq: rec.seq }),
        "re-keyed record must be rejected as bad_tag"
    );

    // Campaign: foreign epoch root — the report anchors to an epoch the
    // relying party does not trust.
    let mut wrong_root = h.root;
    wrong_root[0] ^= 0x80;
    assert_eq!(
        verify_report(&h.report, &wrong_root, &h.key, h.now),
        Err(ReportError::BadEpochRoot),
        "mismatched trusted root must be rejected as bad_epoch_root"
    );

    // Campaign: clipped inclusion proof — drop the sibling step so the
    // leaf no longer reaches the root.
    let mut clipped = h.report.clone();
    assert!(
        !clipped.proof.steps.is_empty(),
        "two-device proof has a step"
    );
    clipped.proof.steps.clear();
    assert_eq!(
        verify_report(&reseal(clipped, &h.key), &h.root, &h.key, h.now),
        Err(ReportError::BadProof),
        "clipped proof must be rejected as bad_proof"
    );

    // Campaign: inflated freshness claim — the anchor is pushed past the
    // newest evidenced pass, contradicting the carried records.
    let mut inflated = h.report.clone();
    inflated.claim.last_pass_at = inflated.claim.last_pass_at.map(|t| t + 1);
    inflated.claim.level = inflated
        .claim
        .policy
        .level(inflated.claim.last_pass_at, inflated.claim.asserted_at);
    assert_eq!(
        verify_report(&reseal(inflated, &h.key), &h.root, &h.key, h.now),
        Err(ReportError::InconsistentClaim),
        "inflated claim must be rejected as inconsistent_claim"
    );
}

/// All eight campaigns against a history whose every verdict came down
/// the classic online-replay path.
#[test]
fn evidence_tampering_rejected_on_classic_path_history() {
    let h = honest_fleet_report(0, EvidencePath::Classic);
    assert_campaigns_rejected(&h);
}

/// The same eight campaigns against a history whose every verdict came
/// out of the precomputed challenge bank.
#[test]
fn evidence_tampering_rejected_on_precomputed_path_history() {
    let h = honest_fleet_report(2, EvidencePath::Precomputed);
    assert_campaigns_rejected(&h);
}

// ---------------------------------------------------------------------
// Byzantine campaigns (PR-10): verifier quorums, spot-check sampling and
// the relay/topology detector, mounted against a live fleet. Each
// campaign runs twice — once with `bank_capacity = 0` (every verdict on
// the classic online-replay path) and once with a stocked bank (every
// verdict on the precomputed fast path) — and asserts the exact
// reject/suspect causes plus zero false accepts on both.
// ---------------------------------------------------------------------

/// One fleet device for the Byzantine campaigns (same tiny build the
/// evidence campaigns use).
fn byz_member(name: &str, seed: u8) -> FleetMember {
    let mut params = VfParams::test_tiny();
    params.iterations = 5;
    let session =
        GpuSession::install(Device::new(DeviceConfig::sim_tiny()), &params, 0xF1EE7).unwrap();
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))));
    m.name = name.to_string();
    m
}

/// The knobs one Byzantine campaign turns; everything else is the same
/// deterministic perfect-link fleet the evidence campaigns run on.
struct FleetSpec {
    bank_capacity: usize,
    quorum: QuorumConfig,
    sampling: SamplingConfig,
    relay_rtt_gate: u64,
}

fn byzantine_fleet(spec: &FleetSpec, names: &[&str]) -> AttestationService<SimNet> {
    let net = SimNet::new(
        7,
        LinkProfile {
            latency: 100,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let cfg = ServiceConfig {
        reattest_interval: 20_000,
        latency_budget: 200,
        deadline_slack: 10_000,
        calibration_runs: 5,
        policy: Policy::default(),
        bank_capacity: spec.bank_capacity,
        bank_workers: 0,
        epoch_interval: 30_000,
        quorum: spec.quorum,
        sampling: spec.sampling,
        relay_rtt_gate: spec.relay_rtt_gate,
        ..ServiceConfig::default()
    };
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);
    for (i, name) in names.iter().enumerate() {
        svc.join(
            byz_member(name, 41 + i as u8),
            SgxPlatform::new([7u8; 16]).launch(b"svc-verifier", &mut entropy(61 + i as u8)),
        );
    }
    svc
}

/// Installs the §8 replay tap on an enrolled fleet device (the same
/// post-enrollment compromise `tests/service_fleet.rs` uses).
fn compromise_fleet_device(svc: &mut AttestationService<SimNet>, name: &str) {
    let session = svc.session_mut(name).expect("device is managed");
    let result_addr = session.build().layout.result_addr();
    session
        .dev
        .install_bus_tap(Box::new(ReplayTap::new(result_addr)));
}

fn fleet_rounds_passed(svc: &AttestationService<SimNet>, name: &str) -> u64 {
    svc.statuses()
        .iter()
        .find(|s| s.name == name)
        .unwrap()
        .rounds_passed
}

/// Asserts every checksum round a device recorded rode the expected
/// verdict path — proving which path produced the history under test.
fn assert_fleet_path(svc: &AttestationService<SimNet>, name: &str, expected: EvidencePath) {
    let rounds: Vec<EvidencePath> = svc
        .evidence_of(name)
        .unwrap()
        .records()
        .iter()
        .filter_map(|r| match r.payload {
            EvidencePayload::ChecksumRound { path, .. } => Some(path),
            _ => None,
        })
        .collect();
    assert!(!rounds.is_empty(), "{name}: no checksum rounds recorded");
    assert!(
        rounds.iter().all(|p| *p == expected),
        "{name}: rounds must ride the {expected:?} path, got {rounds:?}"
    );
}

/// Every sealed quorum-vote record on one device's chain, as
/// `(verifier, vote, outcome, votes_accept, votes_reject)`.
fn quorum_votes_of(
    svc: &AttestationService<SimNet>,
    name: &str,
) -> Vec<(u16, StageVerdict, StageVerdict, u16, u16)> {
    svc.evidence_of(name)
        .unwrap()
        .records()
        .iter()
        .filter_map(|r| match r.payload {
            EvidencePayload::QuorumVote {
                verifier,
                vote,
                outcome,
                votes_accept,
                votes_reject,
                ..
            } => Some((verifier, vote, outcome, votes_accept, votes_reject)),
            _ => None,
        })
        .collect()
}

/// Campaign: colluding cheating devices under spot-check sampling. Two
/// devices mount the §8 replay together while the sampler attests only
/// half the fleet per epoch. Sampling may *delay* detection — a still-
/// `Trusted` cheater sleeps through uncovered epochs — but never
/// prevents it: the first covered epoch fails the round, the device
/// leaves `Trusted` (losing skip eligibility), and the quarantine
/// budget runs out.
fn colluding_cheaters_under_sampling(bank_capacity: usize, expected_path: EvidencePath) {
    let names = ["gpu-a", "gpu-b", "gpu-c", "gpu-evil1", "gpu-evil2"];
    let evil = ["gpu-evil1", "gpu-evil2"];
    let mut svc = byzantine_fleet(
        &FleetSpec {
            bank_capacity,
            quorum: QuorumConfig::default(),
            sampling: SamplingConfig {
                coverage_per_mille: 500,
                seed: 0xC0FFEE,
            },
            relay_rtt_gate: 0,
        },
        &names,
    );
    svc.run_for(45_000);
    for n in names {
        assert_eq!(
            svc.state_of(n),
            Some(DeviceState::Trusted),
            "{n} after settling"
        );
    }

    for n in evil {
        compromise_fleet_device(&mut svc, n);
    }
    let banked: Vec<u64> = evil.iter().map(|n| fleet_rounds_passed(&svc, n)).collect();

    let mut settled = false;
    for _ in 0..200 {
        svc.run_for(30_000);
        if evil
            .iter()
            .all(|n| svc.state_of(n) == Some(DeviceState::Quarantined))
        {
            settled = true;
            break;
        }
    }
    assert!(settled, "both colluders must quarantine despite sampling");

    // Zero false accepts: past one honest round already in flight at
    // compromise time plus the tap's recording round, no cheating round
    // ever passed.
    for (i, n) in evil.iter().enumerate() {
        assert!(
            fleet_rounds_passed(&svc, n) <= banked[i] + 2,
            "{n}: cheating rounds were accepted"
        );
    }
    // Zero false rejects: honest devices hold Trusted throughout.
    for n in &names[..3] {
        assert_eq!(
            svc.state_of(n),
            Some(DeviceState::Trusted),
            "{n} must stay trusted"
        );
    }

    let counters = svc.log().counters();
    assert_eq!(counters.quarantines, 2, "exactly the two colluders fall");
    assert!(
        counters.value_rejects >= 2 * u64::from(Policy::default().value_quarantine_after),
        "each colluder must burn its full value-reject budget"
    );
    assert!(
        counters.spotcheck_skips >= 1,
        "the sampler must actually skip epochs"
    );
    assert_eq!(counters.timing_rejects, 0);
    assert_eq!(counters.relay_rejects, 0);
    for n in names {
        assert_fleet_path(&svc, n, expected_path);
    }
}

#[test]
fn colluding_cheaters_under_sampling_rejected_on_classic_path() {
    colluding_cheaters_under_sampling(0, EvidencePath::Classic);
}

#[test]
fn colluding_cheaters_under_sampling_rejected_on_precomputed_path() {
    colluding_cheaters_under_sampling(2, EvidencePath::Precomputed);
}

/// Campaign: one lying verifier in an N = 4 quorum (threshold 3). The
/// liar inverts every ballot — false rejects against honest passes,
/// false accepts laundering the cheater's failures — and every lie is
/// outvoted 3-to-1, flagged `VerifierSuspect`, and sealed into the
/// evidence chain. The lifecycle never follows the liar: zero false
/// accepts, zero false rejects.
fn lying_verifier_outvoted(bank_capacity: usize, expected_path: EvidencePath) {
    let names = ["gpu-a", "gpu-b", "gpu-evil"];
    let mut svc = byzantine_fleet(
        &FleetSpec {
            bank_capacity,
            quorum: QuorumConfig {
                verifiers: 4,
                seed: 0x51D,
            },
            sampling: SamplingConfig::default(),
            relay_rtt_gate: 0,
        },
        &names,
    );
    svc.run_for(45_000);
    for n in names {
        assert_eq!(
            svc.state_of(n),
            Some(DeviceState::Trusted),
            "{n} after settling"
        );
    }
    // An all-honest quorum is silent: unanimous agreement appends no
    // dispute events and no vote evidence.
    assert_eq!(svc.log().counters().quorum_disputes, 0);
    assert_eq!(svc.log().counters().verifier_suspects, 0);

    svc.quorum_mut()
        .unwrap()
        .set_behavior(1, VerifierBehavior::Invert);
    compromise_fleet_device(&mut svc, "gpu-evil");

    let mut settled = false;
    for _ in 0..100 {
        svc.run_for(30_000);
        if svc.state_of("gpu-evil") == Some(DeviceState::Quarantined) {
            settled = true;
            break;
        }
    }
    assert!(
        settled,
        "the cheater must quarantine despite the liar's accept votes"
    );
    for n in &names[..2] {
        assert_eq!(
            svc.state_of(n),
            Some(DeviceState::Trusted),
            "{n}: the liar's reject votes must not dent an honest device"
        );
    }

    let counters = svc.log().counters();
    assert!(counters.quorum_disputes >= 2);
    assert!(counters.verifier_suspects >= 1);

    let set = svc.quorum().unwrap();
    assert_eq!(set.threshold(), 3);
    let liar = &set.replicas()[1];
    assert!(liar.suspected, "the liar must be flagged VerifierSuspect");
    assert!(liar.dissents >= 2);
    for (i, r) in set.replicas().iter().enumerate() {
        if i != 1 {
            assert!(!r.suspected, "replica {i} is honest and must stay clean");
        }
    }
    assert!(
        set.honest_views_agree(),
        "honest replicas' evidence views must stay identical"
    );

    // The sealed dissent always records the honest outcome — a false
    // reject on a passing honest round...
    let honest_dissents = quorum_votes_of(&svc, "gpu-a");
    assert!(
        !honest_dissents.is_empty(),
        "false-reject dissents must be sealed into the honest chain"
    );
    for (verifier, vote, outcome, acc, rej) in &honest_dissents {
        assert_eq!(*verifier, 1, "only the liar dissents");
        assert_eq!(
            *outcome,
            StageVerdict::Pass,
            "outcome follows the honest verdict"
        );
        assert_ne!(
            *vote,
            StageVerdict::Pass,
            "the sealed ballot is the lie itself"
        );
        assert_eq!(
            (*acc, *rej),
            (3, 1),
            "3 honest accepts outvote 1 lying reject"
        );
    }
    // ...and a false accept cannot launder the cheater's failures.
    let laundering: Vec<_> = quorum_votes_of(&svc, "gpu-evil")
        .into_iter()
        .filter(|(_, _, outcome, _, _)| *outcome != StageVerdict::Pass)
        .collect();
    assert!(
        !laundering.is_empty(),
        "false-accept dissents must be sealed into the cheater's chain"
    );
    for (verifier, vote, outcome, acc, rej) in &laundering {
        assert_eq!(*verifier, 1);
        assert_eq!(*vote, StageVerdict::Pass, "the liar votes accept");
        assert_ne!(*outcome, StageVerdict::Pass, "the round still fails");
        assert_eq!(
            (*acc, *rej),
            (1, 3),
            "3 honest rejects outvote 1 lying accept"
        );
    }
    for n in names {
        assert_fleet_path(&svc, n, expected_path);
    }
}

#[test]
fn lying_verifier_outvoted_on_classic_path() {
    lying_verifier_outvoted(0, EvidencePath::Classic);
}

#[test]
fn lying_verifier_outvoted_on_precomputed_path() {
    lying_verifier_outvoted(2, EvidencePath::Precomputed);
}

/// Campaign: ⌈N/3⌉ − 1 colluding lying verifiers at N = 7 (two
/// colluders, threshold 5). The Byzantine minority dissents on every
/// verdict, both are flagged, and the five honest replicas still clear
/// the threshold on every round — the quorum stays correct.
fn colluding_verifier_minority_outvoted(bank_capacity: usize, expected_path: EvidencePath) {
    let names = ["gpu-a", "gpu-b", "gpu-evil"];
    let colluders = [2usize, 5];
    let mut svc = byzantine_fleet(
        &FleetSpec {
            bank_capacity,
            quorum: QuorumConfig {
                verifiers: 7,
                seed: 0xBEEF,
            },
            sampling: SamplingConfig::default(),
            relay_rtt_gate: 0,
        },
        &names,
    );
    svc.run_for(45_000);
    for n in names {
        assert_eq!(
            svc.state_of(n),
            Some(DeviceState::Trusted),
            "{n} after settling"
        );
    }
    for i in colluders {
        svc.quorum_mut()
            .unwrap()
            .set_behavior(i, VerifierBehavior::Invert);
    }
    compromise_fleet_device(&mut svc, "gpu-evil");

    let mut settled = false;
    for _ in 0..100 {
        svc.run_for(30_000);
        if svc.state_of("gpu-evil") == Some(DeviceState::Quarantined) {
            settled = true;
            break;
        }
    }
    assert!(
        settled,
        "the cheater must quarantine under a Byzantine minority"
    );
    for n in &names[..2] {
        assert_eq!(svc.state_of(n), Some(DeviceState::Trusted), "{n}");
    }

    let set = svc.quorum().unwrap();
    assert_eq!(set.threshold(), 5, "⌈2·7/3⌉ = 5");
    for i in colluders {
        assert!(set.replicas()[i].suspected, "colluder {i} must be flagged");
        assert!(set.replicas()[i].dissents >= 2);
    }
    for (i, r) in set.replicas().iter().enumerate() {
        if !colluders.contains(&i) {
            assert!(!r.suspected, "honest replica {i} must stay clean");
        }
    }
    assert!(set.honest_views_agree());

    // Every sealed vote shows the five honest replicas clearing the
    // threshold against the two lies, with the outcome never flipped.
    for n in names {
        for (verifier, vote, outcome, acc, rej) in quorum_votes_of(&svc, n) {
            assert!(
                colluders.contains(&usize::from(verifier)),
                "{n}: only colluders dissent"
            );
            assert_ne!(vote, outcome, "{n}: a dissent is a mismatched ballot");
            if outcome == StageVerdict::Pass {
                assert_eq!(
                    (acc, rej),
                    (5, 2),
                    "{n}: 5 honest accepts vs 2 lying rejects"
                );
            } else {
                assert_eq!(
                    (acc, rej),
                    (2, 5),
                    "{n}: 5 honest rejects vs 2 lying accepts"
                );
            }
        }
        assert_fleet_path(&svc, n, expected_path);
    }
}

#[test]
fn colluding_verifier_minority_outvoted_on_classic_path() {
    colluding_verifier_minority_outvoted(0, EvidencePath::Classic);
}

#[test]
fn colluding_verifier_minority_outvoted_on_precomputed_path() {
    colluding_verifier_minority_outvoted(2, EvidencePath::Precomputed);
}

/// Campaign: relay/proxy checksum outsourcing (§8). The relayed GPU's
/// compute time looks perfectly honest — `measured_cycles` stays under
/// the §7.2 threshold — but the answer pays an extra hop on the wire,
/// and the round-trip topology evidence (wall clock minus device-
/// reported compute vs the calibrated RTT gate) catches it: rejected as
/// `relay`, never restartable, straight to quarantine.
fn relay_outsourcing_caught_by_topology(bank_capacity: usize, expected_path: EvidencePath) {
    let names = ["gpu-a", "gpu-relay"];
    let mut svc = byzantine_fleet(
        &FleetSpec {
            bank_capacity,
            quorum: QuorumConfig::default(),
            sampling: SamplingConfig::default(),
            relay_rtt_gate: 2_000,
        },
        &names,
    );
    svc.run_for(45_000);
    for n in names {
        assert_eq!(
            svc.state_of(n),
            Some(DeviceState::Trusted),
            "{n} after settling"
        );
    }

    // The compromise: responses now pay a second link crossing, without
    // touching the reported compute time.
    svc.node_mut("gpu-relay").unwrap().relay_delay = 5_000;
    let banked = fleet_rounds_passed(&svc, "gpu-relay");

    let mut settled = false;
    for _ in 0..100 {
        svc.run_for(30_000);
        if svc.state_of("gpu-relay") == Some(DeviceState::Quarantined) {
            settled = true;
            break;
        }
    }
    assert!(settled, "the relayed device must quarantine");
    assert_eq!(svc.state_of("gpu-a"), Some(DeviceState::Trusted));
    // Zero false accepts: past the one honest round already in flight
    // when the relay was inserted, no relayed round may pass.
    assert!(
        fleet_rounds_passed(&svc, "gpu-relay") <= banked + 1,
        "relayed rounds were accepted"
    );

    // The cause is exactly `relay` — not a timing or value reject, not
    // a timeout — on every post-compromise failure.
    let counters = svc.log().counters();
    assert!(
        counters.relay_rejects >= u64::from(Policy::default().quarantine_after),
        "relay rejects must burn the quarantine budget"
    );
    assert_eq!(counters.timing_rejects, 0);
    assert_eq!(counters.value_rejects, 0);
    assert_eq!(counters.timeouts, 0);
    assert_eq!(counters.quarantines, 1);
    let relay_fails = svc
        .log()
        .events()
        .iter()
        .filter(|e| {
            e.device == "gpu-relay"
                && matches!(
                    e.kind,
                    EventKind::RoundFailed {
                        reason: FailReason::Relay,
                        ..
                    }
                )
        })
        .count() as u64;
    assert_eq!(relay_fails, counters.relay_rejects);

    // The evidence chain records the relayed rounds as TooSlow on the
    // path under test (timing-class failure, §7.2 ∪ topology).
    let verdicts: Vec<StageVerdict> = svc
        .evidence_of("gpu-relay")
        .unwrap()
        .records()
        .iter()
        .filter_map(|r| match r.payload {
            EvidencePayload::ChecksumRound { verdict, .. } => Some(verdict),
            _ => None,
        })
        .collect();
    assert_eq!(
        verdicts
            .iter()
            .filter(|v| **v == StageVerdict::TooSlow)
            .count() as u64,
        counters.relay_rejects,
        "every relay reject is sealed as a TooSlow round"
    );
    for n in names {
        assert_fleet_path(&svc, n, expected_path);
    }
}

#[test]
fn relay_outsourcing_rejected_on_classic_path() {
    relay_outsourcing_caught_by_topology(0, EvidencePath::Classic);
}

#[test]
fn relay_outsourcing_rejected_on_precomputed_path() {
    relay_outsourcing_caught_by_topology(2, EvidencePath::Precomputed);
}

/// Campaign: the sampling-aware cheater. A device compromised while
/// `Trusted` keeps sleeping through every epoch the seeded plan leaves
/// it uncovered — cheating undetected exactly as long as the sampler
/// looks away — and is caught the first covered epoch, within the
/// modeled `epochs_to_detect(c, 98%)` bound.
fn unsampled_epoch_cheater_caught_within_model(bank_capacity: usize, expected_path: EvidencePath) {
    let sampling = SamplingConfig {
        coverage_per_mille: 250,
        seed: 0x5A37,
    };
    let names = ["gpu-a", "gpu-cheat"];
    let mut svc = byzantine_fleet(
        &FleetSpec {
            bank_capacity,
            quorum: QuorumConfig::default(),
            sampling,
            relay_rtt_gate: 0,
        },
        &names,
    );
    svc.run_for(45_000);
    for n in names {
        assert_eq!(
            svc.state_of(n),
            Some(DeviceState::Trusted),
            "{n} after settling"
        );
    }

    compromise_fleet_device(&mut svc, "gpu-cheat");
    let compromised_at = 45_000u64;
    let start_epoch = compromised_at / 30_000;
    let k = epochs_to_detect(sampling.coverage_per_mille, 980);

    let mut settled = false;
    for _ in 0..(k + 6) {
        svc.run_for(30_000);
        if svc.state_of("gpu-cheat") == Some(DeviceState::Quarantined) {
            settled = true;
            break;
        }
    }
    assert!(settled, "the sampled-epoch cheater must still quarantine");
    assert_eq!(svc.state_of("gpu-a"), Some(DeviceState::Trusted));

    // The first failing round: find when it started and which epoch
    // that was.
    let events = svc.log().events();
    let first_fail_round = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::RoundFailed { round, .. } if e.device == "gpu-cheat" => Some(round),
            _ => None,
        })
        .expect("the cheater must fail a round");
    let detect_at = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::RoundStarted { round }
                if e.device == "gpu-cheat" && round == first_fail_round =>
            {
                Some(e.at)
            }
            _ => None,
        })
        .expect("the failing round has a start");
    let detect_epoch = detect_at / 30_000;

    // Caught within the modeled bound, in an epoch the plan covers.
    assert!(
        detect_epoch - start_epoch <= k,
        "detection took {} epochs, model bounds it at {k}",
        detect_epoch - start_epoch
    );
    assert!(
        covers(&sampling, detect_epoch, "gpu-cheat"),
        "detection must land in a covered epoch"
    );

    // The cheater really did hide first: at least one uncovered epoch
    // was skipped between compromise and detection, and every skip the
    // log shows for it agrees with the pure sampling rule.
    let skipped: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::SpotCheckSkipped { epoch } if e.device == "gpu-cheat" => Some(epoch),
            _ => None,
        })
        .collect();
    assert!(
        skipped
            .iter()
            .any(|e| *e >= start_epoch && *e < detect_epoch),
        "the cheater must hide through at least one uncovered epoch, skips: {skipped:?}"
    );
    for e in &skipped {
        assert!(
            !covers(&sampling, *e, "gpu-cheat"),
            "epoch {e} was skipped but the plan covers it"
        );
    }

    // Zero false accepts once caught: past the tap's recording round,
    // nothing passed, and the budget ran out as value rejects.
    let counters = svc.log().counters();
    assert_eq!(counters.quarantines, 1);
    assert!(counters.value_rejects >= u64::from(Policy::default().value_quarantine_after));
    for n in names {
        assert_fleet_path(&svc, n, expected_path);
    }
}

#[test]
fn unsampled_epoch_cheater_caught_on_classic_path() {
    unsampled_epoch_cheater_caught_within_model(0, EvidencePath::Classic);
}

#[test]
fn unsampled_epoch_cheater_caught_on_precomputed_path() {
    unsampled_epoch_cheater_caught_within_model(2, EvidencePath::Precomputed);
}

/// The reject causes are what the matrix table says they are — the
/// stable `cause()` labels a fleet operator would alert on.
#[test]
fn evidence_reject_causes_have_stable_labels() {
    for (err, label) in [
        (ReportError::BadReportTag, "bad_report_tag"),
        (ReportError::BadEpochRoot, "bad_epoch_root"),
        (ReportError::BadProof, "bad_proof"),
        (
            ReportError::BadSeq {
                expected: 1,
                got: 2,
            },
            "bad_seq",
        ),
        (ReportError::BadTag { seq: 1 }, "bad_tag"),
        (ReportError::BrokenLink { seq: 1 }, "broken_link"),
        (ReportError::InconsistentClaim, "inconsistent_claim"),
        (
            ReportError::StaleEvidence {
                claimed: Freshness::Trusted,
                recomputed: Freshness::Stale,
            },
            "stale_evidence",
        ),
    ] {
        assert_eq!(err.cause(), label);
    }
}
