//! The attack-matrix conformance suite: every adversary module from
//! `crates/attacks` (paper §8) is mounted against a calibrated,
//! telemetry-attached [`Verifier`] and must be rejected on **both**
//! verdict paths — the classic online-replay path
//! ([`Verifier::check_response`]) and the PR-3 bank-hit fast path
//! ([`Verifier::check_response_precomputed`] fed from a stocked
//! [`ChallengeBank`]). 7 attacks × 2 paths = 14 rejection cases, each
//! asserting the error variant *and* the
//! `verifier_rejects_total{cause, path}` telemetry label, so the
//! observability layer is conformance-tested against the security
//! model, not just against happy-path accounting.
//!
//! | Module     | Mount                                        | Cause       |
//! |------------|----------------------------------------------|-------------|
//! | `datasub`  | tampered fill byte in the checksummed region | wrong_value |
//! | `forge`    | PCIe [`ReplayTap`] replays a stale result    | wrong_value |
//! | `lepc`     | constant substitution in checksummed code    | wrong_value |
//! | `memcopy`  | variant (b): traversal redirect to a copy    | wrong_value |
//! | `nop`      | injected instructions inflate the loop       | too_slow    |
//! | `proxy`    | faster remote GPU + 2× network latency       | too_slow    |
//! | `takeover` | co-dispatched spin kernel steals SM slots    | too_slow    |

use sage_repro::attacks::{
    datasub, forge::ReplayTap, lepc, memcopy::patch_immediates, nop, proxy::faster_gpu,
    takeover::spin_kernel, Detection,
};
use sage_repro::core::{timing::Calibration, GpuSession, SageError, Verifier};
use sage_repro::crypto::{DhGroup, EntropySource};
use sage_repro::gpu::{BusTap, Device, DeviceConfig, LaunchParams};
use sage_repro::isa::Opcode;
use sage_repro::sgx::SgxPlatform;
use sage_repro::telemetry::{MetricValue, Registry};
use sage_repro::vf::{BankConfig, VfParams};

/// Which rejection the attack must produce, mirroring the telemetry
/// `cause` label values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Cause {
    WrongValue,
    TooSlow,
}

impl Cause {
    fn label(self) -> &'static str {
        match self {
            Cause::WrongValue => "wrong_value",
            Cause::TooSlow => "too_slow",
        }
    }
}

/// An attack mounted and ready to be judged: a calibrated verifier plus
/// the attacked device's response to one fresh-challenge round.
/// `respond` returns `Some(got)` for the value actually read back from
/// the device, or `None` when the adversary preserves the correct value
/// (timing-only attacks — the harness substitutes the expected
/// checksum); the second element is the measured exchange time.
/// A device's answer to one round: `Some(got)` for the value actually
/// read back, `None` when the adversary preserves the correct value;
/// plus the measured exchange time.
type Response = (Option<[u32; 8]>, u64);
/// The attacked device, as the harness drives it: challenges in,
/// response out.
type Responder = Box<dyn FnMut(&[[u8; 16]]) -> Response>;

struct Scenario {
    verifier: Verifier,
    respond: Responder,
    cause: Cause,
}

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

/// Installs a session and calibrates a fresh verifier on it while the
/// device is still honest (attacks are mounted afterwards).
fn calibrated(
    cfg: &DeviceConfig,
    params: &VfParams,
    fill_seed: u32,
    cal_runs: usize,
    seed: u8,
) -> (GpuSession, Verifier) {
    let dev = Device::new(cfg.clone());
    let mut session = GpuSession::install(dev, params, fill_seed).unwrap();
    let enclave = SgxPlatform::new([seed; 16]).launch(b"verifier", &mut entropy(seed));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    verifier.calibrate(&mut session, cal_runs).unwrap();
    (session, verifier)
}

/// Reads one counter series out of the registry, by exact label match.
fn counter_value(reg: &Registry, name: &str, labels: &[(&str, &str)]) -> u64 {
    for (n, ls, v) in reg.collect() {
        let same = n == name
            && ls.len() == labels.len()
            && ls
                .iter()
                .zip(labels)
                .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2);
        if same {
            match v {
                MetricValue::Counter(c) => return c,
                other => panic!("{name} is not a counter: {other:?}"),
            }
        }
    }
    panic!("series {name}{labels:?} not found");
}

fn assert_cause(attack: &str, path: &str, err: &SageError, cause: Cause) {
    let ok = matches!(
        (cause, err),
        (Cause::WrongValue, SageError::ChecksumMismatch { .. })
            | (Cause::TooSlow, SageError::TimingExceeded { .. })
    );
    assert!(ok, "{attack}/{path}: expected {cause:?}, got {err:?}");
}

/// Judges the mounted attack on both verdict paths and asserts the
/// rejection plus its telemetry labels. This is the shared core of all
/// 14 matrix cases.
fn assert_rejected_on_both_paths(attack: &'static str, mut sc: Scenario) {
    let reg = Registry::new();
    sc.verifier.attach_telemetry(&reg, &[("attack", attack)]);
    let cause = sc.cause.label();

    // Classic path: fresh challenges, online replay inside the verdict.
    let ch = sc.verifier.generate_challenges();
    let (got, measured) = (sc.respond)(&ch);
    let got = got.unwrap_or_else(|| sc.verifier.expected(&ch));
    let err = sc.verifier.check_response(&ch, got, measured).unwrap_err();
    assert_cause(attack, "classic", &err, sc.cause);
    assert_eq!(
        counter_value(
            &reg,
            "verifier_rejects_total",
            &[("attack", attack), ("cause", cause), ("path", "classic")],
        ),
        1,
        "{attack}: classic reject must be labeled cause={cause}",
    );

    // PR-3 bank-hit fast path: the expected checksum comes out of a
    // synchronously stocked bank (workers = 0, deterministic), so the
    // judged round does zero replay.
    sc.verifier.enable_fast_path(BankConfig {
        capacity: 4,
        workers: 0,
    });
    sc.verifier.prefill_rounds(2);
    let (ch, precomputed) = sc.verifier.prepare_round();
    let expected = precomputed.expect("prefilled workers=0 bank must hit");
    let (got, measured) = (sc.respond)(&ch);
    let got = got.unwrap_or(expected);
    let err = sc
        .verifier
        .check_response_precomputed(expected, got, measured)
        .unwrap_err();
    assert_cause(attack, "precomputed", &err, sc.cause);
    assert_eq!(
        counter_value(
            &reg,
            "verifier_rejects_total",
            &[
                ("attack", attack),
                ("cause", cause),
                ("path", "precomputed")
            ],
        ),
        1,
        "{attack}: fast-path reject must be labeled cause={cause}",
    );

    // The bank round that fed the fast path is visible under the same
    // attack label, and neither path accepted anything.
    assert!(counter_value(&reg, "vf_bank_hits_total", &[("attack", attack)]) >= 1);
    for path in ["classic", "precomputed"] {
        assert_eq!(
            counter_value(
                &reg,
                "verifier_accepts_total",
                &[("attack", attack), ("path", path)],
            ),
            0,
            "{attack}: no accept may leak through on the {path} path",
        );
    }
}

/// Data substitution (§8): one tampered byte in the checksummed fill.
/// `iterations = 40` gives the pseudo-random traversal the same
/// near-certain coverage the module's own experiment uses.
#[test]
fn datasub_rejected_on_both_paths() {
    let mut params = VfParams::test_tiny();
    params.iterations = 40;

    // Module-level conformance: the packaged mount agrees on the cause.
    assert_eq!(
        datasub::naive_tamper(&DeviceConfig::sim_tiny(), &params, 256).unwrap(),
        Detection::WrongChecksum
    );

    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0xDA7A, 5, 11);
    let layout = session.build().layout;
    let addr = layout.base + layout.fill_off + 256;
    let orig = session.dev.peek(addr, 1).unwrap()[0];
    session.dev.poke(addr, &[orig ^ 0x3C]).unwrap();

    assert_rejected_on_both_paths(
        "datasub",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, measured) = session.run_checksum(ch).unwrap();
                (Some(got), measured)
            }),
            cause: Cause::WrongValue,
        },
    );
}

/// Pre-computation / replay (§8): a PCIe interposer records the first
/// result readback and substitutes it into every later round. Fresh
/// challenges make the stale answer wrong.
#[test]
fn forge_rejected_on_both_paths() {
    let params = VfParams::test_tiny();
    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0x4E94, 5, 23);
    let result_addr = session.build().layout.result_addr();
    session
        .dev
        .install_bus_tap(Box::new(ReplayTap::new(result_addr)));

    // Recording round: the tap captures this (honest) result and will
    // replay it against every fresh challenge the harness issues.
    let recorded_ch: Vec<[u8; 16]> = (0..params.grid_blocks)
        .map(|b| [b as u8 ^ 0x17; 16])
        .collect();
    session.run_checksum(&recorded_ch).unwrap();

    assert_rejected_on_both_paths(
        "forge",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, measured) = session.run_checksum(ch).unwrap();
                (Some(got), measured)
            }),
            cause: Cause::WrongValue,
        },
    );
}

/// LEPC constant substitution (§5.2.2). First the module's premise,
/// executably: a `MOV` of the forged PC reproduces `LEPC` bit-exactly.
/// Then the consequence for SAGE: the substituted constant lives in
/// checksummed bytes (here the reference loop image's absolute epilog
/// branch target), so the traversal folds the forgery into the value.
#[test]
fn lepc_rejected_on_both_paths() {
    // Premise: constant substitution perfectly forges a PC-folding
    // checksum (why folding LEPC alone is not a defence).
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    let out = dev.alloc(4).unwrap();
    let base = dev.alloc(1024).unwrap();
    let genuine = lepc::pc_checksum_kernel(out, true, 0);
    let (honest_value, _) = lepc::run_at(&mut dev, &genuine, base, out).unwrap();
    let base2 = dev.alloc(1024).unwrap();
    let forged = lepc::pc_checksum_kernel(out, false, base + 16);
    let (forged_value, _) = lepc::run_at(&mut dev, &forged, base2, out).unwrap();
    assert_eq!(forged_value, honest_value, "LEPC forged bit-exactly");

    // Consequence on the real VF: substitute the absolute epilog-branch
    // immediate inside the (checksummed, never-executed) reference loop
    // image — the same edit a relocating adversary needs — and the
    // value verdict catches it.
    let mut params = VfParams::test_tiny();
    params.iterations = 40;
    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0x1E9C, 5, 31);
    let layout = session.build().layout;
    let ref_addr = layout.base + layout.ref_loop_off;
    let mut ref_img = session.dev.peek(ref_addr, layout.loop_bytes).unwrap();
    let patched = patch_immediates(
        &mut ref_img,
        Opcode::Bra,
        layout.base + layout.epilog_off,
        layout.base + layout.epilog_off + 64,
    );
    assert!(
        patched >= 1,
        "reference loop must carry the absolute target"
    );
    session.dev.poke(ref_addr, &ref_img).unwrap();

    assert_rejected_on_both_paths(
        "lepc",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, measured) = session.run_checksum(ch).unwrap();
                (Some(got), measured)
            }),
            cause: Cause::WrongValue,
        },
    );
}

/// Bus tap for the memory-copy mount: rewrites the traversal-base
/// immediates in every upload of the executable loop copies, exactly as
/// the module's variant (b) does (the adversary's persistent in-line
/// patch survives the driver's per-round repair upload).
struct LeaRedirect {
    exec_base: u32,
    exec_len: u32,
    old: u32,
    new: u32,
}

impl BusTap for LeaRedirect {
    fn on_h2d(&mut self, addr: u32, data: &mut Vec<u8>) {
        if addr >= self.exec_base && addr < self.exec_base + self.exec_len {
            patch_immediates(data, Opcode::Lea, self.old, self.new);
        }
    }
}

/// Memory copy, variant (b) (§8, Fig. 7): tamper the original region and
/// redirect the traversal to a pristine copy. The fold includes the
/// absolute data pointer, so the redirect itself flips the value.
#[test]
fn memcopy_rejected_on_both_paths() {
    let mut params = VfParams::test_tiny();
    params.iterations = 10;
    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0xB00B, 5, 41);
    let layout = session.build().layout;

    let copy_base = session.dev.alloc(layout.data_bytes).unwrap();
    let pristine = session.dev.peek(layout.base, layout.data_bytes).unwrap();
    session.dev.poke(copy_base, &pristine).unwrap();
    let t = layout.base + layout.fill_off + 128;
    session.dev.poke(t, &[0xEE]).unwrap();
    session.dev.install_bus_tap(Box::new(LeaRedirect {
        exec_base: layout.base + layout.exec_loops_off,
        exec_len: layout.loop_bytes * layout.num_blocks,
        old: layout.base,
        new: copy_base,
    }));

    assert_rejected_on_both_paths(
        "memcopy",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, measured) = session.run_checksum(ch).unwrap();
                (Some(got), measured)
            }),
            cause: Cause::WrongValue,
        },
    );
}

/// Instruction injection (§7.2, experiment 2): the injected VF computes
/// the correct value but every loop pass pays for the extra
/// instructions. The verifier's calibration comes from genuine runs of
/// the same configuration; the injected measurements must always exceed
/// the threshold.
#[test]
fn nop_rejected_on_both_paths() {
    let (cfg, mut params) = nop::timing_test_setup();
    params.iterations = 50;
    let genuine = nop::timing_samples(&cfg, &params, 0x5EED, 4).unwrap();
    let calibration = Calibration::from_samples(&genuine);

    let mut injected_params = params;
    injected_params.injected_nops = 16;
    let mut injected = nop::timing_samples(&cfg, &injected_params, 0x5EED, 2).unwrap();
    assert!(
        injected.iter().min().unwrap() > &calibration.threshold(),
        "injected runs must separate from the genuine threshold"
    );

    // The verifier replays the genuine build; the adversary's responses
    // carry the correct value (None) but the injected timings.
    let dev = Device::new(cfg.clone());
    let session = GpuSession::install(dev, &params, 0x5EED).unwrap();
    let enclave = SgxPlatform::new([7u8; 16]).launch(b"verifier", &mut entropy(53));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    verifier.set_calibration(calibration);

    assert_rejected_on_both_paths(
        "nop",
        Scenario {
            verifier,
            respond: Box::new(move |_ch| (None, injected.pop().expect("one sample per round"))),
            cause: Cause::TooSlow,
        },
    );
}

/// Proxy attack (§8): a faster remote GPU computes the correct value,
/// but the answer crosses the network twice. Same build (same params,
/// fill seed and allocation order), so only the timing verdict fires.
#[test]
fn proxy_rejected_on_both_paths() {
    const NETWORK_LATENCY: u64 = 70_000;
    let params = VfParams::test_tiny();
    let cfg = DeviceConfig::sim_tiny();
    let (_genuine_session, verifier) = calibrated(&cfg, &params, 0x9409, 6, 61);

    let proxy_dev = Device::new(faster_gpu(&cfg));
    let mut proxy_session = GpuSession::install(proxy_dev, &params, 0x9409).unwrap();

    assert_rejected_on_both_paths(
        "proxy",
        Scenario {
            verifier,
            respond: Box::new(move |ch| {
                let (got, cycles) = proxy_session.run_checksum(ch).unwrap();
                (Some(got), cycles + 2 * NETWORK_LATENCY)
            }),
            cause: Cause::TooSlow,
        },
    );
}

/// Resource takeover (§8): the adversary queues a spin kernel ahead of
/// the VF. The VF occupies every SM at full occupancy, so the stolen
/// slots delay the checksum visibly — value correct, time over budget.
#[test]
fn takeover_rejected_on_both_paths() {
    let mut params = VfParams::test_tiny();
    params.iterations = 8;
    let (mut session, verifier) = calibrated(&DeviceConfig::sim_tiny(), &params, 0x7A4E, 6, 71);

    let mut spin = spin_kernel(3000);
    let spin_base = session.dev.alloc(spin.byte_len() as u32).unwrap();
    spin.relocate(spin_base);
    session.dev.poke(spin_base, &spin.encode()).unwrap();

    let respond = Box::new(move |ch: &[[u8; 16]]| {
        // Malicious host runtime: replicate the driver's restore flow,
        // then dispatch the spin kernel *before* the VF.
        let layout = session.build().layout;
        let exec_off = layout.exec_loops_off as usize;
        let exec_len = (layout.loop_bytes * layout.num_blocks) as usize;
        let exec_img = session.build().image[exec_off..exec_off + exec_len].to_vec();
        session
            .dev
            .memcpy_h2d(layout.base + layout.exec_loops_off, &exec_img)
            .unwrap();
        session
            .dev
            .memcpy_h2d(layout.result_addr(), &[0u8; 32])
            .unwrap();
        session.dev.take_bus_cycles();
        for (b, c) in ch.iter().enumerate() {
            session
                .dev
                .memcpy_h2d(layout.challenge_addr(b as u32), c)
                .unwrap();
        }
        session
            .dev
            .launch(LaunchParams {
                ctx: session.ctx,
                entry_pc: spin_base,
                grid_dim: 2,
                block_dim: 256,
                regs_per_thread: 16,
                smem_bytes: 0,
                params: vec![],
            })
            .unwrap();
        let vf_id = session
            .dev
            .launch(LaunchParams {
                ctx: session.ctx,
                entry_pc: layout.entry_addr(),
                grid_dim: params.grid_blocks,
                block_dim: params.block_threads,
                regs_per_thread: session.build().regs_per_thread(),
                smem_bytes: session.build().smem_bytes(),
                params: vec![],
            })
            .unwrap();
        let report = session.dev.run().unwrap();
        let raw = session.dev.memcpy_d2h(layout.result_addr(), 32).unwrap();
        let measured = session.dev.take_bus_cycles() + report.launches[vf_id].completion_cycle;
        let mut got = [0u32; 8];
        for (j, cell) in got.iter_mut().enumerate() {
            *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().expect("4 bytes"));
        }
        (Some(got), measured)
    });

    assert_rejected_on_both_paths(
        "takeover",
        Scenario {
            verifier,
            respond,
            cause: Cause::TooSlow,
        },
    );
}
