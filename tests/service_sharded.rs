//! Determinism matrix for the sharded control plane.
//!
//! The sharded event loop's headline guarantee: shard count and worker
//! count are *pure throughput knobs*. For any `(shards, workers)`
//! configuration the service must produce the identical event history,
//! the identical per-device evidence chain heads, and byte-identical
//! snapshots — because the three-stage step (intake → per-device units
//! → seq-stamped merge) imposes one canonical global order no matter
//! how the units were scheduled.
//!
//! The matrix here runs a modeled fleet under `{shards 1,4,16} ×
//! {workers 0,2,8}` for three seeds and asserts every cell equals the
//! `shards=1, workers=0` baseline (the configuration that replays the
//! pre-shard implementation's history). A second scenario crashes the
//! control plane mid-epoch, restores it under a *different* shard
//! geometry, and requires the spliced history to match a run that never
//! crashed — resharding on restart is invisible.

use sage_repro::core::{agent::DeviceAgent, multi::FleetMember, GpuSession};
use sage_repro::crypto::{DhGroup, EntropySource};
use sage_repro::evidence::FreshnessPolicy;
use sage_repro::gpu::{Device, DeviceConfig};
use sage_repro::service::{AttestationService, LinkProfile, ServiceConfig, SimNet};
use sage_repro::sgx::{Enclave, SgxPlatform};
use sage_repro::vf::VfParams;

/// The shard/worker grid every scenario sweeps. `(1, 0)` is the
/// baseline cell the rest must reproduce.
const GRID: [(usize, usize); 6] = [(1, 0), (1, 8), (4, 0), (4, 2), (16, 2), (16, 8)];

const DEVICES: usize = 12;
const HORIZON: u64 = 120_000;

fn entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

/// A modeled fleet member: the checksum comes from the replay engine
/// and timing is synthesized, so a twelve-device fleet runs the whole
/// matrix in seconds while exercising the full wire/crypto/lifecycle
/// path.
fn member(index: usize, seed: u64) -> FleetMember {
    let session = GpuSession::install_modeled(
        Device::new(DeviceConfig::sim_nano()),
        &VfParams::fleet_tiny(),
        0xF1EE7,
        10_000,
    )
    .expect("install modeled VF");
    let agent_seed = (seed as u8).wrapping_add(index as u8).wrapping_mul(3) | 1;
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(agent_seed))));
    m.name = format!("gpu-{index:02}");
    m
}

fn enclave(index: usize, seed: u64) -> Enclave {
    let enclave_seed = (seed as u8).wrapping_add(index as u8).wrapping_mul(5) | 1;
    SgxPlatform::new([7u8; 16]).launch(b"sharded-verifier", &mut entropy(enclave_seed))
}

fn config(shards: usize, workers: usize) -> ServiceConfig {
    ServiceConfig {
        reattest_interval: 10_000,
        epoch_interval: 30_000,
        freshness: FreshnessPolicy {
            stale_after: 25_000,
            degraded_after: 50_000,
        },
        shards,
        workers,
        ..ServiceConfig::default()
    }
}

fn build_fleet(shards: usize, workers: usize, seed: u64) -> AttestationService<SimNet> {
    let net = SimNet::new(
        seed,
        LinkProfile {
            latency: 100,
            jitter: 25,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let mut svc = AttestationService::new(config(shards, workers), DhGroup::test_group(), net);
    for i in 0..DEVICES {
        svc.join(member(i, seed), enclave(i, seed));
    }
    svc
}

/// Everything the determinism contract covers, in comparable form:
/// snapshot bytes (clock, per-device durable state, sealed epochs,
/// event log, counters) plus each device's evidence head and length.
struct History {
    snapshot: Vec<u8>,
    heads: Vec<(String, [u8; 32], u64)>,
    events_json: String,
}

fn history_of(svc: &AttestationService<SimNet>) -> History {
    let mut heads = Vec::new();
    for s in svc.statuses() {
        let chain = svc.evidence_of(&s.name).expect("evidence chain");
        heads.push((s.name.clone(), chain.head(), chain.records().len() as u64));
    }
    History {
        snapshot: svc.snapshot(),
        heads,
        events_json: svc.log().to_json(),
    }
}

fn run_history(shards: usize, workers: usize, seed: u64) -> History {
    let mut svc = build_fleet(shards, workers, seed);
    svc.run_until(HORIZON);
    history_of(&svc)
}

fn assert_same(label: &str, base: &History, got: &History) {
    assert_eq!(base.heads, got.heads, "{label}: evidence heads diverged");
    assert_eq!(
        base.events_json, got.events_json,
        "{label}: event history diverged"
    );
    assert_eq!(
        base.snapshot, got.snapshot,
        "{label}: snapshot bytes diverged"
    );
}

#[test]
fn every_shard_worker_cell_replays_the_baseline_history() {
    for seed in [1u64, 2, 3] {
        let base = run_history(1, 0, seed);
        assert!(
            !base.heads.is_empty(),
            "baseline produced no evidence chains"
        );
        for (shards, workers) in GRID {
            if (shards, workers) == (1, 0) {
                continue;
            }
            let got = run_history(shards, workers, seed);
            assert_same(
                &format!("seed {seed}, shards {shards}, workers {workers}"),
                &base,
                &got,
            );
        }
    }
}

#[test]
fn crash_and_resharded_restore_mid_epoch_is_invisible() {
    // Crash between two epoch seals (epochs at 30k/60k/90k; crash at
    // 44k) with rounds outstanding, restore under a different shard
    // geometry, and run to the horizon: the spliced history must be
    // byte-identical to the baseline that never crashed.
    const CRASH_AT: u64 = 44_000;
    for seed in [1u64, 2, 3] {
        let base = run_history(1, 0, seed);
        for (shards, workers) in [(4, 2), (16, 8)] {
            let mut first = build_fleet(1, 0, seed);
            first.run_until(CRASH_AT);
            let bytes = first.snapshot();
            let (net, endpoints) = first.into_endpoints();
            let mut second = AttestationService::restore(
                config(shards, workers),
                DhGroup::test_group(),
                net,
                &bytes,
                endpoints,
            )
            .expect("restore resharded");
            second.run_until(HORIZON);
            assert_same(
                &format!("seed {seed}, restore into shards {shards}, workers {workers}"),
                &base,
                &history_of(&second),
            );
        }
    }
}

#[test]
fn snapshots_agree_at_every_epoch_boundary() {
    // Stronger than end-state equality: walk the run in epoch-sized
    // steps and require the full state to agree at each boundary, so a
    // transient divergence cannot cancel out by the horizon.
    let seed = 2u64;
    let mut base = build_fleet(1, 0, seed);
    let mut wide = build_fleet(16, 8, seed);
    for checkpoint in (30_000..=HORIZON).step_by(30_000) {
        base.run_until(checkpoint);
        wide.run_until(checkpoint);
        assert_same(
            &format!("checkpoint {checkpoint}"),
            &history_of(&base),
            &history_of(&wide),
        );
    }
}
