//! Paper Fig. 4: the warp → block → grid aggregation of per-thread
//! checksums. The device's three-level shared/global atomic-add tree
//! must equal the plain sum of every thread's final registers.

use sage_gpu_sim::{Device, DeviceConfig, LaunchParams};
use sage_vf::{build_vf, replay::replay_block, VfParams};

fn device_cells(params: &VfParams, challenges: &[[u8; 16]]) -> [u32; 8] {
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    let ctx = dev.create_context();
    let base = dev.alloc(64 * 1024 * 16).unwrap();
    let build = build_vf(params, base, 0xA99A).unwrap();
    dev.memcpy_h2d(base, &build.image).unwrap();
    for (b, ch) in challenges.iter().enumerate() {
        dev.memcpy_h2d(build.layout.challenge_addr(b as u32), ch)
            .unwrap();
    }
    dev.run_single(LaunchParams {
        ctx,
        entry_pc: build.layout.entry_addr(),
        grid_dim: params.grid_blocks,
        block_dim: params.block_threads,
        regs_per_thread: build.regs_per_thread(),
        smem_bytes: build.smem_bytes(),
        params: vec![],
    })
    .unwrap();
    let raw = dev.memcpy_d2h(build.layout.result_addr(), 32).unwrap();
    let mut cells = [0u32; 8];
    for (j, c) in cells.iter_mut().enumerate() {
        *c = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().unwrap());
    }
    cells
}

#[test]
fn grid_cells_equal_sum_of_block_partials() {
    let mut params = VfParams::test_tiny();
    params.grid_blocks = 3;
    params.block_threads = 96; // 3 warps per block: all three levels active
    params.iterations = 4;
    let challenges: Vec<[u8; 16]> = (0..3).map(|b| [b as u8 * 11 + 1; 16]).collect();

    let device = device_cells(&params, &challenges);

    // Independent per-block replay, summed by hand.
    let base = 4096; // first alloc on a fresh device
    let build = build_vf(&params, base, 0xA99A).unwrap();
    let mut manual = [0u32; 8];
    for (b, ch) in challenges.iter().enumerate() {
        let part = replay_block(&build, ch, b as u32);
        for j in 0..8 {
            manual[j] = manual[j].wrapping_add(part[j]);
        }
    }
    assert_eq!(
        device, manual,
        "Fig. 4 aggregation tree must equal Σ threads"
    );
}

#[test]
fn aggregation_is_challenge_sensitive_per_block() {
    // Changing only one block's challenge changes the grid cells.
    let mut params = VfParams::test_tiny();
    params.iterations = 3;
    let mut ch: Vec<[u8; 16]> = (0..params.grid_blocks).map(|b| [b as u8; 16]).collect();
    let a = device_cells(&params, &ch);
    ch[1][0] ^= 1;
    let b = device_cells(&params, &ch);
    assert_ne!(a, b);
}

#[test]
fn single_warp_block_degenerates_cleanly() {
    // One warp per block: the warp and block levels of the tree coincide.
    let mut params = VfParams::test_tiny();
    params.block_threads = 32;
    params.iterations = 3;
    let ch: Vec<[u8; 16]> = (0..params.grid_blocks).map(|b| [b as u8 + 5; 16]).collect();
    let device = device_cells(&params, &ch);
    let build = build_vf(&params, 4096, 0xA99A).unwrap();
    assert_eq!(device, sage_vf::expected_checksum(&build, &ch));
}
